"""Transport extraction: loopback preserves the seed's accounting;
the simulated wire spends time, injects faults, and gates peers."""

import threading
import time

import pytest

from repro.errors import NetworkError
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.runtime.transport import (FaultInjectedError, LoopbackTransport,
                                     SimulatedTransport)
from repro.system.federation import Federation
from repro.xrpc.messages import RequestMessage, ResponseMessage

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML


def make_federation(transport=None):
    federation = Federation(transport=transport)
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


class TestLoopback:
    def test_default_transport_is_loopback(self):
        assert isinstance(Federation().transport, LoopbackTransport)

    def test_seed_accounting_preserved(self):
        """The extracted wire charges exactly what the seed charged
        inline: 2 messages per round trip, bytes = XML text lengths."""
        result = make_federation().run(Q2, at="local",
                                       keep_message_xml=True)
        stats = result.stats
        assert stats.messages == 2 * len(result.messages)
        for log in result.messages:
            assert log.request_bytes == len(log.request_xml.encode())
            assert log.response_bytes == len(log.response_xml.encode())
        assert stats.message_bytes == sum(
            m.request_bytes + m.response_bytes for m in result.messages)

    def test_wire_counters_per_peer(self):
        federation = make_federation()
        federation.run(Q2, at="local")
        wire = federation.transport.wire_summary()
        assert set(wire) <= {"A", "B", "local"}
        total = sum(p["message_bytes"] for p in wire.values())
        assert total > 0
        for peer_wire in wire.values():
            assert peer_wire["total_bytes"] == (
                peer_wire["message_bytes"] + peer_wire["document_bytes"])

    def test_document_shipping_counts_against_owner(self):
        from repro.decompose import Strategy

        federation = make_federation()
        result = federation.run('doc("xrpc://B/course42.xml")/child::enroll',
                                at="local", strategy=Strategy.DATA_SHIPPING)
        assert result.stats.documents_shipped == 1
        wire = federation.transport.wire_summary()
        assert wire["B"]["document_bytes"] > 0


class TestSimulated:
    def test_fault_injection_raises_network_error(self):
        transport = SimulatedTransport(time_scale=0.0, fault_rate=1.0)
        federation = make_federation(transport)
        with pytest.raises(FaultInjectedError):
            federation.run(Q2, at="local")
        with pytest.raises(NetworkError):  # same hierarchy
            federation.run(Q2, at="local")

    def test_fault_free_when_rate_zero(self):
        transport = SimulatedTransport(time_scale=0.0, fault_rate=0.0)
        result = make_federation(transport).run(Q2, at="local")
        assert result.items

    def test_extra_latency_costs_wall_clock(self):
        fast = make_federation(SimulatedTransport(time_scale=0.0))
        slow = make_federation(SimulatedTransport(time_scale=0.0,
                                                  extra_latency_s=0.02))
        start = time.perf_counter()
        fast.run(Q2, at="local")
        fast_s = time.perf_counter() - start
        start = time.perf_counter()
        result = slow.run(Q2, at="local")
        slow_s = time.perf_counter() - start
        # Q2 needs at least one round trip = 2 transmissions = 40ms.
        assert slow_s >= fast_s + 0.03
        assert result.items

    def test_identical_stats_to_loopback(self):
        """Wall-clock behaviour differs; simulated accounting must not."""
        loopback = make_federation().run(Q2, at="local")
        simulated = make_federation(
            SimulatedTransport(time_scale=0.0)).run(Q2, at="local")
        assert simulated.stats.summary() == loopback.stats.summary()


class FakePeer:
    name = "X"


class TestPerPeerGate:
    @staticmethod
    def _tracking_transport(active, peak, lock, **kwargs):
        class TrackingTransport(LoopbackTransport):
            def _transmit(self, peer_name, size):
                with lock:
                    active.append(1)
                    peak.append(len(active))
                time.sleep(0.01)
                with lock:
                    active.pop()

        return TrackingTransport(**kwargs)

    def test_gate_bounds_concurrent_transmissions(self):
        active, peak = [], []
        lock = threading.Lock()
        transport = self._tracking_transport(active, peak, lock,
                                             per_peer_concurrency=1)
        request = RequestMessage(query="1", param_names=[], calls=[])

        def handle(_request):
            return ResponseMessage(results=[])

        threads = [
            threading.Thread(target=transport.exchange,
                             args=(FakePeer(), request, handle, RunStats()))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert max(peak) == 1

    def test_gate_not_held_across_evaluation(self):
        """Remote evaluation may re-enter the transport (nested round
        trips, document shipping); holding the gate across ``handle``
        would deadlock even a single query against its own peer."""
        transport = LoopbackTransport(per_peer_concurrency=1)
        request = RequestMessage(query="1", param_names=[], calls=[])

        def nested_handle(_request):
            return ResponseMessage(results=[])

        def handle(_request):
            # Nested exchange against the same gated peer.
            transport.exchange(FakePeer(), request, nested_handle,
                               RunStats())
            return ResponseMessage(results=[])

        done = []

        def run():
            transport.exchange(FakePeer(), request, handle, RunStats())
            done.append(True)

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=5)
        assert done, "nested exchange deadlocked on the peer gate"

    def test_unlimited_without_configuration(self):
        transport = LoopbackTransport()
        assert transport._gate("anyone") is None


def test_cost_model_shared_with_federation():
    model = CostModel(latency_s=1.0)
    federation = Federation(cost_model=model)
    assert federation.transport.cost_model is model
