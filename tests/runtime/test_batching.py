"""Cross-query Bulk-RPC coalescing: merge windows, slicing, errors."""

import threading

import pytest

from repro.runtime.batching import BulkBatcher, _split_response, batch_key
from repro.xrpc.messages import Atomic, NodeRef, ResponseMessage


def atomic_response(values):
    return ResponseMessage(results=[[Atomic("xs:integer", str(v))]
                                    for v in values])


def echoing_exchange(log):
    """A merged_exchange that answers call i with its own payload."""
    def exchange(merged_calls):
        log.append(len(merged_calls))
        response = atomic_response(
            [params[0][1][0] for params in merged_calls])
        return response, response.to_xml()
    return exchange


def call_with(value):
    return [[("x", [value])]]


class TestBatchKey:
    def test_same_shape_merges(self):
        a = batch_key("B", "$x", ["x"], "by-fragment", {"k": "v"},
                      None, None)
        b = batch_key("B", "$x", ["x"], "by-fragment", {"k": "v"},
                      None, None)
        assert a == b

    def test_any_shape_difference_separates(self):
        base = batch_key("B", "$x", ["x"], "by-fragment", {}, None, None)
        variants = [
            batch_key("A", "$x", ["x"], "by-fragment", {}, None, None),
            batch_key("B", "$y", ["x"], "by-fragment", {}, None, None),
            batch_key("B", "$x", ["y"], "by-fragment", {}, None, None),
            batch_key("B", "$x", ["x"], "by-value", {}, None, None),
            batch_key("B", "$x", ["x"], "by-fragment", {"k": "v"},
                      None, None),
            batch_key("B", "$x", ["x"], "by-fragment", {}, ["p"], None),
            batch_key("B", "$x", ["x"], "by-fragment", {}, None, ["p"]),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)


class TestCoalescing:
    def test_concurrent_same_key_calls_merge(self):
        batcher = BulkBatcher(window_s=0.2)
        key = batch_key("B", "$x", ["x"], "by-value", {}, None, None)
        sizes = []
        exchange = echoing_exchange(sizes)
        responses = {}
        barrier = threading.Barrier(2)

        def participant(value):
            barrier.wait()
            responses[value] = batcher.execute(key, call_with(value),
                                               exchange)

        threads = [threading.Thread(target=participant, args=(v,))
                   for v in (7, 11)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sizes == [2]  # one exchange carried both calls
        for value, xml in responses.items():
            parsed = ResponseMessage.from_xml(xml)
            assert parsed.results == [[Atomic("xs:integer", str(value))]]
        snapshot = batcher.snapshot()
        assert snapshot == {"round_trips": 2, "exchanges": 1,
                            "coalesced": 1, "merge_rate": 0.5}

    def test_different_keys_never_merge(self):
        batcher = BulkBatcher(window_s=0.05)
        sizes = []
        exchange = echoing_exchange(sizes)
        keys = [batch_key("B", f"$x{i}", ["x"], "by-value", {}, None, None)
                for i in range(2)]
        threads = [
            threading.Thread(
                target=lambda k=k, v=v: batcher.execute(
                    k, call_with(v), exchange))
            for k, v in zip(keys, (1, 2))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(sizes) == [1, 1]
        assert batcher.snapshot()["coalesced"] == 0

    def test_zero_window_means_no_waiting(self):
        batcher = BulkBatcher(window_s=0.0)
        sizes = []
        xml = batcher.execute(
            batch_key("B", "$x", ["x"], "by-value", {}, None, None),
            call_with(3), echoing_exchange(sizes))
        assert sizes == [1]
        parsed = ResponseMessage.from_xml(xml)
        assert parsed.results == [[Atomic("xs:integer", "3")]]

    def test_max_calls_closes_the_batch_early(self):
        batcher = BulkBatcher(window_s=60.0, max_calls=1)
        sizes = []
        # window is a minute, but max_calls=1 fires immediately.
        batcher.execute(
            batch_key("B", "$x", ["x"], "by-value", {}, None, None),
            call_with(3), echoing_exchange(sizes))
        assert sizes == [1]

    def test_bulk_calls_keep_their_slice(self):
        """A participant contributing several calls gets exactly its
        contiguous slice back."""
        batcher = BulkBatcher(window_s=0.2)
        key = batch_key("B", "$x", ["x"], "by-value", {}, None, None)
        sizes = []
        exchange = echoing_exchange(sizes)
        responses = {}
        barrier = threading.Barrier(2)

        def participant(values):
            calls = [[("x", [v])] for v in values]
            barrier.wait()
            responses[tuple(values)] = batcher.execute(key, calls, exchange)

        threads = [threading.Thread(target=participant, args=(vs,))
                   for vs in ([1, 2], [3])]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sizes == [3]
        for values, xml in responses.items():
            parsed = ResponseMessage.from_xml(xml)
            assert parsed.results == [[Atomic("xs:integer", str(v))]
                                      for v in values]


class TestSplitResponse:
    def test_foreign_fragments_dropped_and_fragids_renumbered(self):
        merged = ResponseMessage(
            results=[[NodeRef(1, 1)], [NodeRef(2, 1)]],
            fragments=["<a/>", "<b/>"])
        first = _split_response(merged, (0, 1))
        second = _split_response(merged, (1, 2))
        assert first.fragments == ["<a/>"]
        assert first.results == [[NodeRef(1, 1)]]
        assert second.fragments == ["<b/>"]
        assert second.results == [[NodeRef(1, 1)]]  # remapped 2 -> 1

    def test_shared_fragment_kept_for_both(self):
        merged = ResponseMessage(
            results=[[NodeRef(1, 1)], [NodeRef(1, 2)]],
            fragments=["<a><b/></a>"])
        for slot, nodeid in (((0, 1), 1), ((1, 2), 2)):
            split = _split_response(merged, slot)
            assert split.fragments == ["<a><b/></a>"]
            assert split.results == [[NodeRef(1, nodeid)]]

    def test_atomic_only_slice_carries_no_fragments(self):
        merged = ResponseMessage(
            results=[[Atomic("xs:integer", "1")], [NodeRef(1, 1)]],
            fragments=["<a/>"])
        split = _split_response(merged, (0, 1))
        assert split.fragments == []
        assert split.results == [[Atomic("xs:integer", "1")]]

    def test_window_skipped_when_not_worth_waiting(self):
        batcher = BulkBatcher(window_s=60.0, worth_waiting=lambda: False)
        sizes = []
        # A 60s window would hang the test if the predicate were ignored.
        xml = batcher.execute(
            batch_key("B", "$x", ["x"], "by-value", {}, None, None),
            call_with(5), echoing_exchange(sizes))
        assert ResponseMessage.from_xml(xml).results == \
            [[Atomic("xs:integer", "5")]]


class TestErrors:
    def test_leader_failure_reaches_every_participant(self):
        batcher = BulkBatcher(window_s=0.2)
        key = batch_key("B", "$x", ["x"], "by-value", {}, None, None)
        errors = []
        barrier = threading.Barrier(2)

        def exploding_exchange(_merged):
            raise ValueError("wire down")

        def participant(value):
            barrier.wait()
            try:
                batcher.execute(key, call_with(value), exploding_exchange)
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=participant, args=(v,))
                   for v in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == ["wire down", "wire down"]

    def test_batcher_reusable_after_failure(self):
        batcher = BulkBatcher(window_s=0.0)
        key = batch_key("B", "$x", ["x"], "by-value", {}, None, None)
        with pytest.raises(ValueError):
            batcher.execute(key, call_with(1),
                            lambda _m: (_ for _ in ()).throw(
                                ValueError("boom")))
        sizes = []
        xml = batcher.execute(key, call_with(2), echoing_exchange(sizes))
        assert ResponseMessage.from_xml(xml).results == \
            [[Atomic("xs:integer", "2")]]
