"""Engine correctness under concurrency: N parallel submissions must
be indistinguishable (result-wise) from sequential ``Federation.run``."""

import threading

import pytest

from repro.decompose import Strategy
from repro.errors import NetworkError
from repro.runtime.engine import EngineClosedError, FederationEngine
from repro.runtime.transport import LoopbackTransport
from repro.system.federation import Federation
from repro.workloads import (BENCHMARK_QUERY, build_federation,
                             multi_tenant_jobs, run_multi_tenant)
from repro.xquery.xdm import serialize_sequence

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML

CONCURRENCY = 8


def make_federation():
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


class TestConcurrentCorrectness:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_parallel_q2_matches_sequential(self, strategy):
        expected = serialize_sequence(
            make_federation().run(Q2, at="local", strategy=strategy).items)
        with FederationEngine(make_federation(),
                              max_workers=CONCURRENCY) as engine:
            futures = [engine.submit(Q2, "local", strategy)
                       for _ in range(CONCURRENCY)]
            for future in futures:
                assert serialize_sequence(future.result().items) == expected

    def test_parallel_benchmark_query_matches_sequential(self):
        """The acceptance smoke test: 8 concurrent benchmark queries,
        byte-identical to one sequential run, cache and batching on."""
        expected = serialize_sequence(
            build_federation(0.0025).run(BENCHMARK_QUERY, at="local").items)
        with FederationEngine(build_federation(0.0025),
                              max_workers=CONCURRENCY) as engine:
            futures = [engine.submit(BENCHMARK_QUERY, "local")
                       for _ in range(CONCURRENCY)]
            for future in futures:
                assert serialize_sequence(future.result().items) == expected
        assert engine.metrics.summary()["queries"] == CONCURRENCY

    def test_repeated_queries_hit_the_cache(self):
        with FederationEngine(make_federation(), max_workers=2) as engine:
            engine.submit(Q2, "local").result()
            repeat = engine.submit(Q2, "local").result()
        assert repeat.stats.cache_hits > 0
        assert repeat.stats.cache_saved_bytes > 0
        assert engine.cache.stats.hit_rate > 0

    def test_cache_disabled(self):
        with FederationEngine(make_federation(), max_workers=2,
                              cache=False) as engine:
            engine.submit(Q2, "local").result()
            repeat = engine.submit(Q2, "local").result()
        assert engine.cache is None
        assert repeat.stats.cache_hits == 0


class TestScheduling:
    def test_admission_control_bounds_in_flight(self):
        """With max_in_flight=1 the runtime never evaluates two queries
        at once, however many are submitted."""
        active = []
        peak = []
        lock = threading.Lock()

        class TrackingTransport(LoopbackTransport):
            def exchange(self, peer, request, handle, stats, **kwargs):
                with lock:
                    active.append(1)
                    peak.append(len(active))
                try:
                    return super().exchange(peer, request, handle, stats,
                                            **kwargs)
                finally:
                    with lock:
                        active.pop()

        federation = make_federation()
        engine = FederationEngine(federation, max_workers=4,
                                  max_in_flight=1,
                                  transport=TrackingTransport(
                                      federation.cost_model),
                                  cache=False, batch_window_s=0.0)

        # submit() itself blocks, so drive it from producer threads.
        def run_one():
            engine.submit(Q2, "local").result()

        producers = [threading.Thread(target=run_one) for _ in range(4)]
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        engine.shutdown()
        assert max(peak) == 1  # never two queries on the wire at once
        assert engine.metrics.summary()["queries"] == 4

    def test_run_all_preserves_job_order(self):
        jobs = [(Q2, "local", strategy) for strategy in Strategy] * 2
        with FederationEngine(make_federation(), max_workers=4) as engine:
            results = engine.run_all(jobs)
        assert [r.decomposition.strategy for r in results] == \
            [job[2] for job in jobs]

    BAD_QUERY = 'doc("xrpc://missing/d.xml")/child::a'

    def test_run_all_return_exceptions(self):
        jobs = [(Q2, "local"), (self.BAD_QUERY, "local")]
        with FederationEngine(make_federation(), max_workers=2) as engine:
            results = engine.run_all(jobs, return_exceptions=True)
        assert serialize_sequence(results[0].items)
        assert isinstance(results[1], NetworkError)

    def test_failures_recorded_and_raised(self):
        with FederationEngine(make_federation(), max_workers=2) as engine:
            future = engine.submit(self.BAD_QUERY, "local")
            with pytest.raises(NetworkError):
                future.result()
        summary = engine.metrics.summary()
        assert summary["failed"] == 1
        assert summary["queries"] == 0

    def test_cancelled_future_releases_admission_slot(self):
        """Cancelling a queued query must not leak its in-flight slot."""
        from repro.runtime.transport import SimulatedTransport

        federation = make_federation()
        transport = SimulatedTransport(federation.cost_model,
                                       time_scale=0.0,
                                       extra_latency_s=0.01)
        with FederationEngine(federation, max_workers=1, max_in_flight=2,
                              transport=transport) as engine:
            blocker = engine.submit(Q2, "local")
            queued = engine.submit(Q2, "local")
            assert queued.cancel()
            blocker.result()
            # Both slots must be free again: two more submits succeed
            # without blocking (a leaked slot would deadlock here).
            engine.run_all([(Q2, "local")] * 2)
            assert engine.in_flight == 0

    @staticmethod
    def _cache_listeners(peer):
        """Store listeners registered by a ResultCache (the planner's
        StatsCatalog keeps its own persistent listener on the peer)."""
        from repro.planner.stats import StatsCatalog

        return [listener for listener in peer._store_listeners
                if not isinstance(getattr(listener, "__self__", None),
                                  StatsCatalog)]

    def test_shutdown_detaches_owned_cache_listeners(self):
        federation = make_federation()
        peer = federation.peer("A")
        engine = FederationEngine(federation, max_workers=1)
        engine.submit(Q2, "local").result()
        assert len(self._cache_listeners(peer)) == 1
        engine.shutdown()
        assert self._cache_listeners(peer) == []

    def test_shutdown_keeps_shared_cache_attached(self):
        from repro.runtime.cache import ResultCache

        federation = make_federation()
        shared = ResultCache()
        engine = FederationEngine(federation, max_workers=1, cache=shared)
        engine.submit(Q2, "local").result()
        engine.shutdown()
        assert len(self._cache_listeners(federation.peer("A"))) == 1
        shared.detach()
        assert self._cache_listeners(federation.peer("A")) == []

    def test_submit_after_shutdown_raises(self):
        engine = FederationEngine(make_federation(), max_workers=1)
        engine.shutdown()
        with pytest.raises(EngineClosedError):
            engine.submit(Q2, "local")

    def test_peers_added_after_construction_are_hooked(self):
        federation = make_federation()
        with FederationEngine(federation, max_workers=2) as engine:
            engine.submit(Q2, "local").result()
            assert engine.cache.snapshot()["responses"] > 0
            late = federation.add_peer("C")
            engine.submit(Q2, "local").result()  # re-attaches
            late.store("extra.xml", "<d/>")
            assert engine.cache.snapshot()["responses"] == 0


class TestMultiTenantWorkload:
    def test_jobs_are_deterministic_and_repeat_thresholds(self):
        jobs = multi_tenant_jobs(clients=8, rounds=2)
        again = multi_tenant_jobs(clients=8, rounds=2)
        assert jobs == again
        assert len(jobs) == 16
        assert len({job.query for job in jobs}) < len(jobs)  # repeats

    def test_engine_kwargs_rejected_with_supplied_engine(self):
        federation = build_federation(0.0025)
        with FederationEngine(federation, max_workers=1) as engine:
            with pytest.raises(ValueError):
                run_multi_tenant(federation, [], engine=engine,
                                 max_workers=4)

    def test_run_multi_tenant_end_to_end(self):
        federation = build_federation(0.0025)
        jobs = multi_tenant_jobs(clients=4, rounds=2)
        results, engine = run_multi_tenant(federation, jobs, max_workers=4)
        assert len(results) == len(jobs)
        summary = engine.metrics.summary()
        assert summary["queries"] == len(jobs)
        assert summary["failed"] == 0
        assert engine.cache.stats.hit_rate > 0
        # Identical jobs produced identical results.
        by_query: dict[str, str] = {}
        for job, result in zip(jobs, results):
            text = serialize_sequence(result.items)
            assert by_query.setdefault(job.query, text) == text
