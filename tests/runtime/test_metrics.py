"""Fleet metrics: percentile math and cross-query aggregation."""

import pytest

from repro.net.stats import RunStats
from repro.runtime.metrics import MetricsAggregator, QueryRecord, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_single_value(self):
        assert percentile([3.5], 50) == 3.5
        assert percentile([3.5], 99) == 3.5

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_p95_on_uniform_grid(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 95) == pytest.approx(95.05)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


def record(start, end, *, message_bytes=0, cache_hits=0, saved=0,
           error=None):
    stats = None
    if error is None:
        stats = RunStats(message_bytes=message_bytes,
                         cache_hits=cache_hits, cache_saved_bytes=saved)
    return QueryRecord(started_at=start, finished_at=end, stats=stats,
                       strategy="by-projection", at="local", error=error)


class TestAggregator:
    def test_empty_summary(self):
        summary = MetricsAggregator().summary()
        assert summary["queries"] == 0
        assert summary["throughput_qps"] == 0.0
        assert summary["latency_s"]["p95"] == 0.0

    def test_throughput_over_busy_interval(self):
        metrics = MetricsAggregator()
        # Two overlapping queries spanning 0.0 .. 2.0 seconds.
        metrics.record(record(0.0, 1.5, message_bytes=100))
        metrics.record(record(0.5, 2.0, message_bytes=300))
        summary = metrics.summary()
        assert summary["queries"] == 2
        assert summary["busy_s"] == pytest.approx(2.0)
        assert summary["throughput_qps"] == pytest.approx(1.0)
        assert summary["total_transferred_bytes"] == 400

    def test_latency_percentiles(self):
        metrics = MetricsAggregator()
        for wall in (0.1, 0.2, 0.3, 0.4):
            metrics.record(record(0.0, wall))
        latency = metrics.summary()["latency_s"]
        assert latency["p50"] == pytest.approx(0.25)
        assert latency["max"] == pytest.approx(0.4)

    def test_failures_counted_separately(self):
        metrics = MetricsAggregator()
        metrics.record(record(0.0, 1.0))
        metrics.record(record(0.0, 0.5, error="NetworkError: boom"))
        summary = metrics.summary()
        assert summary["queries"] == 1
        assert summary["failed"] == 1

    def test_cache_totals(self):
        metrics = MetricsAggregator()
        metrics.record(record(0.0, 1.0, cache_hits=2, saved=50))
        metrics.record(record(0.0, 1.0, cache_hits=1, saved=25))
        summary = metrics.summary()
        assert summary["cache_hits"] == 3
        assert summary["cache_saved_bytes"] == 75

    def test_format_summary_mentions_the_headlines(self):
        metrics = MetricsAggregator()
        metrics.record(record(0.0, 0.25, message_bytes=10, cache_hits=1,
                              saved=5))
        text = metrics.format_summary()
        assert "throughput" in text
        assert "p95" in text
        assert "cache" in text
