"""Result-cache correctness: keys, LRU bounds, counters, and — the
load-bearing part — invalidation through ``Peer.store``."""

from repro.runtime.cache import ResultCache, response_key
from repro.runtime.engine import FederationEngine
from repro.system.federation import Federation
from repro.xmldb.parser import parse_document
from repro.xquery.xdm import serialize_sequence

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML


def make_federation():
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


class TestResponseKey:
    def test_identical_requests_share_a_key(self):
        assert response_key("B", "by-fragment", "<xml/>", None, None) == \
            response_key("B", "by-fragment", "<xml/>", None, None)

    def test_projection_signature_separates_entries(self):
        base = response_key("B", "by-fragment", "<xml/>", None, None)
        used = response_key("B", "by-fragment", "<xml/>", ["child::a"], None)
        returned = response_key("B", "by-fragment", "<xml/>", None, ["child::a"])
        assert len({base, used, returned}) == 3

    def test_dest_peer_separates_entries(self):
        assert response_key("A", "by-fragment", "<xml/>", None, None) != \
            response_key("B", "by-fragment", "<xml/>", None, None)

    def test_semantics_separates_entries(self):
        """By-value and by-fragment requests are byte-identical on the
        wire (semantics travels out-of-band), but their responses use
        different formats — they must never share a cache entry."""
        assert response_key("B", "by-value", "<xml/>", None, None) != \
            response_key("B", "by-fragment", "<xml/>", None, None)

    def test_mixed_strategy_runs_never_share_responses(self):
        from repro.decompose import Strategy

        federation = make_federation()
        cache = ResultCache()
        cache.attach(federation)
        by_value = federation.run(Q2, at="local",
                                  strategy=Strategy.BY_VALUE,
                                  result_cache=cache)
        by_fragment = federation.run(Q2, at="local",
                                     strategy=Strategy.BY_FRAGMENT,
                                     result_cache=cache)
        # The second run must not be served the first run's response.
        assert by_fragment.stats.cache_hits == 0
        assert by_fragment.stats.messages > 0
        assert serialize_sequence(by_value.items) == \
            serialize_sequence(by_fragment.items)


class TestLruAndCounters:
    def test_hit_and_miss_counters(self):
        cache = ResultCache()
        key = response_key("B", "by-fragment", "<req/>", None, None)
        assert cache.lookup_response(key) is None
        cache.store_response(key, "<resp/>")
        assert cache.lookup_response(key, request_bytes=10) == "<resp/>"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.saved_bytes == 10 + len("<resp/>")

    def test_response_lru_eviction(self):
        cache = ResultCache(max_responses=2)
        keys = [response_key("B", "by-fragment", f"<req n='{i}'/>", None, None)
                for i in range(3)]
        for i, key in enumerate(keys):
            cache.store_response(key, f"<resp n='{i}'/>")
        assert cache.lookup_response(keys[0]) is None  # evicted
        assert cache.lookup_response(keys[1]) is not None
        assert cache.lookup_response(keys[2]) is not None
        assert cache.stats.evictions == 1

    def test_lookup_refreshes_lru_order(self):
        cache = ResultCache(max_responses=2)
        keys = [response_key("B", "by-fragment", f"<req n='{i}'/>", None, None)
                for i in range(3)]
        cache.store_response(keys[0], "a")
        cache.store_response(keys[1], "b")
        cache.lookup_response(keys[0])          # 0 becomes most recent
        cache.store_response(keys[2], "c")      # evicts 1, not 0
        assert cache.lookup_response(keys[0]) == "a"
        assert cache.lookup_response(keys[1]) is None

    def test_document_entries_bounded(self):
        cache = ResultCache(max_documents=1)
        doc = parse_document("<d/>", uri="d.xml")
        cache.store_document("local", "A", "one.xml", doc, 4)
        cache.store_document("local", "A", "two.xml", doc, 4)
        assert cache.lookup_document("local", "A", "one.xml") is None
        assert cache.lookup_document("local", "A", "two.xml") == (doc, 4)


class TestInvalidation:
    def test_invalidate_peer_drops_documents_and_all_responses(self):
        cache = ResultCache()
        doc = parse_document("<d/>", uri="d.xml")
        cache.store_document("local", "A", "students.xml", doc, 4)
        cache.store_document("local", "B", "course42.xml", doc, 4)
        cache.store_response(response_key("B", "by-fragment", "<req/>", None, None), "<r/>")
        cache.invalidate_peer("A")
        # A's document gone; B's kept; responses dropped wholesale
        # (they may transitively depend on any peer's documents).
        assert cache.lookup_document("local", "A", "students.xml") is None
        assert cache.lookup_document("local", "B", "course42.xml") \
            is not None
        assert cache.lookup_response(
            response_key("B", "by-fragment", "<req/>", None, None)) is None
        assert cache.stats.invalidations == 2

    def test_peer_store_invalidates_serialized_text_cache(self):
        federation = make_federation()
        peer = federation.peer("A")
        before = peer.serialized("students.xml")
        peer.store("students.xml", "<people/>")
        after = peer.serialized("students.xml")
        assert before != after
        assert "<people/>" in after

    def test_peer_store_invalidates_runtime_fragment_cache(self):
        """The satellite requirement: a store reaches both the
        serialized-text cache and the engine's result cache, and later
        queries see the new data."""
        federation = make_federation()
        with FederationEngine(federation, max_workers=2,
                              batch_window_s=0.0) as engine:
            first = engine.submit(Q2, "local").result()
            assert engine.cache.snapshot()["responses"] > 0

            # Repeat: answered from cache, same answer.
            repeat = engine.submit(Q2, "local").result()
            assert repeat.stats.cache_hits > 0
            assert serialize_sequence(repeat.items) == \
                serialize_sequence(first.items)

            # Update course42.xml: every grade becomes Z.
            federation.peer("B").store("course42.xml", """<enroll>
 <exam id="s2"><grade>Z</grade></exam>
 <exam id="s1"><grade>Z</grade></exam>
</enroll>""")
            assert engine.cache.snapshot()["responses"] == 0

            fresh = engine.submit(Q2, "local").result()
            text = serialize_sequence(fresh.items)
            assert text != serialize_sequence(first.items)
            assert "Z" in text

    def test_stale_epoch_store_is_discarded(self):
        """A value computed before an invalidation must not re-populate
        the cache after it (the store/invalidate race)."""
        cache = ResultCache()
        key = response_key("B", "by-fragment", "<req/>", None, None)
        epoch = cache.epoch()
        cache.invalidate_peer("B")  # lands mid-computation
        cache.store_response(key, "<stale/>", epoch=epoch)
        assert cache.lookup_response(key) is None

        doc = parse_document("<d/>", uri="d.xml")
        epoch = cache.epoch()
        cache.invalidate_peer("A")
        cache.store_document("local", "A", "d.xml", doc, 4, epoch=epoch)
        assert cache.lookup_document("local", "A", "d.xml") is None

    def test_current_epoch_store_is_kept(self):
        cache = ResultCache()
        key = response_key("B", "by-fragment", "<req/>", None, None)
        cache.store_response(key, "<fresh/>", epoch=cache.epoch())
        assert cache.lookup_response(key) == "<fresh/>"

    def test_attach_is_idempotent(self):
        federation = make_federation()
        cache = ResultCache()
        cache.attach(federation)
        cache.attach(federation)
        assert len(federation.peer("A")._store_listeners) == 1
        cache.store_response(response_key("B", "by-fragment", "<r/>", None, None), "<x/>")
        federation.peer("A").store("extra.xml", "<d/>")
        assert cache.stats.invalidations == 1
