"""Property tests for the migration protocol.

Three invariants the executor must hold under any input:

1. **Split exactness** — the two child fragments of any boundary split
   merge back byte-exactly into the parent fragment.
2. **No intermediate under-replication, no torn placement** — at every
   catalog state a migration publishes, the migrated shard's live
   replica count is ≥ its pre-migration count, and every published
   replica already holds the fragment bytes (checked synchronously
   inside ``replace``, before any reader can observe the state).
3. **Mid-migration deaths converge** — killing the copy source or the
   destination at any point yields either a completed cutover or a
   clean give-up with the catalog untouched; after revival the repair
   loop restores target replication and answers stay byte-exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    BoundaryPartitioner, ClusterCatalog, MigrationExecutor, MovePlan,
    SplitPlan, create_sharded_collection, merge_shard_documents,
    partition_document,
)
from repro.cluster.rebalance import Rebalancer
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.net.costmodel import CostModel
from repro.runtime.transport import LoopbackTransport
from repro.system.federation import Federation
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize

from tests.cluster.conftest import LIBRARY_CONTAINER, LIBRARY_MEMBER

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


def library_xml(count: int) -> str:
    return (
        "<library><meta><curator>Ann</curator></meta><books>"
        + "".join(f'<book id="b{i}"><title>Book {i}</title>'
                  f"<year>{2000 + i}</year></book>"
                  for i in range(count))
        + "</books><staff><clerk>Bob</clerk></staff></library>"
    )


class RecordingCatalog(ClusterCatalog):
    """Checks the no-torn-placement invariant *synchronously* inside
    every ``replace`` — at the instant a placement becomes visible,
    every replica it names must already hold the fragment."""

    def __init__(self, federation_ref):
        super().__init__()
        self.federation_ref = federation_ref
        self.history: list[tuple[str, dict[int, int]]] = []

    def replace(self, spec, reason="replace", **attrs):
        federation = self.federation_ref()
        for shard in spec.shards:
            for replica in shard.replicas:
                assert shard.local_name in \
                    federation.peer(replica).documents, (
                        f"torn placement: {reason} published "
                        f"{shard.local_name} on {replica} before the "
                        f"bytes landed")
        self.history.append(
            (reason, {s.index: len(self.live_replicas(s))
                      for s in spec.shards}))
        super().replace(spec, reason=reason, **attrs)


class KillAfter(LoopbackTransport):
    """Kills ``victim`` after ``threshold`` document fetches — the
    seeded mid-migration death."""

    def __init__(self, cost_model, victim: str | None = None,
                 threshold: int = 0):
        super().__init__(cost_model)
        self.victim = victim
        self.threshold = threshold
        self.fetches = 0

    def fetch_document(self, owner, local_name, stats):
        if self.victim is not None:
            if self.fetches >= self.threshold:
                self.kill_peer(self.victim)
                self.victim = None
            self.fetches += 1
        return super().fetch_document(owner, local_name, stats)


def make_recorded_cluster(members: int = 8, shard_count: int = 2,
                          transport=None):
    holder: list[Federation] = []
    catalog = RecordingCatalog(lambda: holder[0])
    federation = Federation(catalog=catalog, transport=transport)
    holder.append(federation)
    for node in ("node1", "node2", "node3", "node4"):
        federation.add_peer(node)
    federation.add_peer("local")
    create_sharded_collection(
        federation, catalog, name="books-c",
        document=parse_document(library_xml(members),
                                uri="xrpc://books-c/books.xml"),
        document_name="books.xml", container_path=LIBRARY_CONTAINER,
        member=LIBRARY_MEMBER, shard_count=shard_count,
        replication_factor=2,
        peers=["node1", "node2", "node3", "node4"])
    return federation, catalog


# -- invariant 1: split exactness -------------------------------------------


@settings(max_examples=40, deadline=None)
@given(members=st.integers(min_value=2, max_value=30),
       data=st.data())
def test_split_children_union_to_parent_bytes(members, data):
    at = data.draw(st.integers(min_value=1, max_value=members - 1))
    text = library_xml(members)
    doc = parse_document(text, uri="xrpc://c/books.xml")
    fragments = partition_document(
        doc, LIBRARY_CONTAINER, LIBRARY_MEMBER, 2,
        BoundaryPartitioner(at))
    counts = [count for _frag, count in fragments]
    assert counts == [at, members - at]
    merged = merge_shard_documents(
        [frag for frag, _count in fragments], uri=doc.uri,
        container_path=LIBRARY_CONTAINER)
    assert serialize(merged) == serialize(doc)


# -- invariant 2: live replicas never dip, placements never tear -------------


@settings(max_examples=25, deadline=None)
@given(members=st.integers(min_value=2, max_value=12),
       data=st.data())
def test_migrations_never_reduce_live_replicas(members, data):
    federation, catalog = make_recorded_cluster(members=members)
    executor = MigrationExecutor(federation)
    spec = catalog.get("books-c")
    pre_live = {s.index: len(catalog.live_replicas(s))
                for s in spec.shards}
    shard = data.draw(st.sampled_from(spec.shards))
    do_split = data.draw(st.booleans()) and shard.members >= 2
    if do_split:
        at = data.draw(st.integers(min_value=1,
                                   max_value=shard.members - 1))
        assert executor.execute(SplitPlan("books-c", shard.index,
                                          at_member=at))
    else:
        source = data.draw(st.sampled_from(shard.replicas))
        targets = [p for p in ("node1", "node2", "node3", "node4")
                   if p not in shard.replicas]
        assert executor.execute(MovePlan(
            "books-c", shard.index, source=source,
            target=data.draw(st.sampled_from(targets))))
    # RecordingCatalog.replace already proved no placement tore; here:
    # no published state dropped a surviving shard below its
    # pre-migration live count.
    for reason, live_by_index in catalog.history:
        if reason != "rebalance":
            continue
        for index, live in live_by_index.items():
            if index in pre_live and not do_split:
                assert live >= pre_live[index]
            else:
                assert live >= 2   # split children start fully placed


# -- invariant 3: seeded mid-migration deaths converge -----------------------


@settings(max_examples=25, deadline=None)
@given(victim_is_target=st.booleans(),
       threshold=st.integers(min_value=0, max_value=3),
       data=st.data())
def test_kill_mid_move_converges(victim_is_target, threshold, data):
    transport = KillAfter(CostModel())
    federation, catalog = make_recorded_cluster(members=8,
                                                transport=transport)
    RepairEngine(auto_repair=False).attach(federation)
    rebalancer = Rebalancer().attach(federation)
    spec = catalog.get("books-c")
    shard = data.draw(st.sampled_from(spec.shards))
    source = shard.replicas[0]
    target = next(p for p in ("node1", "node2", "node3", "node4")
                  if p not in shard.replicas)
    pre_live = len(catalog.live_replicas(shard))

    transport.victim = target if victim_is_target else source
    transport.threshold = threshold
    plan = MovePlan("books-c", shard.index, source=source,
                    target=target)
    rebalancer.executor.execute(plan)   # may complete or give up

    # Whatever happened, the victim's death never dropped the shard
    # below its pre-migration live count: give-up leaves the catalog
    # untouched, completion swaps a live copy in atomically.
    spec_now = catalog.get("books-c")
    shard_now = next(s for s in spec_now.shards
                     if s.index == shard.index)
    live_now = [r for r in shard_now.replicas
                if not transport.is_down(r)]
    assert len(live_now) >= pre_live - (
        1 if not victim_is_target else 0)
    # The dead peer revives; repair restores target replication and
    # the collection answers byte-exactly everywhere.
    for peer in ("node1", "node2", "node3", "node4"):
        transport.revive_peer(peer)
    repair = federation.repair
    assert repair.run_until_converged()
    spec_final = catalog.get("books-c")
    for s in spec_final.shards:
        assert len(s.replicas) >= spec_final.target_replication
        for replica in s.replicas:
            assert s.local_name in federation.peer(replica).documents
    result = federation.run(SCAN, at="local",
                            strategy=Strategy.BY_PROJECTION)
    assert len(result.items) == 8


def test_give_up_emits_failure_and_leaves_catalog_alone():
    transport = KillAfter(CostModel(), victim=None)
    federation, catalog = make_recorded_cluster(members=6,
                                                transport=transport)
    executor = MigrationExecutor(federation, max_attempts=2)
    spec = catalog.get("books-c")
    shard = spec.shards[0]
    target = next(p for p in ("node1", "node2", "node3", "node4")
                  if p not in shard.replicas)
    # Dead target from the start: every verify read-back fails.
    transport.kill_peer(target)
    epoch = catalog.epoch()
    assert not executor.execute(MovePlan(
        "books-c", shard.index, source=shard.replicas[0],
        target=target))
    assert catalog.epoch() == epoch
    assert executor.stats()["migrations_failed"] == 1
    # Rollback removed the half-copied fragment from the dead target.
    assert shard.local_name not in federation.peer(target).documents


def test_stale_plans_are_noops():
    federation, catalog = make_recorded_cluster(members=6)
    executor = MigrationExecutor(federation)
    spec = catalog.get("books-c")
    shard = spec.shards[0]
    epoch = catalog.epoch()
    # Target already a replica.
    assert not executor.execute(MovePlan(
        "books-c", shard.index, source=shard.replicas[0],
        target=shard.replicas[1]))
    # Source not a replica.
    assert not executor.execute(MovePlan(
        "books-c", shard.index, source="local",
        target="node4"))
    # Unknown shard index.
    assert not executor.execute(SplitPlan("books-c", 99, at_member=1))
    assert catalog.epoch() == epoch
    assert executor.stats()["migrations_failed"] == 0


def test_retire_refuses_to_break_replication():
    federation, catalog = make_recorded_cluster(members=6)
    executor = MigrationExecutor(federation)
    spec = catalog.get("books-c")
    shard = spec.shards[0]
    # At exactly target replication: retiring any replica must refuse.
    assert not executor.retire_replica("books-c", shard.index,
                                       shard.replicas[0])
    # Over-replicate by hand, then retiring works.
    federation.peer("node4").store(
        shard.local_name,
        federation.peer(shard.replicas[0]).serialized(shard.local_name))
    from dataclasses import replace as dc_replace
    from repro.cluster.catalog import with_replicas
    wider = tuple(
        with_replicas(s, s.replicas + ("node4",))
        if s.index == shard.index else s for s in spec.shards)
    catalog.replace(dc_replace(spec, shards=wider), reason="test")
    assert executor.retire_replica("books-c", shard.index, "node4")
    spec_now = catalog.get("books-c")
    assert "node4" not in spec_now.shards[shard.index].replicas
