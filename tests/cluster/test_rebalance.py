"""Load-aware rebalancing: scoring, planning, drain, placement health,
topology introspection, and chaos-schedule rebalance ops."""

import random

import pytest

from repro.cluster import (
    ChaosHarness, ChaosSchedule, InsufficientHealthyPeersError,
    LoadScorer, MovePlan, Rebalancer, SplitPlan,
    create_sharded_collection, round_robin_placement,
)
from repro.cluster.membership import MembershipTracker
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import FleetMonitor
from repro.obs.console import render_fleet
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import (
    LIBRARY_CONTAINER, LIBRARY_MEMBER, library_document, make_cluster,
    make_single_owner,
)

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")

HOT = ('for $b in doc("xrpc://books-c/books.xml")'
       "/child::library/child::books/child::book "
       'return if ($b/attribute::id = "b0") then $b/child::title'
       " else ()")


def expected(query=SCAN):
    single = make_single_owner()
    result = single.run(query.replace("xrpc://books-c", "xrpc://owner"),
                        at="local", strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


def run_scan(cluster, query=SCAN):
    result = cluster.run(query, at="local",
                         strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


def attach_rebalancer(cluster) -> Rebalancer:
    FleetMonitor().attach(cluster)
    MembershipTracker().attach(cluster)
    RepairEngine(auto_repair=False).attach(cluster)
    return Rebalancer().attach(cluster)


# -- scoring -----------------------------------------------------------------


def test_scorer_ranks_cool_peers_first():
    cluster = make_cluster()
    scorer = LoadScorer(cluster)
    ranked = scorer.rank()
    # "local" holds no fragments: coolest. Every data node carries 2.
    assert ranked[0] == "local"
    scores = scorer.snapshot()
    assert scores["node1"].fragments == 2
    assert scores["node1"].fragment_bytes > 0
    assert scores["local"].fragments == 0


def test_scorer_excludes_down_draining_and_excluded():
    cluster = make_cluster()
    scorer = LoadScorer(cluster)
    cluster.catalog.mark_down("node1")
    cluster.catalog.set_draining("node2", True)
    ranked = scorer.rank(exclude={"node3"})
    assert "node1" not in ranked
    assert "node2" not in ranked
    assert "node3" not in ranked
    assert "node4" in ranked


def test_repair_targets_through_shared_scorer():
    """Repair's candidate ranking is the scorer's: a draining peer is
    never a re-replication target even when it is the emptiest."""
    cluster = make_cluster()
    repair = RepairEngine(auto_repair=False).attach(cluster)
    cluster.catalog.set_draining("local", True)
    spec = cluster.catalog.get("books-c")
    candidates = repair._candidates(spec, spec.shards[0])
    assert "local" not in candidates
    assert set(candidates) <= {"node2", "node3", "node4"}


# -- explicit operations -----------------------------------------------------


def test_split_keeps_answers_exact():
    cluster = make_cluster(shard_count=2)
    rebalancer = attach_rebalancer(cluster)
    want = expected()
    assert run_scan(cluster) == want
    epoch = cluster.catalog.epoch()
    assert rebalancer.split("books-c", 0)
    assert cluster.catalog.epoch() > epoch
    spec = cluster.catalog.get("books-c")
    assert spec.shard_count == 3
    assert [s.index for s in spec.shards] == [0, 1, 2]
    assert spec.shards[0].local_name == "books.xml#s0.0"
    assert spec.shards[1].local_name == "books.xml#s0.1"
    assert sum(s.members for s in spec.shards) == 10
    assert run_scan(cluster) == want


def test_move_keeps_answers_exact_and_retires_source():
    cluster = make_cluster()
    rebalancer = attach_rebalancer(cluster)
    want = expected()
    spec = cluster.catalog.get("books-c")
    source = spec.shards[0].replicas[0]
    local_name = spec.shards[0].local_name
    assert rebalancer.move("books-c", 0, source)
    spec = cluster.catalog.get("books-c")
    assert source not in spec.shards[0].replicas
    assert len(spec.shards[0].replicas) == 2
    # The old copy survives until collect() — an in-flight scatter
    # pinned to the old epoch may still need it.
    assert local_name in cluster.peer(source).documents
    assert run_scan(cluster) == want
    assert rebalancer.collect() == 1
    assert local_name not in cluster.peer(source).documents
    assert run_scan(cluster) == want


def test_drain_empties_peer_and_keeps_replication():
    cluster = make_cluster()
    rebalancer = attach_rebalancer(cluster)
    want = expected()
    assert rebalancer.drain("node1")
    rebalancer.collect()
    assert cluster.peer("node1").documents == {}
    spec = cluster.catalog.get("books-c")
    for shard in spec.shards:
        assert "node1" not in shard.replicas
        assert len(shard.replicas) >= spec.target_replication
        for replica in shard.replicas:
            assert shard.local_name in cluster.peer(replica).documents
    assert run_scan(cluster) == want
    # Undrain restores placement eligibility.
    assert cluster.catalog.is_draining("node1")
    rebalancer.undrain("node1")
    assert not cluster.catalog.is_draining("node1")


# -- planning ----------------------------------------------------------------


def test_plan_splits_the_hot_shard():
    """A shard absorbing all the traffic (shard skipping proves the
    others cold) crosses hot_share and gets a split plan."""
    cluster = make_cluster(shard_count=2)
    rebalancer = attach_rebalancer(cluster)
    rebalancer.plan()  # baseline the heat window
    for _ in range(4):
        run_scan(cluster, HOT)   # b0 lives in shard 0; shard 1 skips
    plans = rebalancer.plan()
    splits = [p for p in plans if isinstance(p, SplitPlan)]
    assert splits and splits[0].collection == "books-c"
    spec = cluster.catalog.get("books-c")
    hot_shard = next(s for s in spec.shards
                     if s.index == splits[0].shard_index)
    assert hot_shard.local_name == "books.xml#s0"


def test_plan_moves_off_the_hottest_peer():
    cluster = make_cluster()
    rebalancer = attach_rebalancer(cluster)
    rebalancer.spread_factor = 1.0
    plans = rebalancer.plan()
    moves = [p for p in plans if isinstance(p, MovePlan)]
    assert moves
    want = expected()
    assert rebalancer.executor.execute(moves[0])
    assert run_scan(cluster) == want


def test_step_runs_plans_to_completion():
    cluster = make_cluster(shard_count=2)
    rebalancer = attach_rebalancer(cluster)
    rebalancer.plan()
    for _ in range(4):
        run_scan(cluster, HOT)
    assert rebalancer.step() >= 1
    assert cluster.catalog.get("books-c").shard_count >= 3
    assert run_scan(cluster) == expected()


# -- placement health (satellite) -------------------------------------------


def test_round_robin_insufficient_peers_is_typed():
    with pytest.raises(InsufficientHealthyPeersError):
        round_robin_placement(["a", "b"], shard_count=2,
                              replication_factor=3)


def test_create_collection_skips_unhealthy_peers():
    cluster = make_cluster()
    cluster.catalog.mark_down("node1")
    cluster.catalog.set_draining("node2", True)
    spec = create_sharded_collection(
        cluster, cluster.catalog, name="books2-c",
        document=library_document("xrpc://books2-c/books.xml"),
        document_name="books2.xml", container_path=LIBRARY_CONTAINER,
        member=LIBRARY_MEMBER, shard_count=2, replication_factor=2,
        peers=["node1", "node2", "node3", "node4"])
    placed = {peer for shard in spec.shards for peer in shard.replicas}
    assert placed == {"node3", "node4"}


def test_create_collection_raises_when_too_few_healthy():
    cluster = make_cluster()
    cluster.catalog.mark_down("node1")
    cluster.catalog.mark_down("node2")
    cluster.catalog.mark_down("node3")
    with pytest.raises(InsufficientHealthyPeersError):
        create_sharded_collection(
            cluster, cluster.catalog, name="books2-c",
            document=library_document("xrpc://books2-c/books.xml"),
            document_name="books2.xml",
            container_path=LIBRARY_CONTAINER, member=LIBRARY_MEMBER,
            shard_count=2, replication_factor=2,
            peers=["node1", "node2", "node3", "node4"])


# -- introspection (satellite) ----------------------------------------------


def test_describe_reports_live_counts_and_reason():
    cluster = make_cluster()
    cluster.catalog.mark_down("node1")
    snap = cluster.catalog.describe()
    coll = snap["collections"]["books-c"]
    assert coll["last_reason"] == "register"
    assert coll["target_replication"] == 2
    shard0 = coll["shards"][0]       # placed on node1+node2
    assert shard0["live"] == ["node2"]
    assert shard0["live_count"] == 1
    rebalancer = attach_rebalancer(cluster)
    cluster.catalog.mark_up("node1")
    assert rebalancer.move("books-c", 0, "node1")
    snap = cluster.catalog.describe()
    assert snap["collections"]["books-c"]["last_reason"] == "rebalance"


def test_console_renders_topology():
    cluster = make_cluster()
    monitor = FleetMonitor().attach(cluster)
    text = render_fleet(monitor)
    assert "topology" in text
    assert "books-c [range] rf=2" in text
    assert "books.xml#s0" in text
    cluster.catalog.mark_down("node1")
    cluster.catalog.set_draining("node4", True)
    text = render_fleet(monitor)
    assert "UNDER-REPLICATED" in text
    assert "draining node4" in text


def test_console_without_federation_still_renders():
    cluster = make_cluster()
    monitor = FleetMonitor()     # never attached: no federation
    assert "topology" not in render_fleet(monitor)


# -- heat metrics ------------------------------------------------------------


def test_router_records_per_shard_serves():
    cluster = make_cluster(shard_count=2)
    rebalancer = attach_rebalancer(cluster)
    run_scan(cluster)
    heat = rebalancer.heat()
    assert heat.get(("books-c", "books.xml#s0"), 0) >= 1
    assert heat.get(("books-c", "books.xml#s1"), 0) >= 1
    run_scan(cluster, HOT)       # shard 1 proven empty: skipped
    after = rebalancer.heat()
    assert after[("books-c", "books.xml#s0")] > heat[
        ("books-c", "books.xml#s0")]
    assert after[("books-c", "books.xml#s1")] == heat[
        ("books-c", "books.xml#s1")]


# -- chaos integration -------------------------------------------------------


def test_schedule_generation_is_replay_compatible():
    """Adding rebalance ops must not perturb the fault stream: the
    same seed yields the same kills/degrades with or without them."""
    base = ChaosSchedule.generate(random.Random(7), ["a", "b", "c"],
                                  steps=24)
    spiced = ChaosSchedule.generate(random.Random(7), ["a", "b", "c"],
                                    steps=24, splits=2, moves=1,
                                    drains=1)
    faults = [e for e in spiced.events
              if e.action in ("kill", "revive", "degrade", "restore")]
    assert tuple(faults) == base.events
    ops = [e.action for e in spiced.events
           if e.action not in ("kill", "revive", "degrade", "restore")]
    assert sorted(set(ops)) == ["drain", "move", "split", "undrain"]


def test_chaos_with_resharding_zero_wrong_answers():
    cluster = make_cluster(shard_count=2)
    nodes = ["node1", "node2", "node3", "node4"]
    monitor = FleetMonitor().attach(cluster)
    membership = MembershipTracker().attach(cluster)
    membership.watch(*nodes)
    RepairEngine().attach(cluster)
    rebalancer = Rebalancer().attach(cluster)
    schedule = ChaosSchedule.generate(
        random.Random(20090329), nodes, steps=24, splits=1, moves=2,
        drains=1)
    harness = ChaosHarness(cluster, schedule,
                           queries=[(SCAN, expected())],
                           strategy=Strategy.BY_PROJECTION)
    report = harness.run()
    assert report.ok, report.as_dict()
    assert report.wrong_answers == 0
    assert report.splits + report.moves + report.retires >= 1
    assert report.migrations_failed == 0
    spec = cluster.catalog.get("books-c")
    for shard in spec.shards:
        live = [r for r in shard.replicas
                if not cluster.catalog.is_down(r)]
        assert len(live) >= spec.target_replication
    assert rebalancer.stats()["drains"] == 1
