"""Partitioning and reassembly: exact, duplication-free splits."""

import pytest

from repro.cluster import (
    ClusterError, HashPartitioner, RangePartitioner, collection_members,
    make_partitioner, merge_shard_documents, partition_document,
)
from repro.xmark import XMarkConfig, generate_people
from repro.xmldb.serializer import serialize

from tests.cluster.conftest import (
    LIBRARY_CONTAINER, LIBRARY_MEMBER, library_document,
)


def test_collection_members_in_document_order():
    members = collection_members(library_document(), LIBRARY_CONTAINER,
                                 LIBRARY_MEMBER)
    ids = [next(a.value for a in _attrs(m) if a.name == "id")
           for m in members]
    assert ids == [f"b{i}" for i in range(10)]


def _attrs(node):
    from repro.xmldb.axes import attribute
    return list(attribute(node))


def test_range_partitioning_is_contiguous():
    assignments = RangePartitioner().assign([None] * 10, 4)
    assert assignments == sorted(assignments)
    assert set(assignments) == {0, 1, 2, 3}


def test_hash_partitioning_is_deterministic_and_spread():
    members = collection_members(library_document(), LIBRARY_CONTAINER,
                                 LIBRARY_MEMBER)
    first = HashPartitioner().assign(members, 4)
    second = HashPartitioner().assign(
        collection_members(library_document(), LIBRARY_CONTAINER,
                           LIBRARY_MEMBER), 4)
    # CRC-32 of @id: stable across documents, processes and runs.
    assert first == second
    assert all(0 <= shard < 4 for shard in first)
    assert len(set(first)) > 1, "10 members should not all hash together"


def test_partition_counts_and_spine():
    doc = library_document()
    shards = partition_document(doc, LIBRARY_CONTAINER, LIBRARY_MEMBER,
                                4, RangePartitioner())
    assert sum(count for _, count in shards) == 10
    for index, (shard_doc, count) in enumerate(shards):
        members = collection_members(shard_doc, LIBRARY_CONTAINER,
                                     LIBRARY_MEMBER)
        assert len(members) == count
        text = serialize(shard_doc)
        # Non-member content lives in shard 0 only.
        assert ("<curator>" in text) == (index == 0)
        assert ("<clerk>" in text) == (index == 0)


def test_partition_rejects_bad_container():
    with pytest.raises(ClusterError):
        partition_document(library_document(), ("library", "nope"),
                           LIBRARY_MEMBER, 2, RangePartitioner())
    with pytest.raises(ClusterError):
        partition_document(library_document(), ("wrong-root",),
                           LIBRARY_MEMBER, 2, RangePartitioner())


def test_make_partitioner():
    assert make_partitioner("range").kind == "range"
    assert make_partitioner("hash").kind == "hash"
    with pytest.raises(ClusterError):
        make_partitioner("modulo")


@pytest.mark.parametrize("shard_count", [1, 2, 4, 7])
def test_range_merge_roundtrips_exactly(shard_count):
    """Partition + merge must reproduce the document byte for byte."""
    doc = library_document()
    shards = partition_document(doc, LIBRARY_CONTAINER, LIBRARY_MEMBER,
                                shard_count, RangePartitioner())
    merged = merge_shard_documents([d for d, _ in shards], doc.uri,
                                   LIBRARY_CONTAINER)
    assert serialize(merged) == serialize(doc)


def test_range_merge_roundtrips_xmark():
    doc = generate_people(XMarkConfig(scale=0.003), uri="people.xml")
    shards = partition_document(doc, ("site", "people"), "person",
                                4, RangePartitioner())
    merged = merge_shard_documents([d for d, _ in shards], doc.uri,
                                   ("site", "people"))
    assert serialize(merged) == serialize(doc)


def test_hash_merge_preserves_member_multiset():
    doc = library_document()
    shards = partition_document(doc, LIBRARY_CONTAINER, LIBRARY_MEMBER,
                                3, HashPartitioner())
    merged = merge_shard_documents([d for d, _ in shards], doc.uri,
                                   LIBRARY_CONTAINER)
    original = {serialize_member(m) for m in collection_members(
        doc, LIBRARY_CONTAINER, LIBRARY_MEMBER)}
    rebuilt = {serialize_member(m) for m in collection_members(
        merged, LIBRARY_CONTAINER, LIBRARY_MEMBER)}
    assert rebuilt == original


def serialize_member(node) -> str:
    from repro.xmldb.serializer import serialize_node
    return serialize_node(node)


def test_empty_shards_are_materialised():
    """More shards than members: trailing shards exist but are empty."""
    doc = library_document()
    shards = partition_document(doc, LIBRARY_CONTAINER, LIBRARY_MEMBER,
                                16, RangePartitioner())
    assert len(shards) == 16
    assert sum(count for _, count in shards) == 10
    merged = merge_shard_documents([d for d, _ in shards], doc.uri,
                                   LIBRARY_CONTAINER)
    assert serialize(merged) == serialize(doc)
