"""Replica selection and failover: killed peers, health marks, and
load-based routing."""

import pytest

from repro.cluster import ClusterError
from repro.cluster.router import ClusterRouter
from repro.decompose import Strategy
from repro.net.stats import RunStats
from repro.runtime import FederationEngine, PeerDownError, SimulatedTransport
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster, make_single_owner

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


def expected_items():
    single = make_single_owner()
    result = single.run(SCAN.replace("xrpc://books-c", "xrpc://owner"),
                        at="local", strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


@pytest.mark.parametrize("strategy", list(Strategy))
def test_killed_replica_fails_over(strategy):
    cluster = make_cluster()
    cluster.transport.kill_peer("node2")
    result = cluster.run(SCAN, at="local", strategy=strategy)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.failovers >= 1
    assert all(m.dest != "node2" for m in result.messages)


def test_all_replicas_down_fails_loudly():
    cluster = make_cluster()
    # Shard placements are round-robin: shard 1 lives on node2+node3.
    cluster.transport.kill_peer("node2")
    cluster.transport.kill_peer("node3")
    with pytest.raises(ClusterError, match="replicas of shard"):
        cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)


def test_revive_restores_service():
    cluster = make_cluster()
    cluster.transport.kill_peer("node2")
    cluster.transport.kill_peer("node3")
    cluster.transport.revive_peer("node3")
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()


def test_mark_down_steers_without_wire_faults():
    """Catalog health marks avoid the failed attempt entirely: no
    failovers are recorded because the down peer is never tried."""
    cluster = make_cluster()
    cluster.catalog.mark_down("node2")
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.failovers == 0
    assert all(m.dest != "node2" for m in result.messages)


def test_data_shipping_failover():
    cluster = make_cluster()
    cluster.transport.kill_peer("node3")
    result = cluster.run(SCAN, at="local", strategy=Strategy.DATA_SHIPPING)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.failovers >= 1
    assert result.stats.documents_shipped == 4


def test_least_loaded_replica_selected():
    cluster = make_cluster()
    transport = cluster.transport
    catalog = cluster.catalog
    spec = catalog.get("books-c")
    shard = spec.shards[0]                 # replicas (node1, node2)

    class _RunStub:
        pass

    stub = _RunStub()
    stub.transport = transport
    router = ClusterRouter(stub, catalog)
    # Untouched fleet: placement order breaks the tie.
    assert router.replica_order(shard)[0] == "node1"
    # Load node1's wire counters: node2 becomes the lighter replica.
    transport._count_message("node1", 50_000)
    assert router.replica_order(shard)[0] == "node2"
    # A peer marked down is not considered at all.
    catalog.mark_down("node2")
    assert router.replica_order(shard) == ["node1"]


def test_failovers_surface_in_engine_metrics():
    cluster = make_cluster()
    transport = SimulatedTransport(cluster.cost_model, time_scale=0.0)
    transport.kill_peer("node4")
    with FederationEngine(cluster, max_workers=4,
                          transport=transport) as engine:
        futures = [engine.submit(SCAN, at="local") for _ in range(6)]
        for future in futures:
            assert serialize_sequence(future.result().items) \
                == expected_items()
        summary = engine.metrics.summary()
    assert summary["failed"] == 0
    assert summary["failovers"] >= 1
    assert summary["scatter_shards"] == 6 * 4


def test_peer_down_error_is_network_error():
    cluster = make_cluster()
    cluster.transport.kill_peer("node1")
    with pytest.raises(PeerDownError):
        cluster.transport.fetch_document(cluster.peer("node1"),
                                         "books.xml#s0", RunStats())
