"""Catalog semantics: registration, epoch versioning, replica health."""

import pytest

from repro.cluster import (
    ClusterCatalog, ClusterError, CollectionSpec, ShardInfo,
)


def spec(name: str = "c", shards: int = 2) -> CollectionSpec:
    return CollectionSpec(
        name=name, document="d.xml", container_path=("root", "items"),
        member="item",
        shards=tuple(
            ShardInfo(index=i, local_name=f"d.xml#s{i}",
                      replicas=(f"p{i}", f"p{i + 1}"))
            for i in range(shards)))


def test_register_lookup_and_get():
    catalog = ClusterCatalog()
    catalog.register(spec("c1"))
    assert catalog.lookup("c1").name == "c1"
    assert catalog.get("c1").shard_count == 2
    assert catalog.lookup("unknown-host") is None
    with pytest.raises(ClusterError):
        catalog.get("unknown-host")


def test_duplicate_registration_rejected():
    catalog = ClusterCatalog()
    catalog.register(spec("c1"))
    with pytest.raises(ClusterError):
        catalog.register(spec("c1"))


def test_epoch_bumps_on_every_mutation():
    catalog = ClusterCatalog()
    epochs = [catalog.epoch()]
    catalog.register(spec("c1"))
    epochs.append(catalog.epoch())
    catalog.replace(spec("c1", shards=3))
    epochs.append(catalog.epoch())
    catalog.mark_down("p1")
    epochs.append(catalog.epoch())
    catalog.mark_up("p1")
    epochs.append(catalog.epoch())
    catalog.drop("c1")
    epochs.append(catalog.epoch())
    assert epochs == sorted(set(epochs)), "every mutation bumps the epoch"


def test_mark_down_is_idempotent_for_the_epoch():
    catalog = ClusterCatalog()
    catalog.mark_down("p1")
    epoch = catalog.epoch()
    catalog.mark_down("p1")       # already down: no membership change
    assert catalog.epoch() == epoch
    catalog.mark_up("p2")         # already up: no membership change
    assert catalog.epoch() == epoch


def test_replace_and_drop_require_registration():
    catalog = ClusterCatalog()
    with pytest.raises(ClusterError):
        catalog.replace(spec("ghost"))
    with pytest.raises(ClusterError):
        catalog.drop("ghost")


def test_live_replicas_skip_down_peers():
    catalog = ClusterCatalog()
    shard = spec().shards[0]          # replicas (p0, p1)
    assert catalog.live_replicas(shard) == ("p0", "p1")
    catalog.mark_down("p0")
    assert catalog.live_replicas(shard) == ("p1",)
    # All replicas down: selection falls back to the full set so the
    # failure surfaces on the wire, not as an empty candidate list.
    catalog.mark_down("p1")
    assert catalog.live_replicas(shard) == ("p0", "p1")


def test_spec_validation():
    with pytest.raises(ClusterError):
        CollectionSpec(name="c", document="d", container_path=("r",),
                       member="m", shards=())
    with pytest.raises(ClusterError):
        ShardInfo(index=0, local_name="x", replicas=())


def test_describe_snapshot():
    catalog = ClusterCatalog()
    catalog.register(spec("c1"))
    catalog.mark_down("p9")
    snap = catalog.describe()
    assert snap["down"] == ["p9"]
    assert snap["collections"]["c1"]["shards"][0]["replicas"] == ["p0", "p1"]


def test_collection_properties():
    s = spec()
    assert s.replica_peers == ("p0", "p1", "p2")
    assert s.order_stable          # range by default
    hashed = CollectionSpec(name="h", document="d", container_path=("r",),
                            member="m", shards=s.shards,
                            partitioning="hash")
    assert not hashed.order_stable
