"""The cluster's correctness criterion, property-style: every paper
benchmark query over a sharded collection returns exactly the
single-owner federation's result sequence, for all four strategies.

Two corpora:

* the small library collection (fast, shard count 4 > member
  diversity) with a battery of path / predicate / aggregate / order-by
  query shapes;
* the XMark pair of Section VII, sharded as ``people-c`` /
  ``auctions-c`` with ≥4 shards and replication factor 2 — the
  acceptance bar for the cluster layer.

Hash partitioning is checked separately: shard-major gather order is
not document order, so equivalence there is set-level plus exact for
order-insensitive (aggregate / order-by) queries.
"""

import pytest

from repro.decompose import Strategy
from repro.workloads import (
    BENCHMARK_QUERY, build_federation, build_sharded_federation,
    benchmark_query_variant, sharded_query_variant,
)
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster, make_single_owner

# -- library battery --------------------------------------------------------

LIBRARY_QUERIES = [
    # plain member scan
    ('doc("{host}/books.xml")/child::library/child::books/child::book'),
    # member field projection
    ('doc("{host}/books.xml")/child::library/child::books/child::book'
     "/child::title"),
    # predicate on member content
    ('for $b in doc("{host}/books.xml")'
     "/child::library/child::books/child::book "
     "return if ($b/child::year < 2005) then $b/child::title else ()"),
    # descendant axis into members
    ('doc("{host}/books.xml")//child::pages'),
    # aggregate pushdown shapes
    ('count(doc("{host}/books.xml")'
     "/child::library/child::books/child::book)"),
    ('sum(doc("{host}/books.xml")'
     "/child::library/child::books/child::book/child::pages)"),
    # order by over members (order-insensitive to gather order)
    ('for $b in doc("{host}/books.xml")'
     "/child::library/child::books/child::book "
     "order by $b/child::title descending return $b/child::year"),
    # existential over members
    ('some $b in doc("{host}/books.xml")'
     "/child::library/child::books/child::book "
     'satisfies $b/@id = "b7"'),
]


def run_pair(query_template: str, strategy: Strategy, cluster,
             single_owner) -> tuple[str, str]:
    sharded = cluster.run(query_template.format(host="xrpc://books-c"),
                          at="local", strategy=strategy)
    baseline = single_owner.run(query_template.format(host="xrpc://owner"),
                                at="local", strategy=strategy)
    return (serialize_sequence(sharded.items),
            serialize_sequence(baseline.items))


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("query", LIBRARY_QUERIES)
def test_library_equivalence_range(query, strategy, cluster, single_owner):
    sharded, baseline = run_pair(query, strategy, cluster, single_owner)
    assert sharded == baseline


@pytest.fixture(scope="module")
def hash_cluster():
    return make_cluster(partitioning="hash")


@pytest.mark.parametrize("strategy", list(Strategy))
def test_library_hash_partitioning_set_equivalence(strategy, hash_cluster):
    single = make_single_owner()
    scan = LIBRARY_QUERIES[0]
    sharded = hash_cluster.run(scan.format(host="xrpc://books-c"),
                               at="local", strategy=strategy)
    baseline = single.run(scan.format(host="xrpc://owner"),
                          at="local", strategy=strategy)
    from repro.xmldb.serializer import serialize_node
    assert sorted(serialize_node(i) for i in sharded.items) \
        == sorted(serialize_node(i) for i in baseline.items)
    # Aggregates and explicit order-by are exact even under hashing.
    for exact in (LIBRARY_QUERIES[4], LIBRARY_QUERIES[5],
                  LIBRARY_QUERIES[6]):
        s, b = (hash_cluster.run(exact.format(host="xrpc://books-c"),
                                 at="local", strategy=strategy),
                single.run(exact.format(host="xrpc://owner"),
                           at="local", strategy=strategy))
        assert serialize_sequence(s.items) == serialize_sequence(b.items)


# -- XMark acceptance bar ---------------------------------------------------

XMARK_SCALE = 0.004
AGE_THRESHOLDS = (30, 40)


@pytest.fixture(scope="module")
def xmark_cluster():
    """≥4 shards, replication factor 2 — the acceptance configuration."""
    return build_sharded_federation(XMARK_SCALE, shard_count=4,
                                    replication_factor=2)


@pytest.fixture(scope="module")
def xmark_baseline():
    return build_federation(XMARK_SCALE)


@pytest.mark.parametrize("strategy", list(Strategy))
@pytest.mark.parametrize("max_age", AGE_THRESHOLDS)
def test_xmark_benchmark_equivalence(strategy, max_age, xmark_cluster,
                                     xmark_baseline):
    sharded = xmark_cluster.run(sharded_query_variant(max_age),
                                at="local", strategy=strategy)
    baseline = xmark_baseline.run(benchmark_query_variant(max_age),
                                  at="local", strategy=strategy)
    assert serialize_sequence(sharded.items) \
        == serialize_sequence(baseline.items)
    if strategy.decomposes:
        assert sharded.stats.scatter_shards >= 8   # both call sites


def test_xmark_count_aggregates(xmark_cluster, xmark_baseline):
    queries = (
        ('count(doc("{p}/people.xml")/child::site/child::people'
         "/child::person)"),
        ('count(doc("{a}/auctions.xml")/descendant::open_auction)'),
    )
    for template in queries:
        sharded = xmark_cluster.run(
            template.format(p="xrpc://people-c", a="xrpc://auctions-c"),
            at="local", strategy=Strategy.BY_PROJECTION)
        baseline = xmark_baseline.run(
            template.format(p="xrpc://peer1", a="xrpc://peer2"),
            at="local", strategy=Strategy.BY_PROJECTION)
        assert sharded.items == baseline.items


def test_unsharded_query_text_unchanged():
    """The sharded query is the same query, just re-hosted — the
    paper's benchmark text survives verbatim otherwise."""
    assert sharded_query_variant(40).replace(
        "xrpc://people-c/people.xml", "xrpc://peer1/people.xml").replace(
        "xrpc://auctions-c/auctions.xml", "xrpc://peer2/auctions.xml") \
        == BENCHMARK_QUERY.replace("< 40", "< 40")
