"""Shared fixtures for the cluster test package: a small hand-written
library corpus plus builders for sharded/unsharded federation pairs."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterCatalog, create_sharded_collection
from repro.system.federation import Federation
from repro.xmldb.parser import parse_document

#: 10 members under library/books, with non-member content before and
#: after the container (the partitioner must keep it exactly once).
LIBRARY_XML = (
    "<library>"
    "<meta><curator>Ann</curator><founded>1602</founded></meta>"
    "<books>"
    + "".join(
        f'<book id="b{i}"><title>Book {i}</title>'
        f"<year>{2000 + i}</year><pages>{100 + 10 * i}</pages></book>"
        for i in range(10))
    + "</books>"
    "<staff><clerk>Bob</clerk></staff>"
    "</library>"
)

LIBRARY_CONTAINER = ("library", "books")
LIBRARY_MEMBER = "book"
NODES = ["node1", "node2", "node3", "node4"]


def library_document(uri: str = "xrpc://books-c/books.xml"):
    return parse_document(LIBRARY_XML, uri=uri)


def make_cluster(shard_count: int = 4, replication_factor: int = 2,
                 partitioning: str = "range",
                 nodes: list[str] | None = None) -> Federation:
    """A federation with the library sharded as ``books-c``."""
    federation = Federation(catalog=ClusterCatalog())
    nodes = nodes if nodes is not None else list(NODES)
    for node in nodes:
        federation.add_peer(node)
    federation.add_peer("local")
    create_sharded_collection(
        federation, federation.catalog, name="books-c",
        document=library_document(), document_name="books.xml",
        container_path=LIBRARY_CONTAINER, member=LIBRARY_MEMBER,
        shard_count=shard_count, replication_factor=replication_factor,
        peers=nodes, partitioning=partitioning)
    return federation


def make_single_owner() -> Federation:
    """The unsharded baseline: the same library on one peer."""
    federation = Federation()
    federation.add_peer("owner").store(
        "books.xml", library_document(uri="xrpc://owner/books.xml"))
    federation.add_peer("local")
    return federation


@pytest.fixture
def cluster() -> Federation:
    return make_cluster()


@pytest.fixture
def single_owner() -> Federation:
    return make_single_owner()
