"""The failure detector's state machine: evidence, hysteresis,
eviction, and catalog side effects."""

from repro.cluster import ClusterCatalog
from repro.cluster.membership import (
    ALIVE, DEAD, EVICTED, PHI_CEILING, SUSPECT, MembershipTracker,
)
from repro.obs import FleetMonitor
from repro.obs.events import EventLog

from tests.cluster.conftest import make_cluster


def make_tracker(cluster, **kwargs):
    return MembershipTracker(**kwargs).attach(cluster)


def test_attach_watches_replica_peers():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    assert tracker.peers() == ["node1", "node2", "node3", "node4"]
    assert cluster.membership is tracker
    # An unwatched peer defaults to alive — absence of evidence is not
    # evidence of absence.
    assert tracker.state("local") == ALIVE


def test_probe_ladder_alive_suspect_dead_evicted():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    cluster.transport.kill_peer("node1")

    states = [tracker.tick()["node1"] for _ in range(6)]
    assert states[0] == ALIVE          # one failure is not a pattern
    assert states[1] == SUSPECT        # suspect_after=2
    assert states[3] == DEAD           # dead_after=4
    assert EVICTED in states           # evict_after_ticks=2 later
    assert states[-1] == EVICTED


def test_dead_marks_catalog_down():
    cluster = make_cluster()
    tracker = make_tracker(cluster, auto_evict=False)
    cluster.transport.kill_peer("node2")
    epoch = cluster.catalog.epoch()
    for _ in range(4):
        tracker.tick()
    assert tracker.state("node2") == DEAD
    assert cluster.catalog.is_down("node2")
    assert cluster.catalog.epoch() > epoch


def test_eviction_rewrites_placements_and_bumps_epoch():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    cluster.transport.kill_peer("node1")
    epoch = cluster.catalog.epoch()
    for _ in range(6):
        tracker.tick()
    assert tracker.state("node1") == EVICTED
    spec = cluster.catalog.get("books-c")
    assert all("node1" not in shard.replicas for shard in spec.shards)
    # Every shard keeps its surviving replica — no placement was lost.
    assert all(len(shard.replicas) >= 1 for shard in spec.shards)
    assert cluster.catalog.epoch() > epoch


def test_sole_replica_shard_keeps_placement():
    """Evicting the only holder of a shard must not orphan the data:
    the placement survives (the peer is merely unreachable)."""
    cluster = make_cluster(replication_factor=1)
    tracker = make_tracker(cluster)
    spec = cluster.catalog.get("books-c")
    victim_shards = [s.index for s in spec.shards
                     if s.replicas == ("node1",)]
    assert victim_shards, "fixture should place a shard solely on node1"
    cluster.transport.kill_peer("node1")
    for _ in range(6):
        tracker.tick()
    assert tracker.state("node1") == EVICTED
    spec = cluster.catalog.get("books-c")
    for index in victim_shards:
        assert spec.shards[index].replicas == ("node1",)


def test_flap_revives_without_dying():
    """A peer that comes back inside the dead window never turns dead:
    hysteresis needs revive_after consecutive successes, then heals."""
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    cluster.transport.kill_peer("node3")
    tracker.tick()
    tracker.tick()
    tracker.tick()
    assert tracker.state("node3") == SUSPECT
    cluster.transport.revive_peer("node3")
    tracker.tick()
    assert tracker.state("node3") == SUSPECT   # one success is luck
    tracker.tick()
    assert tracker.state("node3") == ALIVE     # two is a pattern
    assert not cluster.catalog.is_down("node3")
    assert tracker.converged()


def test_passive_evidence_alone_detects():
    """Router-reported outcomes drive the ladder without any probe."""
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    for _ in range(4):
        tracker.record_failure("node4")
    assert tracker.state("node4") == DEAD
    assert cluster.catalog.is_down("node4")
    for _ in range(2):
        tracker.record_success("node4")
    assert tracker.state("node4") == ALIVE
    assert not cluster.catalog.is_down("node4")


def test_phi_suspicion_catches_mixed_traffic():
    """Mostly-failing mixed traffic turns a peer suspect through the
    windowed phi signal even though successes keep resetting the
    consecutive-failure ladder."""
    cluster = make_cluster()
    tracker = make_tracker(cluster, suspect_after=3, dead_after=9,
                           suspect_phi=0.5)
    for _ in range(2):
        tracker.record_failure("node2")
        tracker.record_success("node2")   # resets the ladder
        tracker.record_failure("node2")
        tracker.record_failure("node2")
    assert tracker.phi("node2") >= 0.5
    assert tracker.state("node2") == SUSPECT


def test_phi_bounds():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    assert tracker.phi("node1") == 0.0            # no samples yet
    for _ in range(6):
        tracker.record_failure("node1")
    assert tracker.phi("node1") == PHI_CEILING    # 100% failures
    for _ in range(6):
        tracker.record_success("node1")
    assert tracker.phi("node1") < 1.0


def test_eviction_is_terminal_until_rejoin():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    tracker.evict("node1")
    assert tracker.state("node1") == EVICTED
    tracker.record_success("node1")
    assert tracker.state("node1") == EVICTED       # successes ignored
    tracker.rejoin("node1")
    assert tracker.state("node1") == ALIVE
    assert not cluster.catalog.is_down("node1")


def test_subscribers_see_transitions_in_order():
    cluster = make_cluster()
    tracker = make_tracker(cluster)
    seen = []
    tracker.subscribe(lambda peer, old, new: seen.append((peer, old, new)))
    cluster.transport.kill_peer("node1")
    for _ in range(6):
        tracker.tick()
    assert seen[0] == ("node1", ALIVE, SUSPECT)
    assert ("node1", SUSPECT, DEAD) in seen
    assert seen[-1] == ("node1", DEAD, EVICTED)


def test_events_and_metrics_emitted():
    cluster = make_cluster()
    monitor = FleetMonitor().attach(cluster)
    tracker = make_tracker(cluster)
    cluster.transport.kill_peer("node1")
    for _ in range(6):
        tracker.tick()
    assert monitor.events.count("membership_suspect") == 1
    assert monitor.events.count("membership_dead") == 1
    assert monitor.events.count("replica_evicted") == 1
    snapshot = cluster.metrics.snapshot()
    assert snapshot["membership_state"]["node1"] == 3      # evicted
    assert snapshot["membership_probes_total"]["fail"] >= 4
    assert snapshot["membership_transitions_total"]["evicted"] == 1


def test_standalone_tracker_without_federation():
    """The tracker works against a bare catalog + transport pair."""
    cluster = make_cluster()
    tracker = MembershipTracker(catalog=cluster.catalog,
                                transport=cluster.transport,
                                events=EventLog())
    tracker.watch("node1", "node2")
    assert tracker.peers() == ["node1", "node2"]
    states = tracker.tick()
    assert states == {"node1": ALIVE, "node2": ALIVE}


def test_tick_without_transport_fails_loudly():
    import pytest

    from repro.cluster import ClusterError
    tracker = MembershipTracker(catalog=ClusterCatalog())
    with pytest.raises(ClusterError, match="transport"):
        tracker.tick()
