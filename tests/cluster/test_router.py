"""Router mechanics: URI rewrite, scatter, aggregate pushdown, and
shard-identity response caching."""

import pytest

from repro.cluster import ClusterError, rewrite_doc_uris
from repro.decompose import Strategy
from repro.errors import NetworkError
from repro.runtime import FederationEngine
from repro.xquery.ast import FunCall, Literal
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty
from repro.xquery.xdm import serialize_sequence

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")
SCAN_OWNER = SCAN.replace("xrpc://books-c", "xrpc://owner")
COUNT = ('count(doc("xrpc://books-c/books.xml")'
         "/child::library/child::books/child::book)")
SUM = ('sum(doc("xrpc://books-c/books.xml")'
       "/child::library/child::books/child::book/child::pages)")


def test_rewrite_doc_uris_targets_only_mapped_literals():
    module = parse_query(
        'doc("xrpc://books-c/books.xml")/child::a union '
        'doc("xrpc://other/d.xml")/child::b')
    mapping = {"xrpc://books-c/books.xml": "books.xml#s1"}
    rewritten = rewrite_doc_uris(module.body, mapping.get)
    text = pretty(rewritten)
    assert 'doc("books.xml#s1")' in text
    assert 'doc("xrpc://other/d.xml")' in text
    # Non-literal and non-doc calls are left alone.
    call = FunCall("concat", [Literal("xrpc://books-c/books.xml")])
    assert rewrite_doc_uris(call, mapping.get) is call


def test_scatter_matches_single_owner(cluster, single_owner):
    expected = single_owner.run(SCAN_OWNER, at="local",
                                strategy=Strategy.BY_PROJECTION)
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) \
        == serialize_sequence(expected.items)
    assert result.stats.scatter_shards == 4
    # One request/response per shard, all to fleet nodes.
    assert {m.dest for m in result.messages} <= {"node1", "node2",
                                                 "node3", "node4"}


def test_aggregate_pushdown_count_and_sum(cluster):
    count = cluster.run(COUNT, at="local", strategy=Strategy.BY_FRAGMENT)
    assert count.items == [10]
    assert count.stats.scatter_shards == 4
    total = cluster.run(SUM, at="local", strategy=Strategy.BY_FRAGMENT)
    assert total.items == [sum(100 + 10 * i for i in range(10))]
    # Pushdown ships per-shard numbers, not member sequences: every
    # response is tiny compared to the scan's member-bearing ones.
    scan = cluster.run(SCAN, at="local", strategy=Strategy.BY_FRAGMENT)
    max_count_response = max(m.response_bytes for m in count.messages)
    max_scan_response = max(m.response_bytes for m in scan.messages)
    assert max_count_response < max_scan_response


def test_unknown_collection_document_rejected(cluster):
    with pytest.raises((ClusterError, NetworkError)):
        cluster.run('doc("xrpc://books-c/wrong.xml")/child::library',
                    at="local", strategy=Strategy.BY_PROJECTION)


def test_collection_name_collisions_rejected(cluster):
    with pytest.raises(NetworkError):
        cluster.add_peer("books-c")


def test_response_cache_keys_by_shard_identity(cluster):
    """Any replica's cached response serves every replica: after the
    first run populates the cache, the whole fleet can die and the
    query is still answered (no wire traffic at all)."""
    with FederationEngine(cluster, max_workers=2,
                          batch_window_s=0) as engine:
        first = engine.submit(SCAN, at="local").result()
        assert first.stats.cache_hits == 0
        for node in ("node1", "node2", "node3", "node4"):
            engine.transport.kill_peer(node)
        second = engine.submit(SCAN, at="local").result()
        assert serialize_sequence(second.items) \
            == serialize_sequence(first.items)
        assert second.stats.cache_hits == 4
        assert second.stats.failovers == 0


def test_catalog_epoch_invalidates_cached_responses(cluster):
    with FederationEngine(cluster, max_workers=2,
                          batch_window_s=0) as engine:
        engine.submit(SCAN, at="local").result()
        hits_before = engine.cache.stats.hits
        cluster.catalog.mark_down("node9")   # membership epoch bump
        third = engine.submit(SCAN, at="local").result()
        # New epoch -> new cache keys -> recomputed on the wire.
        assert third.stats.cache_hits == 0
        assert engine.cache.stats.hits == hits_before


def test_data_shipping_merges_and_caches_collection(cluster, single_owner):
    expected = single_owner.run(SCAN_OWNER, at="local",
                                strategy=Strategy.DATA_SHIPPING)
    with FederationEngine(cluster, max_workers=2,
                          batch_window_s=0) as engine:
        first = engine.submit(SCAN, at="local",
                              strategy=Strategy.DATA_SHIPPING).result()
        assert serialize_sequence(first.items) \
            == serialize_sequence(expected.items)
        assert first.stats.documents_shipped == 4   # one per shard
        second = engine.submit(SCAN, at="local",
                               strategy=Strategy.DATA_SHIPPING).result()
        assert second.stats.cache_hits >= 1          # merged doc reused
        assert second.stats.documents_shipped == 0


def test_collection_reference_outside_generator_falls_back(cluster,
                                                           single_owner):
    """Regression: a body that re-opens the collection in consumer
    position (here: a global count inside the loop body) must not be
    scattered — each shard would see only its slice of the count. The
    router falls back to the merged document instead."""
    template = ('for $b in doc("{host}/books.xml")'
                "/child::library/child::books/child::book "
                'return if (count(doc("{host}/books.xml")'
                "/child::library/child::books/child::book) > 5) "
                "then $b/child::title else ()")
    sharded = cluster.run(template.format(host="xrpc://books-c"),
                          at="local", strategy=Strategy.BY_FRAGMENT)
    baseline = single_owner.run(template.format(host="xrpc://owner"),
                                at="local", strategy=Strategy.BY_FRAGMENT)
    # Global count is 10 > 5, so every title comes back.
    assert len(baseline.items) == 10
    assert serialize_sequence(sharded.items) \
        == serialize_sequence(baseline.items)
    # The fallback data-ships the shards rather than scattering.
    assert sharded.stats.documents_shipped == 4


def test_shard_restore_invalidates_merged_document_cache(cluster):
    """Regression: merged-document cache entries live under the
    collection scope, which peer-store invalidation can't target by
    name — the invalidation epoch woven into the entry name must make
    them unreachable after any store."""
    from repro.xmldb.parser import parse_document
    COUNT = ('count(doc("xrpc://books-c/books.xml")'
             "/child::library/child::books/child::book)")
    with FederationEngine(cluster, max_workers=2,
                          batch_window_s=0) as engine:
        first = engine.submit(COUNT, at="local",
                              strategy=Strategy.DATA_SHIPPING).result()
        assert first.items == [10]
        shard = cluster.catalog.get("books-c").shards[0]
        replacement = parse_document(
            "<library><meta><curator>Ann</curator>"
            "<founded>1602</founded></meta><books>"
            '<book id="bX"><title>New</title><year>2030</year>'
            "<pages>1</pages></book></books>"
            "<staff><clerk>Bob</clerk></staff></library>", uri="frag")
        for replica in shard.replicas:
            cluster.peer(replica).store(shard.local_name, replacement)
        second = engine.submit(COUNT, at="local",
                               strategy=Strategy.DATA_SHIPPING).result()
        # Shard 0 held 3 books, now holds 1: 10 - 3 + 1.
        assert second.items == [8], second.items


def test_concurrent_batched_scatter_keeps_shard_order():
    """Regression: shard response fragments are renumbered in shard
    order after the gather. Without that, concurrent queries (whose
    batching windows scramble which scatter thread parses first) got
    arbitrary inter-shard document order, so a local suffix path step
    over the gathered items re-sorted across shards — a permuted
    result sequence."""
    from repro.workloads import (
        SHARDED_BENCHMARK_QUERY, build_sharded_federation,
    )
    federation = build_sharded_federation(0.005)
    expected = serialize_sequence(
        federation.run(SHARDED_BENCHMARK_QUERY, at="local").items)
    with FederationEngine(federation, max_workers=8,
                          cache=False) as engine:
        futures = [engine.submit(SHARDED_BENCHMARK_QUERY, "local")
                   for _ in range(12)]
        outputs = [serialize_sequence(f.result().items) for f in futures]
    assert outputs == [expected] * len(outputs)


def test_execute_at_literal_targets_collection(cluster):
    """The paper's ``execute at`` syntax scatters too when it names a
    virtual host."""
    query = (
        "declare function years() as node()* "
        '{ doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::year }; "
        'execute at {"books-c"} { years() }')
    result = cluster.run(query, at="local", strategy=Strategy.BY_FRAGMENT)
    assert [str(item.string_value()) for item in result.items] \
        == [str(2000 + i) for i in range(10)]
    assert result.stats.scatter_shards == 4


# ---------------------------------------------------------------------------
# Value-index shard skipping
# ---------------------------------------------------------------------------

MEMBER_FILTER = """
for $b in doc("xrpc://books-c/books.xml")/child::library
          /child::books/child::book
return if ($b/child::year = 2003) then $b/child::title else ()
"""

MEMBER_FILTER_OWNER = MEMBER_FILTER.replace("xrpc://books-c/books.xml",
                                            "xrpc://owner/books.xml")

RANGE_FILTER = MEMBER_FILTER.replace("child::year = 2003",
                                     "child::pages < 120")


def test_shard_skip_probes_recognise_member_filter():
    from repro.cluster.router import shard_skip_probes

    body = parse_query(MEMBER_FILTER).body
    probes = shard_skip_probes(body, "books-c")
    assert probes == [("year", "=", 2003)]
    # Unrelated collections are never skipped.
    assert shard_skip_probes(body, "other-c") == []


def test_equality_filter_skips_provably_empty_shards(cluster,
                                                     single_owner):
    expected = single_owner.run(MEMBER_FILTER_OWNER, at="local",
                                strategy=Strategy.BY_FRAGMENT)
    result = cluster.run(MEMBER_FILTER, at="local",
                         strategy=Strategy.BY_FRAGMENT)
    assert serialize_sequence(result.items) \
        == serialize_sequence(expected.items)
    # Range partitioning puts year 2003 in exactly one shard; the
    # other three are proven empty by their value indexes.
    assert result.stats.shards_skipped == 3
    assert len(result.messages) == 1


def test_range_filter_skips_shards(cluster, single_owner):
    expected = single_owner.run(
        RANGE_FILTER.replace("xrpc://books-c/books.xml",
                             "xrpc://owner/books.xml"),
        at="local", strategy=Strategy.BY_PROJECTION)
    result = cluster.run(RANGE_FILTER, at="local",
                         strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) \
        == serialize_sequence(expected.items)
    # pages 100..190 ascending across range shards: only shard 0 has
    # pages < 120.
    assert result.stats.shards_skipped == 3


def test_unfiltered_scan_skips_nothing(cluster):
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_FRAGMENT)
    assert result.stats.shards_skipped == 0
    assert result.stats.scatter_shards == 4


def test_skip_probe_consults_only_live_replicas(cluster):
    cluster.transport.kill_peer("node1")
    result = cluster.run(MEMBER_FILTER, at="local",
                         strategy=Strategy.BY_FRAGMENT)
    assert result.stats.shards_skipped == 3
    assert len(result.items) == 1


def test_skip_never_hides_dynamic_errors(cluster, single_owner):
    """A condition path carrying a step predicate could raise during
    evaluation; skipping the shard would swallow that error, so such
    conjuncts must not produce skip probes (error parity with the
    single-owner evaluation)."""
    from repro.errors import XQueryTypeError
    from repro.cluster.router import shard_skip_probes

    raising = """
    for $b in doc("xrpc://books-c/books.xml")/child::library
              /child::books/child::book
    return if ($b/child::year[fn:true() = 1] = 9999) then $b else ()
    """
    assert shard_skip_probes(parse_query(raising).body, "books-c") == []
    with pytest.raises(XQueryTypeError):
        single_owner.run(raising.replace("xrpc://books-c",
                                        "xrpc://owner"),
                         at="local", strategy=Strategy.DATA_SHIPPING)
    with pytest.raises(XQueryTypeError):
        cluster.run(raising, at="local", strategy=Strategy.BY_FRAGMENT)
