"""Request-level resilience: the error taxonomy, in-place retries
under a budget, per-attempt timeouts, and graceful degradation."""

import pytest

from repro.cluster import ClusterError, ShardUnavailableError
from repro.decompose import Strategy
from repro.errors import (
    NetworkError, PeerUnavailableError, TransientNetworkError,
)
from repro.obs import FleetMonitor
from repro.runtime import (
    FaultInjectedError, PeerDownError, RequestTimeoutError, RetryPolicy,
    SimulatedTransport,
)
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster, make_single_owner

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


def expected_items():
    single = make_single_owner()
    result = single.run(SCAN.replace("xrpc://books-c", "xrpc://owner"),
                        at="local", strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


class FlakyTransport(SimulatedTransport):
    """Fails the first ``fail_first`` transmissions per peer with a
    *transient* fault, then heals — the deterministic way to drill the
    retry path (contrast with the seeded random fault plan)."""

    def __init__(self, cost_model, fail_first: int = 0, peers=None,
                 **kwargs):
        super().__init__(cost_model, **kwargs)
        self.fail_first = fail_first
        self.flaky_peers = set(peers) if peers is not None else None
        self.attempts: dict[str, int] = {}

    def _transmit(self, peer_name: str, size: int) -> None:
        if self.flaky_peers is not None \
                and peer_name not in self.flaky_peers:
            return
        seen = self.attempts.get(peer_name, 0)
        self.attempts[peer_name] = seen + 1
        if seen < self.fail_first:
            raise FaultInjectedError(
                f"injected transient fault at {peer_name}",
                peer=peer_name, attempt=seen)


def flaky_cluster(fail_first: int, retry_policy: RetryPolicy,
                  peers=None):
    cluster = make_cluster()
    cluster.transport = FlakyTransport(cluster.cost_model,
                                       fail_first=fail_first,
                                       peers=peers, time_scale=0.0)
    cluster.catalog.retry_policy = retry_policy
    return cluster


# -- error taxonomy ----------------------------------------------------------


def test_error_taxonomy():
    """Transient (retryable) and fatal (fail over immediately) faults
    are distinguishable by type, and carry peer metadata."""
    assert issubclass(FaultInjectedError, TransientNetworkError)
    assert issubclass(RequestTimeoutError, TransientNetworkError)
    assert issubclass(PeerDownError, PeerUnavailableError)
    assert issubclass(TransientNetworkError, NetworkError)
    assert issubclass(PeerUnavailableError, NetworkError)
    assert not issubclass(PeerDownError, TransientNetworkError)

    exc = FaultInjectedError("boom", peer="node1", attempt=2)
    assert (exc.peer, exc.attempt) == ("node1", 2)
    timeout = RequestTimeoutError("slow", peer="node2", delay_s=0.5,
                                  timeout_s=0.1)
    assert timeout.delay_s == 0.5 and timeout.timeout_s == 0.1


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(budget=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    policy = RetryPolicy(base_backoff_s=0.010, max_backoff_s=0.025,
                         jitter=0.0)
    import random
    rng = random.Random(0)
    assert policy.backoff_s(0, rng) == pytest.approx(0.010)
    assert policy.backoff_s(1, rng) == pytest.approx(0.020)
    assert policy.backoff_s(4, rng) == pytest.approx(0.025)  # capped


# -- retry in place ----------------------------------------------------------


def test_transient_fault_retried_in_place():
    """A flaky-but-alive replica is retried on the spot: the query
    succeeds with zero failovers and the retries are accounted."""
    cluster = flaky_cluster(2, RetryPolicy(attempts=3, budget=8))
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.retries > 0
    assert result.stats.failovers == 0


def test_retries_exhausted_fails_over():
    """More consecutive faults than attempts: the replica is abandoned
    and the call fails over — retries AND failovers both recorded."""
    cluster = flaky_cluster(5, RetryPolicy(attempts=2, budget=8),
                            peers=["node1"])
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.retries > 0
    assert result.stats.failovers > 0


def test_single_attempt_policy_never_retries():
    cluster = flaky_cluster(1, RetryPolicy(attempts=1, budget=8),
                            peers=["node1"])
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.retries == 0
    assert result.stats.failovers > 0


def test_peer_down_skips_straight_to_failover():
    """Fatal faults must not burn the retry budget: a dead peer is
    abandoned after one attempt."""
    cluster = make_cluster()
    cluster.catalog.retry_policy = RetryPolicy(attempts=4, budget=16)
    cluster.transport.kill_peer("node2")
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.retries == 0
    assert result.stats.failovers >= 1


def test_shared_budget_bounds_total_retries():
    """The budget is shared across replicas and attempts: with
    everything failing, total retries never exceed it."""
    cluster = flaky_cluster(100, RetryPolicy(attempts=4, budget=3))
    with pytest.raises(ClusterError):
        cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    summary = cluster.metrics.snapshot().get("scatter_retries_total", {})
    assert summary.get("books-c", 0) <= 3 * 4   # budget × shards


# -- per-attempt timeouts ----------------------------------------------------


def test_request_timeout_is_transient():
    """A transmission slower than the per-attempt timeout raises a
    retryable timeout after waiting out exactly the timeout."""
    cluster = make_cluster()
    cluster.transport.degrade_peer("node1", 0.050)
    cluster.transport.set_request_timeout(0.005)
    with pytest.raises(RequestTimeoutError) as exc_info:
        cluster.transport.probe("node1")
    assert exc_info.value.delay_s >= 0.050
    assert exc_info.value.timeout_s == 0.005
    # The healthy peer still answers under the same timeout.
    cluster.transport.probe("node2")


def test_timeout_fails_over_to_healthy_replica():
    cluster = make_cluster()
    cluster.catalog.retry_policy = RetryPolicy(attempts=2, budget=4)
    cluster.transport.degrade_peer("node1", 0.050)
    cluster.transport.set_request_timeout(0.005)
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.retries + result.stats.failovers > 0


def test_set_request_timeout_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.transport.set_request_timeout(0.0)
    cluster.transport.set_request_timeout(None)   # clearing is fine


# -- query errors never retry or fail over (error parity) --------------------


def test_query_errors_never_retry_or_fail_over():
    """A *query-level* error (here: an unparseable body shipped to the
    replica) must propagate immediately: no retries, no failovers, no
    passive failure evidence against the replica — wire-fault handling
    must never mask application bugs."""
    from repro.cluster.membership import ALIVE, MembershipTracker
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    cluster.catalog.retry_policy = RetryPolicy(attempts=4, budget=16)

    bad_query = ('doc("xrpc://books-c/books.xml")'
                 "/child::library/child::books/child::book/child::year"
                 " idiv 0")
    with pytest.raises(Exception) as cluster_error:
        cluster.run(bad_query, at="local", strategy=Strategy.BY_PROJECTION)
    assert not isinstance(cluster_error.value, NetworkError)

    single = make_single_owner()
    with pytest.raises(Exception) as single_error:
        single.run(bad_query.replace("xrpc://books-c", "xrpc://owner"),
                   at="local", strategy=Strategy.BY_PROJECTION)
    assert type(cluster_error.value) is type(single_error.value)

    snapshot = cluster.metrics.snapshot()
    assert snapshot.get("scatter_retries_total", {}) in ({}, {"books-c": 0})
    assert snapshot.get("scatter_failovers_total", {}) \
        in ({}, {"books-c": 0})
    # No wire-fault evidence was fed to the failure detector.
    assert all(entry["consecutive_failures"] == 0
               for entry in tracker.snapshot())
    assert all(tracker.state(peer) == ALIVE
               for peer in tracker.peers())


# -- graceful degradation ----------------------------------------------------


def test_partial_policy_validation():
    from repro.cluster import ClusterCatalog
    with pytest.raises(ClusterError):
        ClusterCatalog(partial="sometimes")
    catalog = ClusterCatalog()
    with pytest.raises(ClusterError):
        catalog.set_partial_policy("maybe")
    catalog.set_partial_policy("allow")
    assert catalog.partial_policy == "allow"


def test_partial_error_is_default():
    cluster = make_cluster()
    cluster.transport.kill_peer("node2")
    cluster.transport.kill_peer("node3")          # shard 1 fully dark
    with pytest.raises(ShardUnavailableError):
        cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)


def test_partial_allow_returns_flagged_holes():
    cluster = make_cluster()
    monitor = FleetMonitor().attach(cluster)
    cluster.transport.kill_peer("node2")
    cluster.transport.kill_peer("node3")
    cluster.catalog.set_partial_policy("allow")
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    full = expected_items()
    got = serialize_sequence(result.items)
    assert got != full                            # a hole, flagged…
    assert all(item in full for item in got.split(" "))
    assert result.stats.partial_shards == 1       # …and accounted
    assert monitor.events.count("partial_result") == 1
    flagged = [entry for entry in result.stats.per_shard.values()
               if entry.get("partial")]
    assert len(flagged) == 1


def test_partial_allow_leaves_healthy_queries_exact():
    cluster = make_cluster()
    cluster.catalog.set_partial_policy("allow")
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.partial_shards == 0
