"""The repair engine: re-replication, bounded queue, cancellation."""

import pytest

from repro.cluster import ClusterError
from repro.cluster.membership import EVICTED, MembershipTracker
from repro.cluster.repair import RepairEngine, RepairTask
from repro.decompose import Strategy
from repro.obs import FleetMonitor
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster, make_single_owner

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


def expected_items():
    single = make_single_owner()
    result = single.run(SCAN.replace("xrpc://books-c", "xrpc://owner"),
                        at="local", strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


def evict(cluster, tracker, peer):
    cluster.transport.kill_peer(peer)
    for _ in range(8):
        if tracker.state(peer) == EVICTED:
            break
        tracker.tick()
    assert tracker.state(peer) == EVICTED


def test_scan_finds_under_replicated_shards():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False).attach(cluster)
    assert repair.scan() == 0                     # healthy fleet
    evict(cluster, tracker, "node1")              # held shards 0 and 3
    assert repair.pending() == 2
    assert repair.scan() == 0                     # no duplicates


def test_process_restores_target_replication():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False).attach(cluster)
    evict(cluster, tracker, "node1")
    epoch = cluster.catalog.epoch()
    assert repair.process() == 2
    assert cluster.catalog.epoch() > epoch
    spec = cluster.catalog.get("books-c")
    for shard in spec.shards:
        assert len(shard.replicas) >= spec.target_replication
        assert "node1" not in shard.replicas
        # Every registered replica actually holds the fragment.
        for replica in shard.replicas:
            peer = cluster.peer(replica)
            assert shard.local_name in peer.documents
    result = cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == expected_items()
    assert result.stats.failovers == 0


def test_eviction_triggers_auto_repair():
    """The membership subscription closes the loop with no operator:
    evict → scan → re-replicate, in one transition callback."""
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine().attach(cluster)
    evict(cluster, tracker, "node2")
    assert repair.stats() == {"pending": 0, "completed": 2, "failed": 0}
    spec = cluster.catalog.get("books-c")
    assert all(len(s.replicas) >= spec.target_replication
               for s in spec.shards)


def test_repair_skips_healed_shards():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False).attach(cluster)
    evict(cluster, tracker, "node1")
    assert repair.pending() == 2
    assert repair.process(max_tasks=1) == 1
    # Re-scan between batches must not re-enqueue the healed shard.
    assert repair.scan() == 0
    assert repair.process() == 1


def test_source_death_mid_copy_reenqueues_then_gives_up():
    """The only live source dying aborts the copy; the task retries
    (re-resolving source and target) up to max_attempts, then fails
    loudly instead of spinning."""
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False, max_attempts=2).attach(cluster)
    evict(cluster, tracker, "node1")
    # Kill the surviving sources at the transport level only — the
    # catalog still lists them, so the copy starts and then dies.
    for peer in ("node2", "node3", "node4"):
        cluster.transport.kill_peer(peer)
    assert repair.process() == 0
    assert repair.pending() == 2                  # re-enqueued once
    assert repair.process() == 0                  # second attempt fails
    stats = repair.stats()
    assert stats["pending"] == 0
    assert stats["failed"] == 2


def test_no_healthy_target_fails_loudly():
    cluster = make_cluster(nodes=["node1", "node2"])
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False).attach(cluster)
    cluster.catalog.mark_down("local")            # only spare target
    evict(cluster, tracker, "node1")
    repair.scan()
    assert repair.process() == 0
    assert repair.stats()["failed"] > 0


def test_bounded_queue_drops_loudly():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    monitor = FleetMonitor().attach(cluster)
    repair = RepairEngine(auto_repair=False, max_queue=1).attach(cluster)
    evict(cluster, tracker, "node1")              # 2 under-replicated
    assert repair.pending() == 1
    assert monitor.events.count("repair_queue_full") == 1


def test_repair_events_and_metrics():
    cluster = make_cluster()
    monitor = FleetMonitor().attach(cluster)
    tracker = MembershipTracker().attach(cluster)
    RepairEngine().attach(cluster)
    evict(cluster, tracker, "node1")
    assert monitor.events.count("repair_started") == 2
    assert monitor.events.count("repair_completed") == 2
    snapshot = cluster.metrics.snapshot()
    assert snapshot["repair_completed_total"]["books-c"] == 2
    assert snapshot["repair_bytes_total"]["books-c"] > 0
    assert snapshot["repair_queue_depth"] == 0
    # Repair traffic shows up in the profiler like any other work.
    assert "repair" in monitor.profiler.folded("wall")


def test_run_until_converged():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False).attach(cluster)
    evict(cluster, tracker, "node1")
    assert repair.run_until_converged()
    assert repair.pending() == 0


def test_parallel_process_matches_sequential():
    cluster = make_cluster()
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine(auto_repair=False, max_concurrent=2
                          ).attach(cluster)
    evict(cluster, tracker, "node1")
    assert repair.process(parallel=True) == 2
    spec = cluster.catalog.get("books-c")
    assert all(len(s.replicas) >= spec.target_replication
               for s in spec.shards)


def test_constructor_validation():
    with pytest.raises(ClusterError):
        RepairEngine(max_queue=0)
    with pytest.raises(ClusterError):
        RepairEngine(max_concurrent=0)
    with pytest.raises(ClusterError):
        RepairEngine(max_attempts=0)
    with pytest.raises(ClusterError, match="catalog"):
        RepairEngine().scan()
    assert RepairTask("books-c", 3).key == ("books-c", 3)
