"""The chaos harness: schedule generation invariants (property-
tested), deterministic replay, seeded kill/revive races against the
single-owner oracle, and failover accounting parity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterError
from repro.cluster.chaos import (
    ACTIONS, ChaosEvent, ChaosHarness, ChaosReport, ChaosSchedule,
)
from repro.cluster.membership import MembershipTracker
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import FleetMonitor
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster, make_single_owner

NODES = ["node1", "node2", "node3", "node4"]

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")
COUNT = ('count(doc("xrpc://books-c/books.xml")'
         "/child::library/child::books/child::book)")

_ORACLE: list[tuple[str, str]] = []


def oracle_queries() -> list[tuple[str, str]]:
    """(query, expected) pairs computed once on a single-owner copy."""
    if not _ORACLE:
        single = make_single_owner()
        for query in (SCAN, COUNT):
            result = single.run(
                query.replace("xrpc://books-c", "xrpc://owner"),
                at="local", strategy=Strategy.BY_PROJECTION)
            _ORACLE.append((query, serialize_sequence(result.items)))
    return list(_ORACLE)


def healing_cluster():
    cluster = make_cluster()
    MembershipTracker().attach(cluster)
    RepairEngine().attach(cluster)
    return cluster


# -- event / schedule basics -------------------------------------------------


def test_chaos_event_validation():
    with pytest.raises(ClusterError):
        ChaosEvent(0, "explode", "node1")
    with pytest.raises(ClusterError):
        ChaosEvent(-1, "kill", "node1")
    event = ChaosEvent(3, "degrade", "node2", extra_latency_s=0.001)
    assert event.extra_latency_s == 0.001


def test_generate_requires_peers_and_sane_max_down():
    rng = random.Random(0)
    with pytest.raises(ClusterError):
        ChaosSchedule.generate(rng, [])
    with pytest.raises(ClusterError):
        ChaosSchedule.generate(rng, NODES, max_down=-1)


def test_same_seed_same_schedule():
    first = ChaosSchedule.generate(random.Random(42), NODES, steps=40)
    second = ChaosSchedule.generate(random.Random(42), NODES, steps=40)
    assert first == second
    assert first.describe() == second.describe()


# -- generate() invariants, property-tested over seeds ------------------------


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       steps=st.integers(min_value=8, max_value=64),
       max_down=st.integers(min_value=0, max_value=2))
@settings(max_examples=60, deadline=None)
def test_generate_invariants(seed, steps, max_down):
    schedule = ChaosSchedule.generate(
        random.Random(seed), NODES, steps=steps, max_down=max_down)

    assert schedule.steps == steps
    assert all(e.action in ACTIONS for e in schedule.events)
    assert all(0 <= e.step <= steps for e in schedule.events)
    keys = [(e.step, ACTIONS.index(e.action), e.peer)
            for e in schedule.events]
    assert keys == sorted(keys)

    # The tail quarter stays quiet: faults are only *started* before
    # quiet_from, so the run always ends on a healable cluster.
    quiet_from = steps - max(1, steps // 4)
    assert all(e.step < quiet_from for e in schedule.events
               if e.action in ("kill", "degrade"))

    # Replay the schedule and check the pairing invariants: every kill
    # is revived (and vice versa), every degrade restored, at most
    # max_down peers down at once, one fault per peer at a time.
    down: set[str] = set()
    slow: set[str] = set()
    for step in range(steps + 1):
        for event in schedule.due(step):
            if event.action == "kill":
                assert event.peer not in down | slow
                down.add(event.peer)
            elif event.action == "revive":
                assert event.peer in down
                down.discard(event.peer)
            elif event.action == "degrade":
                assert event.peer not in down | slow
                assert event.extra_latency_s > 0
                slow.add(event.peer)
            elif event.action == "restore":
                assert event.peer in slow
                slow.discard(event.peer)
        assert len(down) <= max_down
    assert not down, "every kill must get a revive inside the schedule"
    assert not slow, "every degrade must get a restore"
    if max_down == 0:
        assert not any(e.action == "kill" for e in schedule.events)


# -- kill/revive races against the oracle, over seeds -------------------------


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_chaos_race_zero_wrong_answers(seed):
    """Whatever seeded kill/revive/degrade interleaving the generator
    produces, every answer matches the single-owner oracle, the
    cluster converges, and the healed fleet fails over on nothing."""
    queries = oracle_queries()
    cluster = healing_cluster()
    schedule = ChaosSchedule.generate(random.Random(seed), NODES,
                                      steps=16)
    harness = ChaosHarness(cluster, schedule, queries=queries,
                           strategy=Strategy.BY_PROJECTION)
    report = harness.run()
    assert report.wrong_answers == 0, (seed, report.wrong_steps)
    assert report.converged, seed
    assert report.steady_failovers == 0, seed
    assert report.repairs_failed == 0, seed
    # Every eviction the race produced must have been repaired back to
    # target replication.
    spec = cluster.catalog.get("books-c")
    assert all(len(s.replicas) >= spec.target_replication
               for s in spec.shards), seed


def test_harness_replay_identical_reports():
    queries = oracle_queries()

    def run() -> ChaosReport:
        cluster = healing_cluster()
        schedule = ChaosSchedule.generate(random.Random(7), NODES,
                                          steps=20)
        return ChaosHarness(cluster, schedule, queries=queries,
                            strategy=Strategy.BY_PROJECTION).run()

    first, second = run(), run()
    for name in ("queries", "wrong_answers", "failovers", "retries",
                 "partial_shards", "evictions", "rejoins",
                 "repairs_completed", "repairs_failed", "converged",
                 "steady_failovers"):
        assert getattr(first, name) == getattr(second, name), name


def test_harness_requires_membership_and_queries():
    cluster = make_cluster()                      # no tracker attached
    schedule = ChaosSchedule.generate(random.Random(0), NODES)
    with pytest.raises(ClusterError, match="membership"):
        ChaosHarness(cluster, schedule, queries=oracle_queries())
    with pytest.raises(ClusterError, match="quer"):
        ChaosHarness(cluster, schedule, queries=[],
                     membership=MembershipTracker().attach(cluster))


# -- failover accounting parity ----------------------------------------------


def test_failover_events_match_stats():
    """Every failover counted in the stats is also an emitted event —
    the dashboards and the return value must never disagree."""
    cluster = make_cluster()
    monitor = FleetMonitor().attach(cluster)
    cluster.transport.kill_peer("node2")
    result = cluster.run(SCAN, at="local",
                         strategy=Strategy.BY_PROJECTION)
    [(query, expected)] = oracle_queries()[:1]
    assert serialize_sequence(result.items) == expected
    assert result.stats.failovers >= 1
    assert monitor.events.count("failover") == result.stats.failovers
