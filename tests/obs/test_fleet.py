"""The fleet monitor: wiring, query recording, trace sampling, and the
text console."""

import pytest

from repro.decompose import Strategy
from repro.obs import SLO, BurnRatePolicy, FleetMonitor, render_fleet
from repro.runtime import FederationEngine

from tests.cluster.conftest import make_cluster
from tests.obs.test_windows import FakeClock

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


class TestFleetMonitorWiring:

    def test_attach_wires_every_surface(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        assert cluster.monitor is monitor
        assert cluster.transport.events is monitor.events
        assert cluster.catalog.events is monitor.events
        assert monitor.registry_windows is not None
        assert monitor.registry_windows.registry is cluster.metrics

    def test_unmonitored_federation_stays_unwired(self):
        cluster = make_cluster()
        assert cluster.monitor is None
        assert cluster.transport.events is None
        result = cluster.run(SCAN, at="local",
                             strategy=Strategy.BY_PROJECTION)
        assert len(result.items) == 10

    def test_kill_and_revive_emit_events(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        cluster.transport.kill_peer("node2")
        cluster.transport.kill_peer("node2")  # no-op: already down
        cluster.transport.revive_peer("node2")
        assert monitor.events.count("peer_down") == 1
        assert monitor.events.count("peer_up") == 1

    def test_degrade_and_restore_emit_events(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        with pytest.raises(ValueError):
            cluster.transport.degrade_peer("node2", -1.0)
        cluster.transport.degrade_peer("node2", 0.001)
        cluster.transport.restore_peer("node2")
        cluster.transport.restore_peer("node2")  # no-op: not slow
        assert monitor.events.count("peer_degraded") == 1
        assert monitor.events.count("peer_restored") == 1

    def test_catalog_changes_emit_epoch_bumps(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        cluster.catalog.mark_down("node2")
        cluster.catalog.mark_down("node2")  # no transition, no epoch
        cluster.catalog.mark_up("node2")
        bumps = monitor.events.recent(kind="epoch_bump")
        assert [e.attrs["reason"] for e in bumps] == ["mark_down",
                                                     "mark_up"]
        assert all(e.attrs["peer"] == "node2" for e in bumps)


class TestQueryRecording:

    def test_record_query_feeds_windows_and_slo(self):
        clock = FakeClock()
        monitor = FleetMonitor(clock=clock)
        monitor.add_slo(SLO(name="lat", target=0.9, threshold_s=0.05),
                        BurnRatePolicy(long_s=10.0, short_s=1.0,
                                       threshold=5.0, min_requests=5))
        for _ in range(10):
            monitor.record_query(0.2, ok=True)
        assert monitor.latency.count() == 10
        assert monitor.error_rate() == 0.0
        assert monitor.events.count("alert_fired") == 1
        monitor.record_query(0.2, ok=False)
        assert monitor.error_rate() == pytest.approx(1 / 11)

    def test_slow_query_event_has_threshold(self):
        monitor = FleetMonitor(clock=FakeClock(), slow_query_s=0.1)
        monitor.record_query(0.05)
        monitor.record_query(0.5)
        monitor.record_query(0.5, ok=False)  # failures are not "slow"
        assert monitor.events.count("slow_query") == 1
        (event,) = monitor.events.recent(kind="slow_query")
        assert event.attrs["wall_s"] == 0.5

    def test_should_sample_trace_cadence(self):
        monitor = FleetMonitor(clock=FakeClock(), profile_every=3)
        decisions = [monitor.should_sample_trace() for _ in range(9)]
        assert decisions == [False, False, True] * 3
        off = FleetMonitor(clock=FakeClock())
        assert not any(off.should_sample_trace() for _ in range(10))

    def test_snapshot_is_plain_data(self):
        monitor = FleetMonitor(clock=FakeClock())
        monitor.record_query(0.01)
        snap = monitor.snapshot()
        assert snap["queries"]["count"] == 1
        assert snap["error_rate"] == 0.0
        assert snap["profile_samples"] == 0
        assert isinstance(snap["peers"], list)
        assert isinstance(snap["slos"], list)

    def test_federation_run_records_queries(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION)
        assert monitor.latency.count() == 1
        assert monitor.error_rate() == 0.0

    def test_failed_run_records_an_error(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        with pytest.raises(Exception):
            cluster.run("doc(", at="local",
                        strategy=Strategy.BY_PROJECTION)
        assert monitor.latency.count() == 1
        assert monitor.error_rate() == 1.0

    def test_engine_samples_traces_into_profiler(self):
        cluster = make_cluster()
        monitor = FleetMonitor(profile_every=2).attach(cluster)
        with FederationEngine(cluster, max_workers=2) as engine:
            futures = [engine.submit(SCAN, at="local") for _ in range(6)]
            for future in futures:
                future.result()
        assert monitor.profiler.samples == 3
        assert monitor.profiler.stacks("sim")  # non-empty fold

    def test_explicit_trace_also_feeds_profiler(self):
        cluster = make_cluster()
        monitor = FleetMonitor().attach(cluster)
        cluster.run(SCAN, at="local", strategy=Strategy.BY_PROJECTION,
                    trace=True)
        assert monitor.profiler.samples == 1


class TestConsole:

    def test_render_empty_monitor(self):
        monitor = FleetMonitor(clock=FakeClock())
        text = render_fleet(monitor)
        assert text.startswith("== fleet @ 0.0s up | 0 queries")
        assert "peers:" not in text
        assert "alerts:" not in text
        assert "events" not in text

    def test_render_full_fleet(self):
        clock = FakeClock()
        monitor = FleetMonitor(clock=clock)
        monitor.add_slo(SLO(name="lat", target=0.9, threshold_s=0.05),
                        BurnRatePolicy(long_s=10.0, short_s=1.0,
                                       threshold=5.0, min_requests=5))
        for _ in range(10):
            monitor.record_query(0.2)
            monitor.health.record("node1", 0.001)
            monitor.health.record("node2", 0.100)
        text = render_fleet(monitor)
        assert "10 queries" in text
        assert "latency     : p50" in text
        assert "node1  OK" in text
        assert "node2  DEGRADED" in text
        assert "FIRING lat:" in text
        assert "(fired 1x)" in text
        assert "[error] alert_fired" in text

    def test_render_is_deterministic(self):
        clock = FakeClock()
        monitor = FleetMonitor(clock=clock)
        monitor.record_query(0.01)
        monitor.health.record("b", 0.001)
        monitor.health.record("a", 0.001)
        assert render_fleet(monitor) == render_fleet(monitor)
        # Peers render sorted by name regardless of arrival order.
        text = render_fleet(monitor)
        assert text.index("  a ") < text.index("  b ")

    def test_recent_events_limit(self):
        monitor = FleetMonitor(clock=FakeClock())
        for index in range(12):
            monitor.events.emit("tick", f"t{index}")
        text = render_fleet(monitor, recent_events=3)
        assert "events (last 3 of 12):" in text
        assert "t11" in text and "t8" not in text
