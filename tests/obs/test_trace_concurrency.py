"""Interleaved traced queries must never cross-attribute: each trace's
component leaves reproduce *its own* run's RunStats, worker threads and
scatter pools included."""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.obs.trace import COMPONENTS, Span, Tracer, child_span
from repro.runtime import FederationEngine
from repro.workloads import build_sharded_federation, sharded_scan_variant

TOLERANCE = 1e-9


def assert_well_formed(root) -> None:
    """Every span closed; every child's interval inside its parent's."""
    def walk(span: Span) -> None:
        assert span.closed, span.name
        for child in span.children:
            assert child.start_s >= span.start_s - TOLERANCE
            assert child.end_s <= span.end_s + TOLERANCE
            walk(child)
    walk(root)


def test_interleaved_engine_queries_never_cross_attribute():
    """N concurrent traced queries through the thread-pool engine:
    each trace sums to its own stats (the acceptance invariant, under
    interleaving). Cache and batching off so every run does real wire
    work that could be mis-attributed."""
    federation = build_sharded_federation(0.002)
    thresholds = [25, 30, 35, 40, 45, 50, 55, 60]
    with FederationEngine(federation, max_workers=4, cache=False,
                          batch_window_s=0.0) as engine:
        futures = [engine.submit(sharded_scan_variant(age), "local",
                                 "by-fragment", trace=True)
                   for age in thresholds for _ in range(2)]
        results = [future.result() for future in futures]
    assert len(results) == 16
    for result in results:
        root = result.trace
        assert root is not None
        assert_well_formed(root)
        totals = root.component_totals()
        for component in COMPONENTS:
            assert abs(totals.get(component, 0.0)
                       - getattr(result.stats.times, component)) \
                < TOLERANCE, component
        # The scatter fan-out landed under this query's root, not a
        # neighbour's: one shard span per round trip actually made
        # (value-index probes may skip provably empty shards).
        scatter = root.find("scatter")
        assert scatter is not None
        served = scatter.attrs["shards"] - scatter.attrs["shards_skipped"]
        assert len(scatter.find_all("shard")) == served > 0
    # Distinct runs produced distinct span objects (no shared tree).
    roots = {id(result.trace) for result in results}
    assert len(roots) == len(results)


def test_bare_thread_interleaving_without_engine():
    """Two threads tracing their own federation runs concurrently:
    contextvars keep the trees apart."""
    federation = build_sharded_federation(0.002)
    results: dict[int, object] = {}

    def run_one(index: int, age: int) -> None:
        results[index] = federation.run(
            sharded_scan_variant(age), at="local",
            strategy="by-projection", trace=True)

    threads = [threading.Thread(target=run_one, args=(i, 25 + 10 * i))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for result in results.values():
        assert_well_formed(result.trace)
        totals = result.trace.component_totals()
        for component in COMPONENTS:
            assert abs(totals.get(component, 0.0)
                       - getattr(result.stats.times, component)) \
                < TOLERANCE


def test_concurrent_charges_on_one_span_are_lossless():
    """Scatter workers charge a shared parent concurrently; the lock
    must not lose increments."""
    span = Span("scatter")
    per_thread, threads_n = 200, 8

    def worker() -> None:
        for _ in range(per_thread):
            span.charge("network", 0.001, nbytes=2)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    span.close()
    expected = per_thread * threads_n * 0.001
    assert abs(span.component_totals()["network"] - expected) < 1e-6
    leaf = span.leaves()[0]
    assert leaf.attrs["bytes"] == per_thread * threads_n * 2


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=1, max_size=24))
def test_random_span_trees_stay_well_formed(shape):
    """Property: arbitrary nesting depths produce trees where parents
    contain (outlive) children. Each integer is the extra nesting depth
    of one span opened under the root."""
    tracer = Tracer()
    with tracer.start("query"):
        for index, depth in enumerate(shape):
            def nest(levels: int) -> None:
                if levels > 0:
                    with child_span(f"s{index}-d{levels}"):
                        nest(levels - 1)
            with child_span(f"s{index}"):
                nest(depth)
    root = tracer.root
    assert_well_formed(root)
    assert root.name == "query"
    # Every opened span is present, at the depth it was opened at.
    assert len(root.children) == len(shape)
    for index, depth in enumerate(shape):
        span = root.find(f"s{index}")
        assert span is not None
        if depth:
            assert span.find(f"s{index}-d1") is not None
