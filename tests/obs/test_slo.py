"""SLO burn-rate alerting: multi-window rules, exactly-once firing,
hysteresis against flapping."""

import pytest

from repro.obs.events import EventLog
from repro.obs.slo import SLO, BurnRatePolicy, SLOMonitor

from tests.obs.test_windows import FakeClock


def make_monitor(clock=None, **policy_kwargs):
    clock = clock if clock is not None else FakeClock()
    events = EventLog(clock=clock)
    monitor = SLOMonitor(events=events, clock=clock)
    defaults = dict(long_s=10.0, short_s=1.0, threshold=5.0,
                    resolve_ratio=0.5, min_requests=5)
    policy = BurnRatePolicy(**{**defaults, **policy_kwargs})
    state = monitor.add(SLO(name="latency-p99", target=0.9,
                            threshold_s=0.050), policy)
    return monitor, events, state, clock


class TestSLOValidation:

    def test_slo_kind_and_target_validated(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="availability")
        with pytest.raises(ValueError):
            SLO(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", target=0.0)

    def test_policy_windows_validated(self):
        with pytest.raises(ValueError):
            BurnRatePolicy(long_s=1.0, short_s=5.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(resolve_ratio=0.0)

    def test_budget(self):
        assert SLO(name="x", target=0.99).budget == pytest.approx(0.01)


class TestBurnRateAlerting:

    def test_fires_exactly_once_per_sustained_breach(self):
        monitor, events, state, clock = make_monitor()
        # Every query breaches the 50 ms threshold: bad fraction 1.0,
        # budget 0.1 -> burn 10x >= threshold 5x.
        for _ in range(20):
            monitor.record(wall_s=0.2, ok=True)
            clock.advance(0.25)
        assert state.firing
        assert state.fired_total == 1
        assert events.count("alert_fired") == 1
        # The breach continues: still exactly one fire.
        for _ in range(20):
            monitor.record(wall_s=0.2, ok=True)
            clock.advance(0.25)
        assert events.count("alert_fired") == 1

    def test_min_requests_guards_against_one_slow_query(self):
        monitor, events, state, clock = make_monitor()
        for _ in range(4):  # below min_requests=5
            monitor.record(wall_s=0.2, ok=True)
        assert not state.firing
        assert events.count("alert_fired") == 0

    def test_short_window_gate_blocks_stale_history(self):
        """Burn high over the long window but recovered in the short
        window must not (re-)arm the alert."""
        monitor, events, state, clock = make_monitor(threshold=3.0)
        for _ in range(4):  # bad burst below min_requests=5...
            monitor.record(wall_s=0.2, ok=True)
        # ...then the fleet recovers; fast queries fill the short
        # window while the long window still holds the burst.
        for _ in range(8):
            clock.advance(1.0)
            monitor.record(wall_s=0.001, ok=True)
        # Long burn sits above threshold (4 bad of 12, budget 0.1:
        # 3.33x >= 3x) yet the clean short window gates the fire.
        assert state.last_burn_long >= state.policy.threshold
        assert state.last_burn_short == 0.0
        assert not state.firing
        assert events.count("alert_fired") == 0

    def test_resolve_needs_hysteresis_margin(self):
        monitor, events, state, clock = make_monitor()
        for _ in range(10):
            monitor.record(wall_s=0.2, ok=True)
        assert state.firing
        # Mix in good queries until burn sits between resolve level
        # (2.5x) and threshold (5x): must stay firing (no flap).
        for _ in range(14):
            monitor.record(wall_s=0.001, ok=True)
        assert (state.policy.threshold * state.policy.resolve_ratio
                < state.last_burn_long < state.policy.threshold)
        assert state.firing
        assert events.count("alert_resolved") == 0
        # Push burn under the resolve level: one resolve, no refire.
        for _ in range(40):
            monitor.record(wall_s=0.001, ok=True)
        assert not state.firing
        assert events.count("alert_resolved") == 1
        assert events.count("alert_fired") == 1

    def test_breach_after_recovery_fires_again(self):
        monitor, events, state, clock = make_monitor()
        for _ in range(10):
            monitor.record(wall_s=0.2, ok=True)
        clock.advance(60.0)  # everything ages out of the long window
        monitor.record(wall_s=0.001, ok=True)
        assert not state.firing
        for _ in range(10):
            monitor.record(wall_s=0.2, ok=True)
        assert state.firing
        assert state.fired_total == 2
        assert events.count("alert_fired") == 2

    def test_errors_kind_counts_failures_not_latency(self):
        clock = FakeClock()
        monitor = SLOMonitor(events=EventLog(clock=clock), clock=clock)
        state = monitor.add(
            SLO(name="availability", kind="errors", target=0.9),
            BurnRatePolicy(long_s=10.0, short_s=1.0, threshold=5.0,
                           min_requests=5))
        for _ in range(10):  # slow but successful: not bad
            monitor.record(wall_s=10.0, ok=True)
        assert not state.firing
        for _ in range(10):
            monitor.record(wall_s=0.001, ok=False)
        assert state.firing

    def test_snapshot_and_active(self):
        monitor, events, state, clock = make_monitor()
        assert monitor.active() == []
        for _ in range(10):
            monitor.record(wall_s=0.2, ok=True)
        assert monitor.active() == [state]
        (snap,) = monitor.snapshot()
        assert snap["slo"] == "latency-p99"
        assert snap["firing"] is True
        assert snap["fired_total"] == 1
        assert snap["burn_long"] == pytest.approx(10.0)
