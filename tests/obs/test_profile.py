"""Collapsed-stack profiles: wall self-time folding, the sim-weight
charge invariant, and the flamegraph file format."""

import math

import pytest

from repro.obs.profile import Profiler, collapse_spans
from repro.obs.trace import Span

from tests.cluster.conftest import make_cluster

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")


def span(name, start, end, parent=None, kind="span", **attrs):
    """A closed span with explicit timestamps (the constructor stamps
    the live clock, which these folding tests must control)."""
    node = Span(name, kind=kind)
    node.start_s = start
    node.end_s = end
    node.attrs.update(attrs)
    if parent is not None:
        parent.add_child(node)
    return node


def make_tree():
    """A hand-built closed span tree with known self times:

        root [0, 10]
          child_a [1, 4]      (self 3, no children)
          child_b [5, 9]      (self 4 - 2 = 2)
            grand [6, 8]      (self 2)
          <component leaves: network 0.5, serialize 0.25>
    """
    root = span("root", 0.0, 10.0)
    span("child_a", 1.0, 4.0, parent=root)
    b = span("child_b", 5.0, 9.0, parent=root)
    span("grand", 6.0, 8.0, parent=b)
    span("network", 9.0, 9.0, parent=root, kind="component", sim_s=0.5)
    span("serialize", 9.0, 9.0, parent=root, kind="component",
         sim_s=0.25)
    return root


class TestCollapseSpans:

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            collapse_spans(make_tree(), weight="cpu")

    def test_wall_folding_is_self_time(self):
        stacks = collapse_spans(make_tree(), weight="wall")
        assert stacks == {
            # Component leaves share root's interval: root's self time
            # excludes only the real children (3 + 4 = 7 of 10).
            "root": pytest.approx(3.0),
            "root;child_a": pytest.approx(3.0),
            "root;child_b": pytest.approx(2.0),
            "root;child_b;grand": pytest.approx(2.0),
        }

    def test_wall_total_equals_root_duration(self):
        stacks = collapse_spans(make_tree(), weight="wall")
        assert math.fsum(stacks.values()) == pytest.approx(10.0)

    def test_sim_folding_charges_component_leaves(self):
        stacks = collapse_spans(make_tree(), weight="sim")
        assert stacks == {
            "root;network": pytest.approx(0.5),
            "root;serialize": pytest.approx(0.25),
        }

    def test_sim_fold_total_matches_component_totals_on_real_run(self):
        """Acceptance tie-in: folding a real traced run under the sim
        weighting reproduces ``Span.component_totals()`` (and therefore
        ``RunStats.times``) exactly."""
        cluster = make_cluster()
        result = cluster.run(SCAN, at="local", strategy="by-projection",
                             trace=True)
        root = result.trace
        stacks = collapse_spans(root, weight="sim")
        folded_total = math.fsum(stacks.values())
        charge_total = math.fsum(root.component_totals().values())
        assert folded_total == pytest.approx(charge_total, abs=1e-12)
        assert folded_total == pytest.approx(result.stats.times.total,
                                             abs=1e-9)

    def test_negative_self_time_clamped(self):
        # Children overlapping past the parent's end (clock jitter)
        # must not produce negative weights.
        root = span("root", 0.0, 3.0)
        span("child", 0.0, 5.0, parent=root)
        stacks = collapse_spans(root, weight="wall")
        assert "root" not in stacks  # zero self time drops the line
        assert stacks["root;child"] == pytest.approx(5.0)


class TestProfiler:

    def test_accumulates_across_trees(self):
        profiler = Profiler()
        profiler.record(make_tree())
        profiler.record(make_tree())
        assert profiler.samples == 2
        assert profiler.stacks("wall")["root;child_a"] == pytest.approx(
            6.0)
        assert profiler.stacks("sim")["root;network"] == pytest.approx(
            1.0)

    def test_folded_format(self):
        profiler = Profiler()
        profiler.record(make_tree())
        lines = profiler.folded("wall").splitlines()
        # Sorted by stack; integer microsecond weights.
        assert lines == sorted(lines)
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert weight == str(int(weight))
        assert "root;child_a 3000000" in lines

    def test_write_folded(self, tmp_path):
        profiler = Profiler()
        profiler.record(make_tree())
        path = tmp_path / "profile.folded"
        count = profiler.write_folded(path, weight="sim")
        text = path.read_text()
        assert count == 2
        assert len(text.splitlines()) == 2
        assert text.endswith("\n")

    def test_empty_profile_writes_empty_file(self, tmp_path):
        profiler = Profiler()
        path = tmp_path / "empty.folded"
        assert profiler.write_folded(path) == 0
        assert path.read_text() == ""
