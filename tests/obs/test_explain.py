"""Explain-analyze: per-operator estimated-vs-actual accounting."""

from __future__ import annotations

from repro.decompose import Strategy
from repro.net.stats import PlanReport
from repro.obs.explain import (ActualsBook, OpActual, OpAnalysis,
                               PlanAnalysis, render_analysis)
from repro.runtime.cache import ResultCache
from repro.workloads import (SHARDED_BENCHMARK_QUERY, TINY_LOOKUP_QUERY,
                             build_mixed_federation,
                             build_sharded_federation)

TOLERANCE = 1e-9


class TestActualsBook:
    def test_site_records_merge(self):
        book = ActualsBook()
        book.record_site(1, bytes=10, calls=1, sim_s=0.5)
        book.record_site(1, bytes=5, calls=2, sim_s=0.25, cache_hits=1)
        actual = book.site(1)
        assert (actual.bytes, actual.calls) == (15, 3)
        assert abs(actual.sim_s - 0.75) < TOLERANCE
        assert actual.cache_hits == 1
        assert book.site(2) is None

    def test_ship_records_count_calls(self):
        book = ActualsBook()
        book.record_ship("owner", "d.xml", bytes=100)
        book.record_ship("owner", "d.xml", bytes=50)
        actual = book.ship("owner", "d.xml")
        assert actual.bytes == 150 and actual.calls == 2
        assert book.ship("owner", "other.xml") is None

    def test_merge(self):
        left = OpActual(bytes=1, calls=1, sim_s=1.0, wall_s=2.0)
        left.merge(OpActual(bytes=2, calls=3, sim_s=0.5, cache_hits=4))
        assert (left.bytes, left.calls, left.cache_hits) == (3, 4, 4)
        assert abs(left.sim_s - 1.5) < TOLERANCE


class TestOpAnalysis:
    def test_time_error(self):
        row = OpAnalysis(describe="x", est_s=2.0, est_bytes=0.0,
                         actual_s=3.0)
        assert abs(row.time_error - 1.5) < TOLERANCE
        assert OpAnalysis(describe="x", est_s=2.0,
                          est_bytes=0.0).time_error is None
        assert OpAnalysis(describe="x", est_s=0.0, est_bytes=0.0,
                          actual_s=1.0).time_error is None

    def test_dict_forms_exclude_wall_clock(self):
        """summary() determinism: wall times never reach the dicts."""
        row = OpAnalysis(describe="x", est_s=1.0, est_bytes=2.0,
                         actual_s=1.0, actual_wall_s=0.123)
        assert "actual_wall_s" not in row.as_dict()
        analysis = PlanAnalysis(label="p", rows=(row,), wall_s=9.0)
        assert "wall_s" not in analysis.as_dict()


class TestAnalyzedRuns:
    def test_analysis_recorded_without_tracing(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy=Strategy.BY_PROJECTION)
        analysis = result.stats.plan.analysis
        assert analysis is not None
        assert abs(analysis.actual_total_s
                   - result.stats.times.total) < TOLERANCE
        assert analysis.actual_total_bytes \
            == result.stats.total_transferred_bytes
        assert analysis.wall_s > 0

    def test_scatter_row_sums_shards(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy=Strategy.BY_PROJECTION)
        rows = [row for row in result.stats.plan.analysis.rows
                if "scatter-gather" in row.describe]
        assert rows
        for row in rows:
            assert row.actual_calls == 4       # one round trip per shard
            assert row.actual_bytes > 0

    def test_ship_rows_and_exercised_flags(self):
        federation = build_mixed_federation(0.01)
        result = federation.run(TINY_LOOKUP_QUERY, at="local",
                                strategy="auto")
        analysis = result.stats.plan.analysis
        ship_rows = [row for row in analysis.rows
                     if row.describe.startswith("ship-document")]
        assert ship_rows
        assert all(row.actual_bytes > 0 for row in ship_rows)
        local_rows = [row for row in analysis.rows
                      if row.describe.startswith("local-eval")]
        assert local_rows and local_rows[0].actual_s is not None

    def test_cache_hits_attributed_to_rows(self):
        federation = build_sharded_federation(0.002)
        cache = ResultCache()
        kwargs = dict(at="local", strategy=Strategy.BY_PROJECTION,
                      result_cache=cache)
        federation.run(SHARDED_BENCHMARK_QUERY, **kwargs)
        second = federation.run(SHARDED_BENCHMARK_QUERY, **kwargs)
        assert second.stats.cache_hits > 0
        hits = sum(row.cache_hits
                   for row in second.stats.plan.analysis.rows)
        assert hits == second.stats.cache_hits

    def test_explain_analyze_rendering(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy="auto")
        plain = result.stats.plan.explain()
        analyzed = result.stats.plan.explain(analyze=True)
        assert plain.startswith("plan ")
        assert "-> actual" in analyzed
        assert "wall" in analyzed
        assert analyzed != plain

    def test_explain_analyze_without_analysis(self):
        report = PlanReport(strategy="x", estimated_s=1.0,
                            estimated_bytes=10, explain_text="plan x: est")
        assert report.explain() == "plan x: est"
        assert "(no actuals recorded)" in report.explain(analyze=True)

    def test_render_never_exercised_row(self):
        analysis = PlanAnalysis(
            label="p",
            rows=(OpAnalysis(describe="xrpc-call -> dead", est_s=1.0,
                             est_bytes=100.0, est_calls=2.0),
                  OpAnalysis(describe="xrpc-call -> cached", est_s=1.0,
                             est_bytes=100.0, cache_hits=3)))
        text = render_analysis(analysis)
        assert "never exercised" in text
        assert "served from cache (3 hits)" in text

    def test_as_dict_reaches_summary(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy="auto")
        summary = result.stats.summary()
        analysis = summary["plan"]["analysis"]
        assert analysis["label"] == result.stats.plan.strategy
        assert len(analysis["ops"]) \
            == len(result.stats.plan.analysis.rows)
