"""Span trees over real federated runs: attribution, exports, and the
acceptance invariant — leaf component sums reproduce ``RunStats.times``.
"""

from __future__ import annotations

import json

from repro.decompose import Strategy
from repro.obs.export import (chrome_trace_events, dump_chrome_trace,
                              dump_trace, load_and_validate, render_tree,
                              span_to_dict, spans_in, validate_chrome_trace)
from repro.obs.trace import (COMPONENTS, Span, Tracer, bind_stats_span,
                             child_span, current_span)
from repro.workloads import SHARDED_BENCHMARK_QUERY, build_sharded_federation
from tests.cluster.conftest import make_cluster

TOLERANCE = 1e-9

#: Equality filter over the sharded library: range partitioning puts
#: year 2003 in exactly one shard, so three are provably skipped.
MEMBER_FILTER = """
for $b in doc("xrpc://books-c/books.xml")/child::library
          /child::books/child::book
return if ($b/child::year = 2003) then $b/child::title else ()
"""


def assert_components_match(root, stats) -> None:
    """The acceptance check: summing every component leaf of the trace
    reproduces the run's TimeBreakdown exactly."""
    totals = root.component_totals()
    for component in COMPONENTS:
        assert abs(totals.get(component, 0.0)
                   - getattr(stats.times, component)) < TOLERANCE, component
    # No leaf carries an unknown component name.
    assert set(totals) <= set(COMPONENTS)


class TestSpanMechanics:
    def test_child_span_is_noop_without_active_span(self):
        assert current_span() is None
        with child_span("orphan") as span:
            assert span is None
        assert current_span() is None

    def test_nesting_via_contextvar(self):
        tracer = Tracer()
        with tracer.start("query", at="local") as root:
            with child_span("plan") as plan:
                assert current_span() is plan
                with child_span("inner") as inner:
                    assert inner is not None
            assert current_span() is root
        assert current_span() is None
        assert [c.name for c in root.children] == ["plan"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_explicit_parent_crosses_threads(self):
        import threading
        tracer = Tracer()
        with tracer.start("query") as root:
            def worker():
                # Fresh thread: empty contextvar, explicit handoff.
                assert current_span() is None
                with child_span("shard", parent=root, shard=1):
                    pass
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert root.find("shard").attrs["shard"] == 1

    def test_error_recorded_and_span_closed(self):
        tracer = Tracer()
        try:
            with tracer.start("query"):
                with child_span("rpc"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        rpc = tracer.root.find("rpc")
        assert rpc.closed
        assert "RuntimeError" in rpc.attrs["error"]
        assert tracer.root.closed

    def test_charges_materialise_as_component_leaves(self):
        span = Span("rpc")
        span.charge("network", 0.25, nbytes=1024)
        span.charge("network", 0.25, nbytes=1024)
        span.charge("serialize", 0.1)
        span.close()
        leaves = {leaf.name: leaf for leaf in span.leaves()}
        assert leaves["network"].attrs == {"sim_s": 0.5, "bytes": 2048}
        assert leaves["serialize"].attrs == {"sim_s": 0.1}
        assert span.component_totals() == {"network": 0.5,
                                           "serialize": 0.1}

    def test_bind_stats_span_restores_previous(self):
        from repro.net.stats import RunStats
        stats = RunStats()
        outer, inner = Span("outer"), Span("inner")
        stats.span = outer
        with bind_stats_span(stats, inner):
            assert stats.span is inner
            stats.charge_span("network", 0.5)
        assert stats.span is outer
        assert inner.components == {"network": 0.5}
        # Binding None is a no-op window.
        with bind_stats_span(stats, None):
            assert stats.span is outer


class TestTracedRuns:
    def test_untraced_run_has_no_trace(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy="auto")
        assert result.trace is None
        assert result.stats.span is None

    def test_leaf_components_sum_to_runstats(self):
        """Acceptance: sharded XMark, trace=True — the span tree's
        component leaves reproduce the RunStats totals."""
        federation = build_sharded_federation(0.002)
        for strategy in ("auto", Strategy.BY_PROJECTION,
                         Strategy.DATA_SHIPPING):
            result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                    strategy=strategy, trace=True)
            root = result.trace
            assert root is not None and root.closed
            assert root.name == "query"
            assert_components_match(root, result.stats)
            # Every span in the tree is closed, and the root outlives
            # (contains) its children.
            for span in root.iter_spans():
                assert span.closed
                assert span.start_s >= root.start_s - TOLERANCE
                assert span.end_s <= root.end_s + TOLERANCE

    def test_root_attrs_summarise_the_run(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy="auto", trace=True)
        attrs = result.trace.attrs
        assert attrs["at"] == "local"
        assert attrs["strategy"] == result.stats.plan.strategy
        assert attrs["total_bytes"] == result.stats.total_transferred_bytes
        plan = result.trace.find("plan")
        assert plan is not None
        assert plan.find("enumerate").attrs["candidates"] >= 4

    def test_scatter_span_carries_per_shard_breakdown(self):
        cluster = make_cluster()
        result = cluster.run(MEMBER_FILTER, at="local",
                             strategy=Strategy.BY_FRAGMENT, trace=True)
        scatter = result.trace.find("scatter")
        assert scatter is not None
        assert scatter.attrs["collection"] == "books-c"
        assert scatter.attrs["shards"] == 4
        assert scatter.attrs["shards_skipped"] == 3
        per_shard = scatter.attrs["per_shard"]
        assert set(per_shard) == {f"books-c#s{i}" for i in range(4)}
        assert sum(1 for entry in per_shard.values()
                   if entry["skipped"]) == 3
        served = [entry for entry in per_shard.values()
                  if not entry["skipped"]]
        assert len(served) == 1 and served[0]["bytes"] > 0
        # Satellite: the same breakdown survives on RunStats.
        assert result.stats.per_shard == per_shard
        assert_components_match(result.trace, result.stats)

    def test_per_shard_survives_merge_and_summary(self):
        from repro.net.stats import RunStats
        left, right = RunStats(), RunStats()
        left.per_shard["c#s0"] = {"bytes": 10, "skipped": False}
        right.per_shard["c#s0"] = {"bytes": 5, "skipped": False}
        right.per_shard["c#s1"] = {"bytes": 7, "skipped": True}
        left.merge(right)
        assert left.per_shard["c#s0"] == {"bytes": 15, "skipped": False}
        assert left.per_shard["c#s1"] == {"bytes": 7, "skipped": True}
        assert "per_shard" in left.summary()
        assert "per_shard" not in RunStats().summary()

    def test_rpc_spans_have_wire_attrs(self):
        federation = build_sharded_federation(0.002)
        result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                                strategy=Strategy.BY_PROJECTION,
                                trace=True)
        rpcs = result.trace.find_all("rpc")
        assert rpcs
        for rpc in rpcs:
            assert rpc.attrs["semantics"] == "by-projection"
            assert rpc.attrs["request_bytes"] > 0
            assert rpc.attrs["response_bytes"] > 0
            assert rpc.attrs["cache"] in ("hit", "miss", "off")

    def test_cache_hit_marks_the_rpc_span(self):
        from repro.runtime.cache import ResultCache
        federation = build_sharded_federation(0.002)
        cache = ResultCache()
        kwargs = dict(at="local", strategy=Strategy.BY_PROJECTION,
                      result_cache=cache, trace=True)
        first = federation.run(SHARDED_BENCHMARK_QUERY, **kwargs)
        second = federation.run(SHARDED_BENCHMARK_QUERY, **kwargs)
        assert second.stats.cache_hits > 0
        hits = [rpc for rpc in second.trace.find_all("rpc")
                if rpc.attrs.get("cache") == "hit"]
        assert hits
        assert all(rpc.attrs["saved_bytes"] > 0 for rpc in hits)
        # The invariant holds on both runs, cache or not.
        assert_components_match(first.trace, first.stats)
        assert_components_match(second.trace, second.stats)


class TestExport:
    def traced_run(self):
        federation = build_sharded_federation(0.002)
        return federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                              strategy="auto", trace=True)

    def test_span_to_dict_roundtrips_shape(self):
        result = self.traced_run()
        document = span_to_dict(result.trace)
        assert document["name"] == "query"
        assert document["closed"] is True
        assert document["duration_us"] > 0
        assert any(child["name"] == "plan"
                   for child in document["children"])

    def test_dump_trace_writes_versioned_json(self, tmp_path):
        result = self.traced_run()
        path = tmp_path / "trace.json"
        document = dump_trace(result.trace, path)
        assert document["format"] == "repro-trace-v1"
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(document, default=str))

    def test_chrome_trace_validates(self, tmp_path):
        result = self.traced_run()
        events = chrome_trace_events(result.trace)
        document = {"traceEvents": events}
        assert validate_chrome_trace(document) == []
        assert spans_in(events, "query")
        # Component leaves export simulated durations.
        simulated = [e for e in events if e["cat"] == "simulated"]
        assert simulated
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in events)
        path = tmp_path / "chrome.json"
        dump_chrome_trace(result.trace, path)
        assert load_and_validate(path) == []

    def test_event_log_entries_become_instant_markers(self, tmp_path):
        from repro.obs.events import EventLog

        result = self.traced_run()
        root = result.trace
        log = EventLog()
        # One event inside the root's window, one before, one after:
        # the out-of-window timestamps clamp into [0, root duration].
        log.clock = lambda: (root.start_s + root.end_s) / 2
        log.emit("failover", "mid-run", severity="warning",
                 replica="node2")
        log.clock = lambda: root.start_s - 5.0
        log.emit("peer_down", "before the run")
        log.clock = lambda: root.end_s + 5.0
        log.emit("peer_up", "after the run")

        events = chrome_trace_events(root, events=log)
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["failover", "peer_down",
                                                "peer_up"]
        # The exporter rounds timestamps to 3 decimals, so compare
        # against the same rounding.
        end_us = round((root.end_s - root.start_s) * 1e6, 3)
        for instant in instants:
            assert instant["cat"] == "event"
            assert instant["s"] == "p"
            assert 0.0 <= instant["ts"] <= end_us
        assert instants[1]["ts"] == 0.0
        assert instants[2]["ts"] == round(end_us, 3)
        assert instants[0]["args"]["message"] == "mid-run"
        assert instants[0]["args"]["replica"] == "node2"
        # Instant markers pass the validator (no 'dur' required).
        assert validate_chrome_trace({"traceEvents": events}) == []
        path = tmp_path / "with_events.json"
        dump_chrome_trace(root, path, events=log)
        assert load_and_validate(path) == []
        # A bare iterable of Event works too (no EventLog required).
        subset = chrome_trace_events(root, events=log.recent(1))
        assert [e["name"] for e in subset if e["ph"] == "i"] == ["peer_up"]

    def test_validate_reports_problems(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or empty"]
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1,
                                "tid": 1, "ts": -1.0, "dur": 2.0}]}
        problems = validate_chrome_trace(bad)
        assert any("negative" in p for p in problems)
        missing = {"traceEvents": [{"ph": "X"}]}
        assert any("missing 'name'" in p
                   for p in validate_chrome_trace(missing))

    def test_render_tree_excerpt(self):
        result = self.traced_run()
        text = render_tree(result.trace, max_depth=2)
        assert text.startswith("query ")
        assert "plan" in text
        deep = render_tree(result.trace)
        assert len(deep) >= len(text)
