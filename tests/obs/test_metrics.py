"""The metrics registry primitives and the canonical percentile."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               percentile)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0

    def test_single_value_is_every_percentile(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([7.5], q) == 7.5

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_endpoints_and_median(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5
        assert percentile([0.0, 10.0], 75) == 7.5

    def test_input_not_mutated(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 95)
        assert values == [3.0, 1.0, 2.0]

    def test_runtime_reexport_is_the_same_function(self):
        from repro.runtime.metrics import percentile as reexported
        assert reexported is percentile

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
           st.floats(0, 100))
    def test_bounded_by_min_and_max(self, values, q):
        result = percentile(values, q)
        epsilon = 1e-9 * max(1.0, abs(min(values)), abs(max(values)))
        assert min(values) - epsilon <= result <= max(values) + epsilon

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40))
    def test_monotone_in_q(self, values):
        points = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
        assert points == sorted(points)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(10)
        assert gauge.value == 10

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.snapshot_value()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5
        assert summary["max"] == 4.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        again = registry.counter("c_total")
        assert again is first

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("series")
        with pytest.raises(ValueError):
            registry.gauge("series")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("labeled", labels=("peer",))
        with pytest.raises(ValueError):
            registry.counter("labeled", labels=("host",))

    def test_labeled_series(self):
        registry = MetricsRegistry()
        metric = registry.counter("bytes_total", labels=("peer",))
        metric.labels("peer1").inc(10)
        metric.labels(peer="peer2").inc(20)
        assert metric.labels("peer1").value == 10
        # Non-creating read: absent series stays absent.
        assert metric.get("peer3") is None
        assert set(metric.series()) == {("peer1",), ("peer2",)}

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        metric = registry.counter("pair_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            metric.labels("only-one")
        with pytest.raises(KeyError):
            metric.labels(a="x", wrong="y")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(2)
        registry.gauge("level").set(7)
        registry.histogram("lat").observe(0.5)
        registry.counter("by_peer_total", labels=("peer",)) \
            .labels("p1").inc(3)
        snap = registry.snapshot()
        assert snap["plain_total"] == 2
        assert snap["level"] == 7
        assert snap["lat"]["count"] == 1
        assert snap["by_peer_total"] == {"p1": 3}

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "cache hits").inc(5)
        registry.counter("by_peer_total", labels=("peer",)) \
            .labels("p1").inc(1)
        text = registry.render_text()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 5" in text
        assert 'by_peer_total{peer="p1"} 1' in text

    def test_get_returns_registered_metric(self):
        registry = MetricsRegistry()
        counter = registry.counter("thing_total")
        assert registry.get("thing_total") is counter
        assert registry.get("absent") is None

    def test_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        registry.gauge("g")
        registry.histogram("h")
        assert registry.kinds() == {"c_total": "counter", "g": "gauge",
                                    "h": "histogram"}

    def test_mixed_type_labels_render_without_raising(self):
        """Series whose label values mix strings and integers (peer
        names next to shard indexes) must sort by string form, not
        raise TypeError on comparison."""
        registry = MetricsRegistry()
        metric = registry.counter("calls_total", labels=("shard",))
        metric.labels(2).inc(1)
        metric.labels("node1").inc(2)
        metric.labels(10).inc(3)
        text = registry.render_text()
        # Stringified sort: "10" < "2" < "node1".
        assert (text.index('shard="10"') < text.index('shard="2"')
                < text.index('shard="node1"'))
        snap = registry.snapshot()
        assert list(snap["calls_total"]) == ["10", "2", "node1"]

    def test_render_text_is_deterministic(self):
        def build(order):
            registry = MetricsRegistry()
            registry.counter("z_total").inc(1)
            registry.histogram("lat", labels=("peer",))
            metric = registry.counter("by_peer_total", labels=("peer",))
            for peer in order:
                registry.get("lat").labels(peer).observe(0.5)
                metric.labels(peer).inc(1)
            return registry.render_text()

        first = build(["b", "a", "c"])
        second = build(["c", "b", "a"])
        assert first == second
        # Labeled histograms expose the p99 series per child.
        assert 'lat_p99{peer="a"}' in first

    def test_snapshot_orders_labeled_children(self):
        registry = MetricsRegistry()
        metric = registry.counter("x_total", labels=("peer",))
        metric.labels("zeta").inc(1)
        metric.labels("alpha").inc(2)
        assert list(registry.snapshot()["x_total"]) == ["alpha", "zeta"]
