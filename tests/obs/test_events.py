"""The typed event log: ring bounds, cumulative counts, JSONL export."""

import json

import pytest

from repro.obs.events import EventLog


class TestEventLog:

    def test_emit_and_recent(self):
        log = EventLog()
        log.emit("failover", "node2 failed, trying node3",
                 severity="warning", shard="books-c#s1")
        log.emit("peer_down", "node2 killed", severity="error")
        events = log.recent()
        assert [e.kind for e in events] == ["failover", "peer_down"]
        assert events[0].attrs == {"shard": "books-c#s1"}
        assert events[0].seq < events[1].seq

    def test_recent_filters_then_limits(self):
        log = EventLog()
        for index in range(5):
            log.emit("a", f"a{index}")
            log.emit("b", f"b{index}")
        recent = log.recent(n=2, kind="a")
        assert [e.message for e in recent] == ["a3", "a4"]

    def test_capacity_bounds_ring_but_not_counts(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.emit("tick", f"t{index}")
        assert len(log) == 3
        assert [e.message for e in log.recent()] == ["t7", "t8", "t9"]
        # Cumulative counts survive eviction: the soak test's
        # "fired exactly once" is asserted against these.
        assert log.count("tick") == 10
        assert log.counts() == {"tick": 10}

    def test_severity_validated(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("kind", "msg", severity="critical")

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_injected_clock_stamps_perf_s(self):
        log = EventLog(clock=lambda: 42.5)
        event = log.emit("tick", "t")
        assert event.perf_s == 42.5
        assert event.wall_ts > 0  # wall clock is always real time

    def test_to_dicts_shape(self):
        log = EventLog()
        log.emit("failover", "msg", severity="warning", replica="node2")
        (entry,) = log.to_dicts()
        assert entry["kind"] == "failover"
        assert entry["severity"] == "warning"
        assert entry["attrs"] == {"replica": "node2"}
        assert {"seq", "wall_ts", "perf_s", "message"} <= set(entry)

    def test_export_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("epoch_bump", "catalog epoch -> 2", epoch=2)
        log.emit("shard_skip", "skipped s3")
        path = tmp_path / "events.jsonl"
        assert log.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "epoch_bump"
        assert parsed[0]["attrs"]["epoch"] == 2
        assert parsed[1]["kind"] == "shard_skip"
