"""Rolling windows and the quantile sketch: rotation, clock skew, and
the bounded-error guarantee."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import (
    QuantileSketch, RegistryWindows, RollingWindow, RollingWindowFamily,
)


class FakeClock:
    """Injectable monotonic clock for deterministic rotation."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def exact_percentile(values, q):
    """Nearest-rank percentile, the sketch's own rank convention."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestQuantileSketch:

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(50) == 0.0
        assert sketch.mean == 0.0

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            QuantileSketch(eps=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(eps=1.0)

    def test_percentile_range_validated(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(-1)
        with pytest.raises(ValueError):
            sketch.quantile(101)

    def test_min_max_mean_exact(self):
        sketch = QuantileSketch()
        for value in (2.0, 8.0, 4.0, 6.0):
            sketch.add(value)
        assert sketch.min == 2.0
        assert sketch.max == 8.0
        assert sketch.mean == 5.0
        assert sketch.count == 4

    def test_non_positive_values_report_zero(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(-1.0)
        sketch.add(10.0)
        # Two of three values are in the zero bucket: p50 is 0.
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(99) <= 10.0

    def test_error_bound_over_random_streams(self):
        """Hypothesis-style sweep: for seeded random streams across
        distributions and sizes, every quantile estimate is within
        relative error eps of the exact nearest-rank percentile."""
        eps = 0.01
        for seed in range(8):
            rng = random.Random(seed)
            if seed % 3 == 0:
                values = [rng.lognormvariate(0.0, 2.0)
                          for _ in range(1 + seed * 137)]
            elif seed % 3 == 1:
                values = [rng.uniform(1e-6, 1e3)
                          for _ in range(50 + seed * 211)]
            else:
                values = [rng.expovariate(10.0)
                          for _ in range(10 + seed * 97)]
            sketch = QuantileSketch(eps=eps)
            for value in values:
                sketch.add(value)
            for q in (1, 10, 50, 90, 95, 99, 99.9, 100):
                exact = exact_percentile(values, q)
                estimate = sketch.quantile(q)
                # Tiny slack over eps covers float round-off only.
                bound = eps * exact * (1.0 + 1e-6) + 1e-12
                assert abs(estimate - exact) <= bound, (
                    f"seed={seed} q={q}: |{estimate} - {exact}| "
                    f"> {bound}")

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=400),
        q=st.sampled_from([1, 25, 50, 75, 90, 95, 99, 100]))
    def test_error_bound_property(self, values, q):
        """Property: any positive stream, any quantile — the estimate
        stays within relative error eps of the exact percentile."""
        eps = 0.02
        sketch = QuantileSketch(eps=eps)
        for value in values:
            sketch.add(value)
        exact = exact_percentile(values, q)
        assert abs(sketch.quantile(q) - exact) <= (
            eps * exact * (1.0 + 1e-6) + 1e-12)

    def test_merge_equals_single_sketch(self):
        rng = random.Random(42)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(500)]
        whole = QuantileSketch(eps=0.02)
        left = QuantileSketch(eps=0.02)
        right = QuantileSketch(eps=0.02)
        for index, value in enumerate(values):
            whole.add(value)
            (left if index % 2 else right).add(value)
        left.merge(right)
        assert left.count == whole.count
        assert left.min == whole.min
        assert left.max == whole.max
        for q in (50, 95, 99):
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_requires_same_eps(self):
        a, b = QuantileSketch(eps=0.01), QuantileSketch(eps=0.02)
        b.add(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_keys(self):
        sketch = QuantileSketch()
        sketch.add(3.0)
        snap = sketch.snapshot()
        assert set(snap) == {"count", "sum", "mean", "p50", "p95",
                             "p99", "max"}
        assert snap["count"] == 1
        assert snap["max"] == 3.0


class TestRollingWindow:

    def test_config_validated(self):
        with pytest.raises(ValueError):
            RollingWindow(width_s=0.0)
        with pytest.raises(ValueError):
            RollingWindow(buckets=0)

    def test_observations_accumulate_in_current_bucket(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=5, clock=clock)
        window.observe(2.0)
        window.observe(4.0)
        assert window.count() == 2
        assert window.sum() == 6.0
        assert window.mean() == 3.0

    def test_bucket_rotation_expires_old_data(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=3, clock=clock)
        window.observe(1.0)
        clock.advance(1.0)
        window.observe(2.0)
        clock.advance(1.0)
        window.observe(3.0)
        assert window.count() == 3
        # One more step pushes the first bucket out of the ring.
        clock.advance(1.0)
        assert window.count() == 2
        assert window.sum() == 5.0
        clock.advance(2.0)
        assert window.count() == 0

    def test_forward_jump_past_ring_clears_everything(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=4, clock=clock)
        for _ in range(4):
            window.observe(1.0)
            clock.advance(1.0)
        clock.advance(100.0)
        assert window.count() == 0
        window.observe(7.0)
        assert window.sum() == 7.0

    def test_backwards_clock_never_clears(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=4, clock=clock)
        window.observe(1.0)
        clock.advance(2.0)
        window.observe(2.0)
        clock.now -= 50.0  # skew: clock jumps backwards
        assert window.count() == 2
        # New observations land in the newest bucket, not a past one.
        window.observe(3.0)
        assert window.count() == 3
        clock.now += 50.0  # skew heals: nothing was lost meanwhile
        assert window.count() == 3

    def test_window_s_limits_the_read(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=10, clock=clock)
        window.observe(1.0)
        for value in (2.0, 3.0, 4.0):
            clock.advance(1.0)
            window.observe(value)
        # Reading at t+3: last 2 buckets hold values 3 and 4.
        assert window.count(window_s=2.0) == 2
        assert window.sum(window_s=2.0) == 7.0
        assert window.count() == 4

    def test_covered_s_caps_at_window_lifetime(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=60, clock=clock)
        window.observe(1.0)
        # One bucket old: a 10s read covers 1s, not 10.
        assert window.covered_s(window_s=10.0) == 1.0
        clock.advance(4.0)
        assert window.covered_s(window_s=10.0) == 5.0

    def test_rate_uses_covered_not_requested_span(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=60, clock=clock)
        for _ in range(5):
            window.observe(1.0)
        # 5 events in the window's 1 lived second: 5/s, not 5/60.
        assert window.rate() == 5.0

    def test_windowed_quantile_merges_bucket_sketches(self):
        clock = FakeClock()
        window = RollingWindow(width_s=1.0, buckets=10, clock=clock)
        for value in (1.0, 100.0):
            window.observe(value)
            clock.advance(1.0)
        assert window.quantile(99) == pytest.approx(100.0, rel=0.02)
        # The recent 1-bucket view only saw nothing (current bucket is
        # empty after the last advance); the 2-bucket view sees 100.
        assert window.quantile(99, window_s=2.0) == pytest.approx(
            100.0, rel=0.02)

    def test_eps_none_disables_quantiles(self):
        window = RollingWindow(eps=None, clock=FakeClock())
        window.observe(1.0)
        with pytest.raises(ValueError):
            window.quantile(50)
        snap = window.snapshot()
        assert "p99" not in snap
        assert snap["count"] == 1

    def test_empty_window_reads(self):
        window = RollingWindow(clock=FakeClock())
        assert window.count() == 0
        assert window.mean() == 0.0
        assert window.rate() == 0.0
        # A read establishes the current bucket, so the window has
        # lived exactly one bucket (the rate above is still 0).
        assert window.covered_s() == 1.0


class TestRollingWindowFamily:

    def test_lazy_per_label_windows(self):
        clock = FakeClock()
        family = RollingWindowFamily(clock=clock)
        family.labels("node1").observe(1.0)
        family.labels("node2").observe(2.0)
        assert family.labels("node1") is family.labels("node1")
        assert family.names() == ["node1", "node2"]
        assert family.get("absent") is None
        assert family.get("node1").sum() == 1.0


class TestRegistryWindows:

    def test_counter_deltas_feed_windowed_rate(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        windows = RegistryWindows(registry, width_s=1.0, buckets=10,
                                  clock=clock)
        counter.inc(10)
        windows.sample()      # first sighting: baseline only
        assert windows.delta("ops_total") == 0.0
        counter.inc(30)
        clock.advance(1.0)
        windows.sample()
        assert windows.delta("ops_total") == 30.0
        # The per-series window is born when its first delta lands, so
        # it has lived one bucket here: 30 ops over 1s.
        assert windows.rate("ops_total") == pytest.approx(30.0)
        clock.advance(1.0)
        windows.sample()      # no new increments
        assert windows.rate("ops_total") == pytest.approx(15.0)

    def test_labeled_counters_get_per_series_windows(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        counter = registry.counter("bytes_total", labels=("peer",))
        windows = RegistryWindows(registry, clock=clock)
        counter.labels("p1").inc(5)
        windows.sample()
        counter.labels("p1").inc(7)
        counter.labels("p2").inc(3)
        windows.sample()
        assert windows.delta("bytes_total", "p1") == 7.0
        # p2's first sighting set its baseline; no delta yet.
        assert windows.delta("bytes_total", "p2") == 0.0

    def test_gauges_and_histograms_are_skipped(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.gauge("level").set(100)
        registry.histogram("lat").observe(1.0)
        windows = RegistryWindows(registry, clock=clock)
        windows.sample()
        windows.sample()
        assert windows.windows.names() == []

    def test_backwards_counter_resets_baseline(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.counter("ops_total").inc(100)
        windows = RegistryWindows(registry, clock=clock)
        windows.sample()
        # Swap the registry underneath: the counter restarts from 0.
        fresh = MetricsRegistry()
        fresh_counter = fresh.counter("ops_total")
        windows.registry = fresh
        fresh_counter.inc(2)
        windows.sample()      # 2 < 100: reset, no negative delta
        assert windows.delta("ops_total") == 0.0
        fresh_counter.inc(5)
        windows.sample()
        assert windows.delta("ops_total") == 5.0

    def test_unknown_series_reads_zero(self):
        windows = RegistryWindows(MetricsRegistry(), clock=FakeClock())
        assert windows.rate("never_sampled") == 0.0
        assert windows.delta("never_sampled") == 0.0
