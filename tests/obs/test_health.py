"""Per-peer health scoring: baselines, demotion hysteresis, events."""

import pytest

from repro.obs.events import EventLog
from repro.obs.health import HealthTracker

from tests.obs.test_windows import FakeClock


def make_tracker(**kwargs):
    clock = FakeClock()
    events = EventLog(clock=clock)
    tracker = HealthTracker(events=events, clock=clock, **kwargs)
    return tracker, events, clock


def feed(tracker, peer, latency_s, n=5, ok=True):
    for _ in range(n):
        tracker.record(peer, latency_s, ok=ok)


class TestHealthScoring:

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            HealthTracker(demote_below=0.9, restore_above=0.5)
        with pytest.raises(ValueError):
            HealthTracker(latency_tolerance=0.5)

    def test_fresh_peer_is_healthy(self):
        tracker, _, _ = make_tracker()
        assert tracker.healthy("never-seen")
        state = tracker.health("never-seen")
        assert state.score == 1.0
        assert state.samples == 0

    def test_uniform_fleet_scores_full(self):
        tracker, events, _ = make_tracker()
        for peer in ("node1", "node2", "node3"):
            feed(tracker, peer, 0.001)
        for peer in ("node1", "node2", "node3"):
            assert tracker.health(peer).score == 1.0
            assert tracker.healthy(peer)
        assert events.counts() == {}

    def test_degrading_peer_is_demoted(self):
        """A slow-but-answering replica is demoted on latency alone —
        the case failover counting can never catch."""
        tracker, events, _ = make_tracker()
        feed(tracker, "node1", 0.001)
        feed(tracker, "node2", 0.050)  # 50x the fleet baseline
        feed(tracker, "node3", 0.001)
        state = tracker.health("node2")
        # latency_factor = 3 * 0.001 / 0.050 = 0.06
        assert state.score == pytest.approx(0.06, rel=0.05)
        assert not state.healthy
        assert not tracker.healthy("node2")
        assert events.count("health_demoted") == 1
        assert tracker.healthy("node1")
        assert tracker.healthy("node3")

    def test_lower_median_baseline_resists_the_outlier(self):
        """Two-peer fleet: the degraded peer must not drag the
        baseline up and excuse itself."""
        tracker, _, _ = make_tracker()
        feed(tracker, "good", 0.001)
        feed(tracker, "bad", 0.100)
        # Lower median of [0.001, 0.100] is 0.001, not the midpoint.
        assert tracker.baseline() == pytest.approx(0.001)
        assert not tracker.healthy("bad")
        assert tracker.healthy("good")

    def test_error_rate_lowers_score(self):
        tracker, events, _ = make_tracker()
        feed(tracker, "node1", 0.001, n=10)
        feed(tracker, "node2", 0.001, n=4, ok=True)
        feed(tracker, "node2", 0.001, n=6, ok=False)
        state = tracker.health("node2")
        assert state.error_rate == pytest.approx(0.6)
        assert state.score == pytest.approx(0.4)
        assert not state.healthy
        assert events.count("health_demoted") == 1

    def test_min_samples_keeps_prior_standing(self):
        tracker, _, clock = make_tracker(min_samples=3, buckets=5)
        feed(tracker, "node1", 0.001, n=10)
        feed(tracker, "node2", 0.100, n=10)
        assert not tracker.healthy("node2")
        # Its traffic ages out: 1 fresh sample is not enough evidence
        # to clear the demotion.
        clock.advance(10.0)
        tracker.record("node2", 0.001)
        state = tracker.health("node2")
        assert state.samples == 1
        assert not state.healthy

    def test_restore_needs_hysteresis_margin(self):
        tracker, events, clock = make_tracker(buckets=5)
        feed(tracker, "node1", 0.001, n=20)
        feed(tracker, "node2", 0.100, n=10)
        assert not tracker.healthy("node2")
        # Recovery: the old slow samples age out, fresh fast traffic
        # replaces them, and the peer is restored (score > 0.8).
        clock.advance(10.0)
        feed(tracker, "node1", 0.001, n=20)
        feed(tracker, "node2", 0.001, n=10)
        assert tracker.healthy("node2")
        assert events.count("health_restored") == 1
        assert events.count("health_demoted") == 1

    def test_score_oscillation_does_not_flap_events(self):
        """Scores wobbling between demote (0.5) and restore (0.8)
        thresholds must not emit repeated transitions."""
        tracker, events, _ = make_tracker()
        feed(tracker, "node1", 0.001, n=20)
        feed(tracker, "node2", 0.001, n=4, ok=True)
        feed(tracker, "node2", 0.001, n=6, ok=False)  # score 0.4
        assert not tracker.healthy("node2")
        # More good traffic lifts the score into the dead band
        # (0.5 < score < 0.8): still demoted, no new events.
        feed(tracker, "node2", 0.001, n=10, ok=True)
        state = tracker.health("node2")
        assert 0.5 < state.score < 0.8
        assert not state.healthy
        for _ in range(5):
            tracker.health("node2")
        assert events.count("health_demoted") == 1
        assert events.count("health_restored") == 0

    def test_snapshot_lists_all_peers(self):
        tracker, _, _ = make_tracker()
        feed(tracker, "b", 0.001)
        feed(tracker, "a", 0.001)
        snap = tracker.snapshot()
        assert [entry["peer"] for entry in snap] == ["a", "b"]
        assert all(entry["healthy"] for entry in snap)
