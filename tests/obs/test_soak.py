"""The churn soak (acceptance): a replica degrades, dies, and recovers
mid-workload while the fleet keeps answering correctly, health demotes
the degrading replica before it ever fails a request, and the SLO
burn-rate alert fires exactly once for the sustained breach."""

import gc

import pytest

from repro.cluster.router import ClusterRouter
from repro.decompose import Strategy
from repro.obs import SLO, BurnRatePolicy, FleetMonitor
from repro.runtime import FederationEngine
from repro.xquery.xdm import serialize_sequence

from tests.cluster.conftest import make_cluster

SCAN = ('doc("xrpc://books-c/books.xml")'
        "/child::library/child::books/child::book/child::title")

#: Injected latency far above the fleet's sub-ms baseline, and a slow
#: threshold between the two, so degraded-peer queries (and only
#: those) breach the latency SLO.
DEGRADE_S = 0.080
SLOW_S = 0.030


@pytest.fixture(autouse=True)
def _no_gc_pauses():
    """Late in a full-suite run the heap holds a thousand tests' worth
    of objects, and a gen-2 collection pause straddles several of this
    soak's ~2 ms queries at once — enough correlated >30 ms samples to
    fire the latency alert against a perfectly healthy fleet. Freeze
    the pre-existing heap out of the collector and switch GC off for
    the test's short, bounded allocation window."""
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.unfreeze()
        gc.collect()


def run_batch(engine, n):
    """n queries, returning the de-duplicated set of answers."""
    futures = [engine.submit(SCAN, at="local",
                             strategy=Strategy.BY_PROJECTION)
               for _ in range(n)]
    return {serialize_sequence(f.result().items) for f in futures}


def test_soak_churn_degrade_and_alert(tmp_path):
    cluster = make_cluster()
    monitor = FleetMonitor(slow_query_s=SLOW_S,
                           profile_every=4).attach(cluster)
    monitor.add_slo(
        SLO(name="latency", target=0.9, threshold_s=SLOW_S),
        BurnRatePolicy(long_s=60.0, short_s=1.0, threshold=2.0,
                       resolve_ratio=0.5, min_requests=5))

    baseline = serialize_sequence(
        cluster.run(SCAN, at="local",
                    strategy=Strategy.BY_PROJECTION).items)

    # Cache hits bypass the wire, so they feed ~0 ms samples into
    # health windows; batching adds timing noise. Both off keeps the
    # degraded peer's latency signal clean for deterministic scoring.
    with FederationEngine(cluster, max_workers=2, cache=False,
                          batch_window_s=0.0) as engine:
        # Phase 1 — healthy warmup: correct answers, no churn events.
        # 16 queries, not a handful: the alert needs a >=20% bad
        # fraction over the long window, so a couple of stray
        # scheduler/GC pauses above the slow threshold (routine on a
        # loaded CI box) can never fire it against a healthy fleet.
        assert run_batch(engine, 16) == {baseline}
        summary = engine.metrics.summary()
        assert summary["failed"] == 0
        assert summary["failovers"] == 0
        assert monitor.events.count("alert_fired") == 0

        # Phase 2 — node2 degrades (slow, NOT dead). Catalog marks
        # steer shards 0/1 onto it exclusively, so every query pays the
        # injected latency: the breach is sustained and deterministic.
        # Nothing raises, so failover counting can never catch this;
        # health scoring must, before any request fails.
        cluster.catalog.mark_down("node1")
        cluster.catalog.mark_down("node3")
        cluster.transport.degrade_peer("node2", DEGRADE_S)
        # 12 degraded queries: enough that the long-window bad
        # fraction breaches decisively even after the larger warmup.
        assert run_batch(engine, 12) == {baseline}

        demotions = monitor.events.recent(kind="health_demoted")
        assert demotions, "degraded replica was never demoted"
        # Wall-clock contention can transiently demote others; the
        # injected-latency peer must be among them.
        assert "node2" in {e.attrs["peer"] for e in demotions}
        # The detector fired while the failover count is still zero:
        # demotion happened *before* any failed request could.
        assert engine.metrics.summary()["failovers"] == 0
        assert monitor.events.count("failover") == 0
        assert not monitor.health.healthy("node2")
        # A demoted replica that is a shard's only live copy still
        # serves it (last resort), so answers stayed correct above.

        # The sustained breach fired the burn-rate alert exactly once,
        # and every degraded query tripped the slow-query detector.
        assert monitor.events.count("alert_fired") == 1
        assert monitor.events.count("slow_query") >= 12

        # Phase 3 — the fleet heals topologically (marks lifted) but
        # node2's windows still hold the slow history: the router sorts
        # the demoted replica last (failover path of last resort, never
        # first choice) wherever an alternative exists.
        cluster.catalog.mark_up("node1")
        cluster.catalog.mark_up("node3")
        stub = type("Stub", (), {})()
        stub.transport = cluster.transport
        stub.federation = cluster
        router = ClusterRouter(stub, cluster.catalog)
        spec = cluster.catalog.get("books-c")
        shards_with_node2 = 0
        for shard in spec.shards:
            order = router.replica_order(shard)
            if "node2" in order:
                shards_with_node2 += 1
                assert len(order) > 1
                assert order[-1] == "node2"
        assert shards_with_node2 > 0

        # Phase 4 — hard churn: restore node2, then kill a *healthy*
        # first-choice replica (node1) outright mid-workload and revive
        # it. Zero wrong answers throughout. (Killing the demoted
        # replica would prove nothing: health already routes around
        # it, so its death could never register a failover.)
        cluster.transport.restore_peer("node2")
        cluster.transport.kill_peer("node1")
        assert run_batch(engine, 8) == {baseline}
        assert engine.metrics.summary()["failovers"] >= 1
        assert monitor.events.count("failover") >= 1
        cluster.transport.revive_peer("node1")
        assert run_batch(engine, 4) == {baseline}

        summary = engine.metrics.summary()
        assert summary["failed"] == 0
        per_collection = summary["per_collection"]["books-c"]
        assert per_collection["failovers"] == summary["failovers"]
        assert per_collection["shard_calls"] > 0

    # The breach never aged out of the 60s long window, so the alert
    # could not flap: still exactly one fire over the whole soak.
    assert monitor.events.count("alert_fired") == 1
    assert monitor.events.count("peer_down") == 1
    assert monitor.events.count("peer_up") == 1
    assert monitor.events.count("peer_degraded") == 1
    assert monitor.events.count("peer_restored") == 1
    assert monitor.events.count("epoch_bump") == 4  # 2 marks each way

    # CI artifacts: the event JSONL and both flamegraph weightings.
    events_path = tmp_path / "events.jsonl"
    assert monitor.events.export_jsonl(events_path) > 0
    assert monitor.profiler.samples >= 1
    profile_path = tmp_path / "profile.folded"
    assert monitor.profiler.write_folded(profile_path, "sim") > 0
    assert profile_path.read_text().strip()
