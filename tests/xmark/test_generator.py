"""XMark generator: determinism, schema shape, linear scaling."""

from repro.xmark import XMarkConfig, generate_auctions, generate_pair, \
    generate_people
from repro.xmldb.serializer import serialize
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query


def query(doc, text):
    module = parse_query(text)
    env = DynamicContext(resolve_doc=lambda uri: doc)
    return Evaluator(module).evaluate(module.body, env)


class TestDeterminism:
    def test_same_seed_same_document(self):
        first = generate_people(XMarkConfig(scale=0.002, seed=7))
        second = generate_people(XMarkConfig(scale=0.002, seed=7))
        assert serialize(first) == serialize(second)

    def test_different_seed_differs(self):
        first = generate_people(XMarkConfig(scale=0.002, seed=7))
        second = generate_people(XMarkConfig(scale=0.002, seed=8))
        assert serialize(first) != serialize(second)


class TestSchema:
    def test_people_shape(self):
        doc = generate_people(XMarkConfig(scale=0.002))
        persons = query(doc, 'doc("u")/site/people/person')
        assert len(persons) == XMarkConfig(scale=0.002).person_count
        ages = query(doc, 'doc("u")//person/age')
        assert len(ages) == len(persons)
        ids = query(doc, 'doc("u")//person/@id')
        assert len(set(n.value for n in ids)) == len(persons)

    def test_people_doc_carries_regions_and_categories(self):
        doc = generate_people(XMarkConfig(scale=0.002))
        assert query(doc, 'count(doc("u")/site/regions//item)')[0] > 0
        assert query(doc, 'count(doc("u")/site/categories/category)')[0] > 0

    def test_auctions_shape(self):
        doc = generate_auctions(XMarkConfig(scale=0.002))
        auctions = query(doc, 'doc("u")//open_auction')
        assert len(auctions) == XMarkConfig(scale=0.002).auction_count
        sellers = query(doc, 'doc("u")//open_auction/seller/@person')
        assert len(sellers) == len(auctions)
        authors = query(doc, 'doc("u")//annotation/author')
        assert len(authors) == len(auctions)

    def test_sellers_reference_real_persons(self):
        people, auctions = generate_pair(0.002)
        ids = {n.value for n in query(people, 'doc("u")//person/@id')}
        sellers = {n.value
                   for n in query(auctions, 'doc("u")//seller/@person')}
        assert sellers <= ids

    def test_age_filter_selects_a_real_subset(self):
        doc = generate_people(XMarkConfig(scale=0.004))
        young = query(doc, 'count(doc("u")//person[age < 40])')[0]
        total = query(doc, 'count(doc("u")//person)')[0]
        assert 0 < young < total


class TestScaling:
    def test_size_roughly_linear(self):
        small = len(serialize(generate_people(XMarkConfig(scale=0.002))))
        large = len(serialize(generate_people(XMarkConfig(scale=0.008))))
        ratio = large / small
        assert 2.5 < ratio < 6.0  # ~4x with generator noise

    def test_minimum_counts(self):
        config = XMarkConfig(scale=0.00001)
        assert config.person_count >= 2
        assert config.auction_count >= 2
