"""Insertion conditions i-iv per strategy (Sections IV-VI).

Test design note: a hazardous operation (reverse step, node
comparison, ...) only matters when it crosses the ship boundary — if
the whole expression containing it can ship to one peer, the hazard
vanishes and the planner legitimately ships wholesale. The queries
below therefore pin the *consumer* locally by making it depend on a
local document (``doc("l.xml")``), so the only candidate is the remote
subquery and the condition decides its fate.
"""

from repro.decompose.conditions import valid_decomposition_points
from repro.decompose.points import interesting_points, select_insertions
from repro.dgraph.graph import build_dgraph
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_query

REMOTE = 'doc("xrpc://P/d.xml")'
ANCHOR = 'doc("l.xml")/child::x'  # pins the enclosing expression locally


def shipped_hosts(query: str, strategy: str) -> list[str]:
    """Hosts that receive a subquery under one strategy."""
    graph = build_dgraph(normalize(parse_query(query)))
    dpoints = valid_decomposition_points(graph, strategy)
    ipoints = interesting_points(graph, dpoints)
    return sorted(p.host for p in select_insertions(graph, ipoints))


class TestConditionI:
    """Reverse/horizontal steps on shipped nodes: forbidden under
    by-value and by-fragment, allowed under by-projection."""

    QUERY = (f"let $b := {REMOTE}/child::a/child::b "
             f"return for $y in {ANCHOR} return $b/parent::a")

    def test_by_value_blocks(self):
        assert shipped_hosts(self.QUERY, "by-value") == []

    def test_by_fragment_blocks(self):
        assert shipped_hosts(self.QUERY, "by-fragment") == []

    def test_by_projection_allows(self):
        assert shipped_hosts(self.QUERY, "by-projection") == ["P"]

    def test_horizontal_axis_also_blocks(self):
        query = (f"let $b := {REMOTE}/child::a/child::b "
                 f"return for $y in {ANCHOR} "
                 "return $b/following-sibling::c")
        assert shipped_hosts(query, "by-fragment") == []
        assert shipped_hosts(query, "by-projection") == ["P"]

    def test_reverse_axis_on_parameter_blocks(self):
        # The reverse step is inside the shipped body (a predicate of
        # the shipped step), applied to data bound outside — a shipped
        # parameter whose parent is lost under pass-by-value.
        query = (f"let $n := {ANCHOR}/child::y return "
                 f"{REMOTE}/child::a[$n/parent::x]")
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-projection") == ["P"]

    def test_whole_single_peer_query_ships_despite_reverse_axis(self):
        # No local pin: everything lives on P, so the reverse step runs
        # remotely with local semantics — shipping the root is legal.
        query = f"let $b := {REMOTE}/child::a/child::b return $b/parent::a"
        assert shipped_hosts(query, "by-value") == ["P"]


class TestConditionII:
    """Node comparisons / set ops on shipped nodes."""

    QUERY = (f"let $a := {REMOTE}/child::a "
             f"return for $y in {ANCHOR} return $a is $y")

    def test_by_value_blocks(self):
        assert shipped_hosts(self.QUERY, "by-value") == []

    def test_by_fragment_allows_without_doc_conflict(self):
        # Identity is preserved within one fragment space and no other
        # call site opens the same document.
        assert shipped_hosts(self.QUERY, "by-fragment") == ["P"]

    def test_by_fragment_blocks_on_doc_conflict(self):
        # path $a is pinned locally by its predicate; $b would ship
        # alone and its copies would be identity-compared against
        # local nodes of the same document.
        query = (f"let $a := {REMOTE}/child::a[{ANCHOR}] "
                 f"let $b := {REMOTE}/child::a "
                 "return $a is $b")
        assert shipped_hosts(query, "by-fragment") == []

    def test_node_set_op_blocks_by_value(self):
        query = (f"let $a := {REMOTE}/child::a "
                 f"return for $y in {ANCHOR} return ($a intersect $a)")
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-fragment") == ["P"]


class TestConditionIII:
    """Downward steps over potentially mixed/unordered results."""

    def test_for_output_with_steps_blocks_by_value(self):
        # The for-loop's own output receives a step: the loop cannot
        # ship by value...
        query = (f"count(((for $x in {REMOTE}/child::a return $x)"
                 f"/child::b, {ANCHOR}))")
        graph = build_dgraph(normalize(parse_query(query)))
        dpoints = valid_decomposition_points(graph, "by-value")
        for_vertex = next(v for v in graph.vertices if v.rule == "ForExpr")
        assert for_vertex.vid not in dpoints
        # ... but the path inside its sequence still ships.
        assert shipped_hosts(query, "by-value") == ["P"]

    def test_bulk_rpc_lifts_for_restriction_under_fragment(self):
        query = (f"count(((for $x in {REMOTE}/child::a return $x)"
                 f"/child::b, {ANCHOR}))")
        graph = build_dgraph(normalize(parse_query(query)))
        dpoints = valid_decomposition_points(graph, "by-fragment")
        for_vertex = next(v for v in graph.vertices if v.rule == "ForExpr")
        assert for_vertex.vid in dpoints

    def test_overlapping_axis_result_blocks_by_value(self):
        # descendant:: results can overlap; a step over shipped
        # overlapping copies breaks identity/dedup under by-value.
        query = (f"let $a := {REMOTE}/descendant::a "
                 f"return for $y in {ANCHOR} return $a/child::b")
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-fragment") == ["P"]

    def test_cross_call_mixing_same_doc_blocks_everywhere(self):
        # Problem 4: two applications of one document whose results
        # merge under a step — and the first is pinned locally, so the
        # second would ship alone and mix with local nodes of the same
        # document.
        query = (f"({REMOTE}/child::a[{ANCHOR}], {REMOTE}/child::b)"
                 "/child::c")
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-fragment") == []
        assert shipped_hosts(query, "by-projection") == []

    def test_single_call_mixing_ships_wholesale_under_fragment(self):
        # Without the pin, both applications travel in ONE call: the
        # fragment space preserves cross-application identity and the
        # step is evaluated safely (this is the hasMatchingDoc point:
        # the *conflict* only exists across separate calls).
        query = f"({REMOTE}/child::a, {REMOTE}/child::b)/child::c"
        assert shipped_hosts(query, "by-fragment") == ["P"]

    def test_mixing_different_docs_fine_under_fragment(self):
        query = ('((doc("xrpc://P/d.xml")/child::a[' + ANCHOR + '], '
                 'doc("xrpc://P/e.xml")/child::b)/child::c)')
        # The d.xml branch is pinned; the e.xml branch may ship under
        # fragment (different document: no identity conflict).
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-fragment") == ["P"]

    def test_child_steps_on_shipped_path_allowed_by_value(self):
        query = (f"count((({REMOTE}/child::a/child::b)/child::c, "
                 f"{ANCHOR}))")
        assert shipped_hosts(query, "by-value") == ["P"]


class TestConditionIV:
    """fn:root / fn:id / fn:idref on shipped nodes."""

    QUERY = (f"let $a := {REMOTE}/child::a/child::b "
             f"return for $y in {ANCHOR} return root($a)")

    def test_by_value_blocks(self):
        assert shipped_hosts(self.QUERY, "by-value") == []

    def test_by_fragment_blocks(self):
        assert shipped_hosts(self.QUERY, "by-fragment") == []

    def test_by_projection_allows(self):
        assert shipped_hosts(self.QUERY, "by-projection") == ["P"]

    def test_id_blocks_too(self):
        query = (f"let $a := {REMOTE}/child::a "
                 f'return for $y in {ANCHOR} return id("k", $a)')
        assert shipped_hosts(query, "by-value") == []
        assert shipped_hosts(query, "by-projection") == ["P"]


class TestSafeBaseline:
    def test_pure_downward_query_valid_everywhere(self):
        query = f"{REMOTE}/child::a/child::b[child::c = 1]"
        for strategy in ("by-value", "by-fragment", "by-projection"):
            assert shipped_hosts(query, strategy) == ["P"]

    def test_atomic_results_always_fine(self):
        query = f"(count({REMOTE}/child::a), {ANCHOR})"
        for strategy in ("by-value", "by-fragment", "by-projection"):
            assert shipped_hosts(query, strategy) == ["P"]
