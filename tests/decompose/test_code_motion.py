"""Distributed code motion unit tests (Section IV, Example 4.3)."""

from repro.decompose.code_motion import apply_code_motion
from repro.xquery.ast import Module, XRPCExpr, walk
from repro.xquery.parser import parse_expr
from repro.xquery.pretty import pretty


def motion(query: str) -> XRPCExpr:
    module = Module([], parse_expr(query))
    rewritten = apply_code_motion(module)
    return next(e for e in walk(rewritten.body)
                if isinstance(e, XRPCExpr))


class TestMoves:
    def test_value_compared_path_moves(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ $p/child::id = 1 }")
        (param,) = call.params
        assert param.name == "p_cm1"
        assert pretty(param.value) == "data($t/child::id)"
        assert "$p_cm1" in pretty(call.body)

    def test_multiple_distinct_paths(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ ($p/child::id = 1, $p/child::age = 2) }")
        assert [pretty(p.value) for p in call.params] == [
            "data($t/child::id)", "data($t/child::age)"]

    def test_same_path_reused_once(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ ($p/child::id = 1, $p/child::id = 2) }")
        assert len(call.params) == 1

    def test_atomizing_builtin_consumer(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ count($p/child::id) }")
        assert call.params[0].name == "p_cm1"

    def test_ebv_condition_blocks(self):
        # EBV of a multi-item atomic sequence is an error, so a path
        # consumed as an if-condition cannot ship atomized.
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ if ($p/child::ok) then 1 else 2 }")
        assert call.params[0].name == "p"


class TestBlocked:
    def test_escaping_parameter_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) { $p }')
        assert call.params[0].name == "p"

    def test_path_in_result_position_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ $p/child::id }")
        assert call.params[0].name == "p"

    def test_reverse_axis_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ $p/parent::x = 1 }")
        assert call.params[0].name == "p"

    def test_node_comparison_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ $p/child::id is <x/> }")
        assert call.params[0].name == "p"

    def test_predicate_in_path_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ $p/child::id[1] = 1 }")
        assert call.params[0].name == "p"

    def test_mixed_uses_block_entirely(self):
        # One escaping use poisons the parameter even if another use
        # is extractable.
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ ($p/child::id = 1, $p/child::data) }")
        assert call.params[0].name == "p"

    def test_branch_position_blocks(self):
        call = motion('execute at {"B"} function ($p := $t) '
                      "{ if (1) then $p/child::id else () }")
        assert call.params[0].name == "p"
