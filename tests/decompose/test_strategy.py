"""The decomposition pipeline on Table III/IV's Q2 and the benchmark
query: which subqueries ship under which strategy."""

from repro.decompose import Strategy, decompose
from repro.workloads import BENCHMARK_QUERY
from repro.xquery.ast import XRPCExpr, walk
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty

from tests.conftest import Q2


def xrpc_calls(module):
    return [expr for expr in walk(module.body)
            if isinstance(expr, XRPCExpr)]


def hosts(module):
    return sorted(
        x.dest.value for x in xrpc_calls(module))


class TestQ2:
    """Table IV: Qv2 ships only fcn1 (peer A); Qf2 ships both sides."""

    def test_data_shipping_inserts_nothing(self):
        result = decompose(parse_query(Q2), Strategy.DATA_SHIPPING)
        assert xrpc_calls(result.module) == []

    def test_by_value_ships_both_paths(self):
        """The paper's Qv2 ships only fcn1 because its XCore desugars
        the $t predicate into a for-loop (a condition-iii mixer). Our
        XCore keeps predicates as predicates, so the B-side
        child-step-only path is also a valid by-value point — a strict
        improvement with identical semantics. (The conservative
        behaviour the paper reports is still exercised verbatim by the
        Section VII benchmark query, whose B side uses descendant::.)"""
        result = decompose(parse_query(Q2), Strategy.BY_VALUE)
        assert hosts(result.module) == ["A", "B"]

    def test_by_fragment_ships_both_peers(self):
        result = decompose(parse_query(Q2), Strategy.BY_FRAGMENT)
        assert hosts(result.module) == ["A", "B"]

    def test_by_fragment_b_call_parameterised_by_t(self):
        result = decompose(parse_query(Q2), Strategy.BY_FRAGMENT,
                           code_motion=False)
        b_call = next(x for x in xrpc_calls(result.module)
                      if x.dest.value == "B")
        assert [p.name for p in b_call.params] == ["t"]

    def test_code_motion_produces_fcn2new(self):
        """Table IV bottom: the person subtrees are replaced by the
        $t/child::id projection as the parameter."""
        result = decompose(parse_query(Q2), Strategy.BY_FRAGMENT)
        b_call = next(x for x in xrpc_calls(result.module)
                      if x.dest.value == "B")
        (param,) = b_call.params
        assert param.name == "t_cm1"
        assert pretty(param.value) == "data($t/child::id)"
        # The body now compares against the moved parameter.
        assert "$t_cm1" in pretty(b_call.body)

    def test_ipoints_include_root(self):
        """Example 4.2: the root vertex is always in I'(G) (the local
        fcn0); the planner skips it."""
        result = decompose(parse_query(Q2), Strategy.BY_FRAGMENT)
        assert 0 in result.ipoints
        assert all(plan.vertex != 0 for plan in result.plans)


class TestBenchmarkQuery:
    """Section VII: which parts ship under each strategy."""

    def test_by_value_pushes_only_people_path(self):
        result = decompose(parse_query(BENCHMARK_QUERY), Strategy.BY_VALUE,
                           local_host="local")
        calls = xrpc_calls(result.module)
        assert [c.dest.value for c in calls] == ["peer1"]
        body = pretty(calls[0].body)
        assert "child::person" in body
        assert "age" not in body  # the filter stays local

    def test_by_fragment_achieves_distributed_semijoin(self):
        result = decompose(parse_query(BENCHMARK_QUERY),
                           Strategy.BY_FRAGMENT, local_host="local")
        calls = xrpc_calls(result.module)
        assert sorted(c.dest.value for c in calls) == ["peer1", "peer2"]
        peer1 = next(c for c in calls if c.dest.value == "peer1")
        assert "age" in pretty(peer1.body)  # filter pushed to peer1
        peer2 = next(c for c in calls if c.dest.value == "peer2")
        assert "open_auction" in pretty(peer2.body)

    def test_code_motion_ships_ids_not_persons(self):
        result = decompose(parse_query(BENCHMARK_QUERY),
                           Strategy.BY_FRAGMENT, local_host="local")
        peer2 = next(c for c in xrpc_calls(result.module)
                     if c.dest.value == "peer2")
        (param,) = peer2.params
        assert pretty(param.value) == "data($t/attribute::id)"

    def test_by_projection_same_plan_as_fragment(self):
        fragment = decompose(parse_query(BENCHMARK_QUERY),
                             Strategy.BY_FRAGMENT, local_host="local")
        projection = decompose(parse_query(BENCHMARK_QUERY),
                               Strategy.BY_PROJECTION, local_host="local")
        assert len(fragment.plans) == len(projection.plans)


class TestPlannerRules:
    def test_local_host_documents_not_shipped(self):
        result = decompose(
            parse_query('doc("xrpc://here/d.xml")/child::a'),
            Strategy.BY_FRAGMENT, local_host="here")
        assert xrpc_calls(result.module) == []

    def test_plain_doc_without_step_not_interesting(self):
        """Example 4.2 restriction (c): a bare fn:doc() provides no
        gain — it only demands shipping a whole document."""
        result = decompose(
            parse_query('count(doc("xrpc://P/d.xml"))'),
            Strategy.BY_FRAGMENT)
        assert xrpc_calls(result.module) == []

    def test_local_documents_never_interesting(self):
        result = decompose(parse_query('doc("local.xml")/child::a'),
                           Strategy.BY_FRAGMENT)
        assert xrpc_calls(result.module) == []

    def test_multi_peer_subquery_not_shipped(self):
        # Both docs in one inseparable comparison spanning two peers:
        # placement across peers is future work, nothing ships beyond
        # the per-peer paths.
        result = decompose(parse_query(
            '(doc("xrpc://P/a.xml")/child::a, '
            'doc("xrpc://Q/b.xml")/child::b)'), Strategy.BY_FRAGMENT)
        for call in xrpc_calls(result.module):
            assert call.dest.value in ("P", "Q")

    def test_nested_points_not_double_shipped(self):
        result = decompose(parse_query(
            'doc("xrpc://P/a.xml")/child::a/child::b[child::c = 1]'),
            Strategy.BY_FRAGMENT)
        assert len(xrpc_calls(result.module)) == 1

    def test_ablation_flags(self):
        module = parse_query(BENCHMARK_QUERY)
        no_motion = decompose(module, Strategy.BY_FRAGMENT,
                              local_host="local", code_motion=False)
        peer2 = next(c for c in xrpc_calls(no_motion.module)
                     if c.dest.value == "peer2")
        assert [p.name for p in peer2.params] == ["t"]
