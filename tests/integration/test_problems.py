"""Section II end-to-end: the five semantic problem classes of
pass-by-value remote evaluation, and which message semantics repair
them.

These tests run queries with *explicit* ``execute at`` calls (the
paper's Table I setting) through the full federation stack — real
messages, real shredding — and compare against local evaluation.
"""

import pytest

from repro.decompose import Strategy
from repro.system.federation import Federation
from repro.xquery.xdm import serialize_sequence

MAKENODES = ("declare function makenodes() as node() "
             "{ <a><b><c/></b></a>/child::b };\n")

OVERLAP = ("declare function overlap($l as node(), $r as node()) "
           "as xs:boolean "
           "{ not(empty($l/descendant-or-self::node() intersect "
           "$r/descendant-or-self::node())) };\n")

EARLIER = ("declare function earlier($l as node(), $r as node()) "
           "as node() { if ($l << $r) then $l else $r };\n")


@pytest.fixture
def fed():
    federation = Federation()
    federation.add_peer("example.org")
    federation.add_peer("local")
    return federation


def run(fed, query, strategy):
    return fed.run(query, at="local", strategy=strategy)


class TestProblem1_NonDownwardSteps:
    QUERY = (MAKENODES +
             'let $bc := execute at {"example.org"} { makenodes() } '
             "return $bc/parent::a")

    def test_by_value_loses_parent(self, fed):
        result = run(fed, self.QUERY, Strategy.BY_VALUE)
        assert result.items == []  # the paper's "empty sequence"

    def test_by_fragment_also_loses_parent(self, fed):
        # The fragment only reaches up to the serialised node itself.
        result = run(fed, self.QUERY, Strategy.BY_FRAGMENT)
        assert result.items == []

    def test_by_projection_recovers_parent(self, fed):
        """Figure 5: parent::a travels as a returned projection path,
        so the response ships <a><b><c/></b></a> and $abc binds
        correctly."""
        result = run(fed, self.QUERY, Strategy.BY_PROJECTION)
        assert serialize_sequence(result.items) == "<a><b><c/></b></a>"


class TestProblem2_NodeIdentity:
    QUERY = (MAKENODES + OVERLAP +
             "let $bc := <r><s/></r>/child::s return "
             'execute at {"example.org"} { overlap($bc, $bc) }')

    def test_by_value_breaks_identity(self, fed):
        # Two copies of the same node no longer overlap: false.
        result = run(fed, self.QUERY, Strategy.BY_VALUE)
        assert result.items == [False]

    def test_by_fragment_preserves_identity(self, fed):
        result = run(fed, self.QUERY, Strategy.BY_FRAGMENT)
        assert result.items == [True]


class TestProblem3_DocumentOrder:
    QUERY = (MAKENODES + EARLIER +
             "let $abc := <a><b><c/></b></a> "
             "let $bc := $abc/child::b "
             'let $first := execute at {"example.org"} '
             "{ earlier($bc, $abc) } "
             "return deep-equal($first, $abc)")

    def test_by_value_uses_parameter_order(self, fed):
        # $bc serialises before $abc, so "earlier" picks the copy of
        # $bc — although $abc is $bc's parent.
        result = run(fed, self.QUERY, Strategy.BY_VALUE)
        assert result.items == [False]

    def test_by_fragment_preserves_order(self, fed):
        """The Figure 4 message: one fragment, both parameters as
        references — the remote << comparison sees original order."""
        result = run(fed, self.QUERY, Strategy.BY_FRAGMENT)
        assert result.items == [True]


class TestProblem4_MixedCalls:
    """Nodes returned by different calls to the same peer lose shared
    identity under by-value; Bulk RPC + fragments repair it."""

    QUERY = (
        "declare function pick($n as xs:integer) as node() "
        "{ let $t := <a><b/><b/></a> return $t/child::b[$n] };\n"
        "count((for $i in (1, 1) return "
        'execute at {"example.org"} { pick($i) }) '
        "| ())")

    def test_remote_constructed_nodes_differ_per_call(self, fed):
        # Each call constructs its own tree remotely: two distinct
        # nodes is correct here; the point is the machinery handles
        # per-iteration calls (Bulk RPC path).
        result = run(fed, self.QUERY, Strategy.BY_FRAGMENT)
        assert result.stats.messages == 2  # one bulk request + response
        assert result.items == [2]

    def test_bulk_rpc_single_interaction(self, fed):
        bulk = run(fed, self.QUERY, Strategy.BY_FRAGMENT)
        unbulk = fed.run(self.QUERY, at="local",
                         strategy=Strategy.BY_FRAGMENT, bulk_rpc=False)
        assert bulk.stats.messages == 2
        assert unbulk.stats.messages == 4  # two interactions


class TestProblem5_BuiltinFunctions:
    def test_class1_static_context_shipped(self, fed):
        query = ('declare function f() as xs:string '
                 "{ static-base-uri() };\n"
                 'execute at {"example.org"} { f() }')
        result = run(fed, query, Strategy.BY_VALUE)
        assert result.items == ["http://localhost/"]

    def test_class3_root_under_projection(self, fed):
        query = (MAKENODES +
                 'let $bc := execute at {"example.org"} { makenodes() } '
                 "return root($bc)/child::b/child::c")
        # Projection ships the whole fragment up to the root.
        result = run(fed, query, Strategy.BY_PROJECTION)
        assert serialize_sequence(result.items) == "<c/>"

    def test_current_datetime_identical_everywhere(self, fed):
        query = ('declare function f() as xs:string '
                 "{ current-dateTime() };\n"
                 'let $r := execute at {"example.org"} { f() } '
                 "return $r = current-dateTime()")
        result = run(fed, query, Strategy.BY_VALUE)
        assert result.items == [True]
