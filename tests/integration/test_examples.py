"""Examples smoke test: every script in ``examples/`` must run clean.

Each example is executed as a subprocess (the way a reader would run
it) at a tiny scale factor injected via ``REPRO_EXAMPLE_SCALE``, so
examples cannot silently rot as the library evolves.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Small enough for CI, large enough that every query has matches.
SMOKE_SCALE = "0.002"


def test_examples_are_discovered():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "sharded_cluster.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SCALE"] = SMOKE_SCALE
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, str(script)], env=env, cwd=str(REPO_ROOT),
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}")
    assert result.stdout.strip(), f"{script.name} printed nothing"
