"""The paper's equivalence criterion: Q(D) = Q'(D) under deep-equal
for every decomposition the strategies produce.

Every query in the battery is executed under all four strategies
against the same federation; all results must be deep-equal to the
data-shipping baseline (which evaluates everything locally).
"""

import pytest

from repro.decompose import Strategy
from repro.system.federation import Federation
from repro.xquery.xdm import sequences_deep_equal

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML

QUERIES = [
    # plain remote path
    'doc("xrpc://A/students.xml")/child::people/child::person/child::name',
    # predicate with value join against second remote doc
    Q2,
    # aggregation over remote data
    'count(doc("xrpc://A/students.xml")//person)',
    # existential comparison across peers
    ('some $e in doc("xrpc://B/course42.xml")//exam satisfies '
     '$e/@id = "s1"'),
    # constructor wrapping remote nodes
    ('element all { doc("xrpc://A/students.xml")//name }'),
    # order by over remote data
    ('for $p in doc("xrpc://A/students.xml")//person '
     "order by $p/name descending return $p/id"),
    # union across both peers
    ('(doc("xrpc://A/students.xml")//name union '
     'doc("xrpc://B/course42.xml")//grade)'),
    # nested FLWOR with arithmetic
    ('for $e in doc("xrpc://B/course42.xml")//exam '
     "let $g := $e/grade return if (count($g) > 0) then $e/@id else ()"),
    # reverse axis on remote data (only projection may decompose)
    ('doc("xrpc://A/students.xml")//tutor/parent::person/id'),
    # quantified + string functions
    ('for $p in doc("xrpc://A/students.xml")//person '
     'where starts-with($p/name, "A") return $p/name'),
]


@pytest.fixture(scope="module")
def federation():
    fed = Federation()
    fed.add_peer("A").store("students.xml", STUDENTS_XML)
    fed.add_peer("B").store("course42.xml", COURSE_XML)
    fed.add_peer("local")
    return fed


@pytest.mark.parametrize("query", QUERIES)
def test_all_strategies_deep_equal(federation, query):
    baseline = federation.run(query, at="local",
                              strategy=Strategy.DATA_SHIPPING)
    for strategy in (Strategy.BY_VALUE, Strategy.BY_FRAGMENT,
                     Strategy.BY_PROJECTION):
        result = federation.run(query, at="local", strategy=strategy)
        assert sequences_deep_equal(baseline.items, result.items), (
            f"{strategy.value} diverges on {query!r}: "
            f"{baseline.items!r} vs {result.items!r}")


@pytest.mark.parametrize("query", QUERIES[:4])
def test_ablations_preserve_equivalence(federation, query):
    baseline = federation.run(query, at="local",
                              strategy=Strategy.DATA_SHIPPING)
    for kwargs in ({"bulk_rpc": False}, {"code_motion": False},
                   {"let_sinking": False}):
        result = federation.run(query, at="local",
                                strategy=Strategy.BY_FRAGMENT, **kwargs)
        assert sequences_deep_equal(baseline.items, result.items), kwargs


def test_property_random_documents():
    """Property-style: random student rosters must give deep-equal
    results across strategies (node identity exercised by the join)."""
    from hypothesis import given, settings, strategies as st

    @st.composite
    def rosters(draw):
        count = draw(st.integers(2, 6))
        persons = []
        for index in range(count):
            tutor = draw(st.integers(0, count - 1))
            persons.append(
                f"<person><name>n{index}</name>"
                f"<tutor>n{tutor}</tutor><id>s{index}</id></person>")
        exams = "".join(
            f'<exam id="s{draw(st.integers(0, count - 1))}">'
            f"<grade>g{i}</grade></exam>"
            for i in range(draw(st.integers(1, 5))))
        return (f"<people>{''.join(persons)}</people>",
                f"<enroll>{exams}</enroll>")

    @given(rosters())
    @settings(max_examples=15, deadline=None)
    def check(pair):
        students, course = pair
        fed = Federation()
        fed.add_peer("A").store("students.xml", students)
        fed.add_peer("B").store("course42.xml", course)
        fed.add_peer("local")
        baseline = fed.run(Q2, at="local",
                           strategy=Strategy.DATA_SHIPPING)
        for strategy in (Strategy.BY_VALUE, Strategy.BY_FRAGMENT,
                         Strategy.BY_PROJECTION):
            result = fed.run(Q2, at="local", strategy=strategy)
            assert sequences_deep_equal(baseline.items, result.items)

    check()
