"""The Section VII benchmark at small scale: correctness plus the
orderings the paper's Figures 7-9 report."""

import pytest

from repro.decompose import Strategy
from repro.workloads import run_all_strategies
from repro.xquery.xdm import sequences_deep_equal

SCALE = 0.004


@pytest.fixture(scope="module")
def runs():
    return run_all_strategies(SCALE)


def test_all_strategies_agree(runs):
    baseline = runs[Strategy.DATA_SHIPPING].result.items
    assert len(baseline) > 0, "workload produced an empty result"
    for strategy, run in runs.items():
        assert sequences_deep_equal(baseline, run.result.items), \
            strategy.value


def test_figure7_bandwidth_ordering(runs):
    transferred = {s: r.stats.total_transferred_bytes
                   for s, r in runs.items()}
    assert transferred[Strategy.BY_VALUE] < \
        transferred[Strategy.DATA_SHIPPING]
    assert transferred[Strategy.BY_FRAGMENT] < \
        transferred[Strategy.BY_VALUE]
    assert transferred[Strategy.BY_PROJECTION] < \
        transferred[Strategy.BY_FRAGMENT]


def test_figure8_shred_dominates_data_shipping(runs):
    times = runs[Strategy.DATA_SHIPPING].stats.times
    assert times.shred > times.serialize
    assert times.shred > times.remote_exec
    # Fragment/projection eliminate document shredding entirely.
    assert runs[Strategy.BY_FRAGMENT].stats.times.shred == 0.0


def test_figure9_time_ordering(runs):
    totals = {s: r.stats.times.total for s, r in runs.items()}
    assert totals[Strategy.BY_FRAGMENT] < totals[Strategy.DATA_SHIPPING]
    assert totals[Strategy.BY_PROJECTION] < totals[Strategy.BY_FRAGMENT]


def test_fragment_and_projection_ship_no_documents(runs):
    for strategy in (Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION):
        assert runs[strategy].stats.document_bytes == 0


def test_by_value_still_ships_auctions_document(runs):
    # Only the people path is decomposable by value; the auctions doc
    # data-ships (its path uses descendant::, condition iii).
    stats = runs[Strategy.BY_VALUE].stats
    assert stats.documents_shipped == 1
    assert stats.messages == 2


def test_message_counts(runs):
    assert runs[Strategy.DATA_SHIPPING].stats.messages == 0
    assert runs[Strategy.BY_FRAGMENT].stats.messages == 4  # two calls
