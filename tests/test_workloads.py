"""The shared Section VII workload module."""

from repro.decompose import Strategy
from repro.workloads import (
    BENCHMARK_QUERY, DEFAULT_SCALES, build_federation, document_bytes,
    run_all_strategies, run_strategy,
)


def test_build_federation_has_three_peers():
    federation = build_federation(0.002)
    assert set(federation.peers) == {"peer1", "peer2", "local"}
    assert document_bytes(federation) > 0


def test_benchmark_query_produces_authors():
    federation = build_federation(0.004)
    run = run_strategy(federation, Strategy.DATA_SHIPPING, 0.004)
    assert run.result.items, "benchmark result must be non-empty"
    assert all(item.name == "author" for item in run.result.items)


def test_run_all_strategies_covers_all_four():
    runs = run_all_strategies(0.002)
    assert set(runs) == set(Strategy)
    for run in runs.values():
        assert run.total_document_bytes > 0


def test_default_scales_are_geometric():
    ratios = [b / a for a, b in zip(DEFAULT_SCALES, DEFAULT_SCALES[1:])]
    assert all(abs(r - 2.0) < 1e-9 for r in ratios)


def test_benchmark_query_text_mentions_both_peers():
    assert "xrpc://peer1/" in BENCHMARK_QUERY
    assert "xrpc://peer2/" in BENCHMARK_QUERY
