"""URI dependency sets D(v) and document-conflict predicates."""

from repro.dgraph.analysis import (
    DocDep, has_duplicate_doc, matching_doc_conflict, uri_dependencies,
)
from repro.dgraph.graph import build_dgraph
from repro.xquery.parser import parse_query


class TestDocDep:
    def test_exact_match(self):
        assert DocDep("u", 1).matches(DocDep("u", 2))
        assert not DocDep("u", 1).matches(DocDep("v", 2))

    def test_wildcard_matches_everything(self):
        assert DocDep("*", 1).matches(DocDep("u", 2))
        assert DocDep("u", 1).matches(DocDep("*", 2))


class TestUriDependencies:
    def test_literal_uri_extracted(self):
        graph = build_dgraph(parse_query('doc("xrpc://A/d.xml")/child::a'))
        deps = uri_dependencies(graph, 0)
        assert {d.uri for d in deps} == {"xrpc://A/d.xml"}

    def test_computed_uri_is_wildcard(self):
        graph = build_dgraph(parse_query('doc(concat("a", "b"))'))
        deps = uri_dependencies(graph, 0)
        assert {d.uri for d in deps} == {"*"}

    def test_collection_is_wildcard(self):
        graph = build_dgraph(parse_query('collection("c")'))
        assert {d.uri for d in uri_dependencies(graph, 0)} == {"*"}

    def test_constructor_gets_artificial_uri(self):
        graph = build_dgraph(parse_query("element a { 1 }"))
        deps = uri_dependencies(graph, 0)
        assert len(deps) == 1
        assert next(iter(deps)).uri.startswith("constructed:")

    def test_scoped_to_parse_subgraph(self):
        graph = build_dgraph(parse_query(
            'let $a := doc("u") return doc("v")'))
        let_vertex = next(v for v in graph.vertices if v.rule == "LetExpr")
        var_vertex = next(v for v in graph.vertices if v.rule == "Var")
        assert len(uri_dependencies(graph, let_vertex.vid)) == 2
        assert {d.uri for d in uri_dependencies(graph, var_vertex.vid)} \
            == {"u"}

    def test_call_sites_distinguished(self):
        graph = build_dgraph(parse_query('(doc("u"), doc("u"))'))
        deps = uri_dependencies(graph, 0)
        assert len(deps) == 2  # same URI, two vertices


class TestDuplicateDoc:
    def test_same_uri_two_sites(self):
        graph = build_dgraph(parse_query('(doc("u"), doc("u"))'))
        assert has_duplicate_doc(uri_dependencies(graph, 0))

    def test_different_uris_fine(self):
        graph = build_dgraph(parse_query('(doc("u"), doc("v"))'))
        assert not has_duplicate_doc(uri_dependencies(graph, 0))

    def test_wildcard_conflicts_with_anything(self):
        graph = build_dgraph(parse_query('(doc("u"), doc(concat("u","")))'))
        assert has_duplicate_doc(uri_dependencies(graph, 0))

    def test_single_site_never_conflicts(self):
        graph = build_dgraph(parse_query('doc("u")/child::a'))
        assert not has_duplicate_doc(uri_dependencies(graph, 0))


class TestMatchingDocConflict:
    def test_conflict_across_boundary(self):
        # The sequence mixes the candidate's doc("u") with another
        # doc("u") call site outside it.
        graph = build_dgraph(parse_query(
            '(doc("u")/child::a, doc("u")/child::b)/child::c'))
        top_step = graph[0]
        assert top_step.rule == "AxisStep"
        inner = next(v for v in graph.vertices
                     if v.rule == "AxisStep" and v.val == "child::a")
        assert matching_doc_conflict(graph, top_step.vid, inner.vid)

    def test_no_conflict_when_docs_differ(self):
        graph = build_dgraph(parse_query(
            '(doc("u")/child::a, doc("v")/child::b)/child::c'))
        inner = next(v for v in graph.vertices
                     if v.rule == "AxisStep" and v.val == "child::a")
        assert not matching_doc_conflict(graph, 0, inner.vid)

    def test_no_conflict_when_both_inside(self):
        # Two applications of the same doc *inside* the candidate run
        # on one peer in one call: harmless.
        graph = build_dgraph(parse_query(
            '(doc("u")/child::a, doc("u")/child::b)'))
        seq_vertex = graph[0]
        assert seq_vertex.rule == "ExprSeq"
        assert not matching_doc_conflict(graph, 0, 0)
