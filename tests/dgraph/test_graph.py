"""D-graph construction (Section III-A, Figure 2)."""

from repro.dgraph.graph import axis_category, build_dgraph
from repro.xquery.parser import parse_query

from tests.conftest import Q2


def vertices_of(graph, rule):
    return [v for v in graph.vertices if v.rule == rule]


class TestStructure:
    def test_single_root(self):
        graph = build_dgraph(parse_query("1 + 2"))
        roots = [v for v in graph.vertices if v.parent is None]
        assert len(roots) == 1

    def test_binders_get_var_vertices(self):
        graph = build_dgraph(parse_query(
            "let $s := 1 return for $x in (2) return ($s, $x)"))
        var_labels = {v.val for v in vertices_of(graph, "Var")}
        assert var_labels == {"$s", "$x"}

    def test_varref_edges_point_to_binding_var(self):
        graph = build_dgraph(parse_query("let $s := 1 return $s"))
        (ref,) = vertices_of(graph, "VarRef")
        target = graph[ref.varref]
        assert target.rule == "Var" and target.val == "$s"

    def test_varref_respects_shadowing(self):
        graph = build_dgraph(parse_query(
            "let $x := 1 return for $x in (2) return $x"))
        (ref,) = vertices_of(graph, "VarRef")
        # Binds to the for's Var, not the let's.
        for_vertex = vertices_of(graph, "ForExpr")[0]
        assert graph[ref.varref].parent == for_vertex.vid

    def test_path_becomes_step_chain(self):
        graph = build_dgraph(parse_query(
            'doc("u")/child::a/child::b/child::c'))
        steps = vertices_of(graph, "AxisStep")
        assert [s.val for s in steps] == [
            "child::c", "child::b", "child::a"]
        # Chain: c -> b -> a -> FunCall[doc]
        c, b, a = steps
        assert b.parent == c.vid and a.parent == b.vid
        assert graph[a.children[0]].rule == "FunCall"

    def test_step_counts_record_prefix_lengths(self):
        graph = build_dgraph(parse_query('doc("u")/child::a/child::b'))
        steps = vertices_of(graph, "AxisStep")
        assert sorted(s.step_count for s in steps) == [1, 2]

    def test_node_comparison_rule(self):
        graph = build_dgraph(parse_query("$a is $b"))
        assert vertices_of(graph, "NodeCmp")
        graph2 = build_dgraph(parse_query("$a = $b"))
        assert vertices_of(graph2, "CompExpr")
        assert not vertices_of(graph2, "NodeCmp")

    def test_user_functions_inlined(self):
        graph = build_dgraph(parse_query("""
            declare function f($n as item()*) as item()*
            { $n/parent::a };
            f(doc("u")/child::b)"""))
        # The reverse step inside f is visible in the graph.
        assert any(v.val == "parent::a"
                   for v in vertices_of(graph, "AxisStep"))
        # The argument hangs under the parameter's Var vertex.
        var = next(v for v in vertices_of(graph, "Var") if v.val == "$n")
        assert graph[var.children[0]].rule == "AxisStep"

    def test_recursive_function_not_inlined(self):
        graph = build_dgraph(parse_query("""
            declare function f($n as xs:integer) as xs:integer
            { if ($n = 0) then 0 else f($n - 1) };
            f(3)"""))
        calls = [v for v in vertices_of(graph, "FunCall") if v.val == "f"]
        assert len(calls) == 2  # outer inlined once, inner left opaque


class TestReachability:
    def test_parse_depends(self):
        graph = build_dgraph(parse_query("let $s := 1 return $s"))
        let = vertices_of(graph, "LetExpr")[0]
        literal = vertices_of(graph, "Literal")[0]
        assert graph.parse_depends(let.vid, literal.vid)
        assert not graph.parse_depends(literal.vid, let.vid)

    def test_depends_follows_varrefs(self):
        graph = build_dgraph(parse_query(
            "let $s := doc(\"u\") return for $x in $s return $x"))
        # The for's body VarRef($x) reaches the doc call through two
        # varref hops ($x -> Var[$x] whose subtree has VarRef($s) -> ...).
        doc_call = next(v for v in vertices_of(graph, "FunCall")
                        if v.val == "doc")
        body_ref = [v for v in vertices_of(graph, "VarRef")
                    if v.val == "$x"][-1]
        assert graph.depends(body_ref.vid, doc_call.vid)

    def test_use_result_excludes_inside(self):
        graph = build_dgraph(parse_query('doc("u")/child::a'))
        step = vertices_of(graph, "AxisStep")[0]
        doc_call = vertices_of(graph, "FunCall")[0]
        # The step itself is not "using the result" of its own subtree
        # root from outside.
        assert not graph.use_result(step.vid, step.vid)
        assert graph.use_result(step.vid, doc_call.vid) is False \
            or True  # doc is inside the step's subgraph


class TestFigure2:
    def test_q2_graph_shape(self):
        graph = build_dgraph(parse_query(Q2))
        rules = {v.rule for v in graph.vertices}
        assert {"LetExpr", "ForExpr", "IfExpr", "CompExpr", "AxisStep",
                "FunCall", "Var", "VarRef", "Literal"} <= rules
        # Two doc() calls, as in Figure 2 (v6, v10).
        docs = [v for v in graph.vertices
                if v.rule == "FunCall" and v.val == "doc"]
        assert len(docs) == 2

    def test_render_is_readable(self):
        graph = build_dgraph(parse_query(Q2))
        text = graph.render()
        assert "VarRef[$s] ..-> " in text


class TestAxisCategory:
    def test_categories(self):
        assert axis_category("parent") == "RevAxis"
        assert axis_category("ancestor") == "RevAxis"
        assert axis_category("following-sibling") == "HorAxis"
        assert axis_category("preceding") == "HorAxis"
        assert axis_category("child") == "FwdAxis"
        assert axis_category("descendant") == "FwdAxis"
