"""Shared fixtures: canonical documents and federations."""

from __future__ import annotations

import pytest

from repro.system.federation import Federation
from repro.xmldb.parser import parse_document, parse_fragment

#: The abstract tree of the paper's Figure 6 (runtime projection).
FIG6_XML = ("<a><b><c><d><e/><f/></d></c>"
            "<g><h><i/></h><j><k><l/><m/></k><n/></j></g><o/></b></a>")

#: Students/course pair used by Table III/IV tests (query Q2).
STUDENTS_XML = """<people>
 <person><name>Ann</name><tutor>Bob</tutor><id>s1</id></person>
 <person><name>Bob</name><id>s2</id></person>
 <person><name>Col</name><tutor>Zed</tutor><id>s3</id></person>
 <person><name>Dot</name><tutor>Ann</tutor><id>s4</id></person>
</people>"""

COURSE_XML = """<enroll>
 <exam id="s2"><grade>A</grade></exam>
 <exam id="s1"><grade>B</grade></exam>
 <exam id="s3"><grade>C</grade></exam>
 <exam id="s4"><grade>D</grade></exam>
</enroll>"""

#: Table III's query Q2 (original, sugared form).
Q2 = """
(let $s := doc("xrpc://A/students.xml")/child::people/child::person,
     $c := doc("xrpc://B/course42.xml"),
     $t := $s[tutor = $s/name]
 for $e in $c/enroll/exam
 where $e/@id = $t/id
 return $e)/grade
"""


@pytest.fixture
def fig6_doc():
    return parse_fragment(FIG6_XML, uri="fig6.xml")


@pytest.fixture
def simple_doc():
    return parse_document(
        '<a x="1" y="2"><b><c/>text</b><d>hi</d><!--note--><e/></a>',
        uri="simple.xml")


@pytest.fixture
def q2_federation():
    """Three peers hosting the Table III documents."""
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


def find_by_name(doc, name: str):
    """First node with the given element name (test helper)."""
    for node in doc.nodes():
        if node.name == name:
            return node
    raise AssertionError(f"no node named {name!r}")
