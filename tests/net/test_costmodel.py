"""Cost model and run-statistics accounting."""

from repro.net.costmodel import CostModel
from repro.net.stats import RunStats, TimeBreakdown


class TestCostModel:
    def test_network_time_has_latency_floor(self):
        model = CostModel()
        assert model.network_time(0) == model.latency_s
        assert model.network_time(125_000_000) > 1.0

    def test_costs_scale_linearly(self):
        model = CostModel()
        assert model.shred_time(2000) == 2 * model.shred_time(1000)
        assert model.serialize_time(2000) == 2 * model.serialize_time(1000)

    def test_shredding_costlier_than_serialising(self):
        model = CostModel()
        assert model.shred_s_per_byte > model.serialize_s_per_byte

    def test_exec_time_counts_both_components(self):
        model = CostModel()
        assert model.exec_time(10, 0) == 10 * model.tick_s
        assert model.exec_time(0, 10) == 10 * model.node_visit_s

    def test_replace_overrides_fields(self):
        model = CostModel()
        slow = model.replace(bandwidth_bytes_per_s=1e6, latency_s=0.01)
        assert slow.bandwidth_bytes_per_s == 1e6
        assert slow.latency_s == 0.01
        # Untouched fields carry over; the original is unchanged.
        assert slow.shred_s_per_byte == model.shred_s_per_byte
        assert model.latency_s == 0.3e-3

    def test_replace_rejects_unknown_fields(self):
        import pytest

        with pytest.raises(TypeError, match="bandwidth_bytes_per_s"):
            CostModel().replace(bandwith=1.0)


class TestRunStats:
    def test_total_transferred_combines_docs_and_messages(self):
        stats = RunStats()
        stats.record_document_shipped(1000)
        stats.record_message(200)
        stats.record_message(300)
        assert stats.total_transferred_bytes == 1500
        assert stats.documents_shipped == 1
        assert stats.messages == 2

    def test_breakdown_totals(self):
        times = TimeBreakdown(shred=1, local_exec=2, serialize=3,
                              remote_exec=4, network=5)
        assert times.total == 15
        assert set(times.as_dict()) == {
            "shred", "local exec", "(de)serialize", "remote exec",
            "network"}

    def test_summary_keys(self):
        summary = RunStats().summary()
        assert "total_transferred_bytes" in summary
        assert "times" in summary
