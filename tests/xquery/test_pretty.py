"""Pretty-printer tests: output must re-parse to the same semantics."""

import pytest

from repro.xquery.parser import parse_expr, parse_query
from repro.xquery.pretty import pretty

from tests.xquery.helpers import run

CORPUS = [
    "1 + 2 * 3",
    "(1, 2, 3)",
    "for $x in (1, 2) return $x * $x",
    "let $x := 5 return if ($x > 3) then $x else ()",
    'doc("u")/child::a/descendant::b[2]',
    "some $x in (1, 2) satisfies $x = 2",
    "for $x in (3, 1) order by $x descending return $x",
    "$a union $b intersect $c",
    "typeswitch (1) case xs:integer return 1 default return 2",
    'element res { attribute x { "1" }, "body" }',
    "1 to 5",
    "-(2 + 3)",
    "count((1, 2)) = 2",
    'execute at {"p"} function ($a := $b) { $a/child::c }',
]


@pytest.mark.parametrize("query", CORPUS)
def test_roundtrip_reparses(query):
    text = pretty(parse_expr(query))
    reparsed = parse_expr(text)
    assert pretty(reparsed) == text  # fixpoint after one round


@pytest.mark.parametrize("query", [
    "1 + 2 * 3",
    "(2 + 1) * 3",
    "for $x in (1, 2) return $x + 1",
    "let $x := 2 return $x * $x",
    "for $x in (3, 1, 2) order by $x return $x",
    "if (1 < 2) then \"y\" else \"n\"",
    "some $x in (1, 2, 3) satisfies $x = 3",
])
def test_roundtrip_preserves_semantics(query):
    assert run(pretty(parse_expr(query))) == run(query)


def test_module_with_functions():
    module = parse_query("""
        declare function local:f($x as xs:integer) as xs:integer
        { $x + 1 };
        local:f(1)""")
    text = pretty(module)
    assert "declare function local:f" in text
    reparsed = parse_query(text)
    assert reparsed.function("local:f", 1) is not None


def test_precedence_preserved_by_parens():
    # (1 + 2) * 3 must not re-render as 1 + 2 * 3.
    expr = parse_expr("(1 + 2) * 3")
    assert run(pretty(expr)) == [9]
