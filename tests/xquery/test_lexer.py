"""Tokenizer unit tests."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.lexer import Lexer, TokenType


def tokens(text):
    lexer = Lexer(text)
    out = []
    while True:
        token = lexer.next()
        if token.type == TokenType.END:
            return out
        out.append(token)


class TestBasics:
    def test_names_and_symbols(self):
        out = tokens("for $x in doc")
        assert [t.type for t in out] == [
            TokenType.NAME, TokenType.VARIABLE, TokenType.NAME,
            TokenType.NAME]

    def test_variable_name(self):
        (token,) = tokens("$course-name")
        assert token.type == TokenType.VARIABLE
        assert token.text == "course-name"

    def test_qname_with_prefix(self):
        (token,) = tokens("fn:doc")
        assert token.text == "fn:doc"

    def test_axis_separator_not_swallowed(self):
        out = tokens("child::person")
        assert [t.text for t in out] == ["child", "::", "person"]

    def test_numbers(self):
        out = tokens("42 3.14 1e3 2.5E-2")
        assert [t.type for t in out] == [
            TokenType.INTEGER, TokenType.DOUBLE, TokenType.DOUBLE,
            TokenType.DOUBLE]
        assert out[0].value == 42
        assert out[1].value == pytest.approx(3.14)

    def test_integer_then_range(self):
        out = tokens("1 to 5")
        assert [t.text for t in out] == ["1", "to", "5"]

    def test_strings_with_escapes(self):
        out = tokens('"say ""hi""" \'it\'\'s\'')
        assert out[0].value == 'say "hi"'
        assert out[1].value == "it's"

    def test_multichar_symbols(self):
        out = tokens("<< >> != <= >= := // ::")
        assert [t.text for t in out] == [
            "<<", ">>", "!=", "<=", ">=", ":=", "//", "::"]

    def test_comments_skipped(self):
        out = tokens("a (: comment (: nested :) :) b")
        assert [t.text for t in out] == ["a", "b"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            tokens('"open')

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            tokens("(: open")

    def test_bad_variable(self):
        with pytest.raises(XQuerySyntaxError):
            tokens("$ 1")

    def test_offsets_recorded(self):
        out = tokens("ab   cd")
        assert out[0].offset == 0
        assert out[1].offset == 5


class TestReset:
    def test_reset_repositions(self):
        lexer = Lexer("one two three")
        lexer.next()
        lexer.peek(1)  # fill buffer
        lexer.reset(4)
        assert lexer.next().text == "two"
