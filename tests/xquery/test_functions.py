"""Built-in function library tests, organised by Problem 5 class
where relevant."""

import math

import pytest

from repro.errors import XQueryDynamicError
from repro.xquery.xdm import UntypedAtomic

from tests.xquery.helpers import run, run1

DOC = '<r><a id="a1">x</a><b idref="a1">y</b><c>z</c></r>'


class TestSequences:
    def test_count_empty_exists(self):
        assert run1("count((1, 2, 3))") == 3
        assert run1("empty(())") is True
        assert run1("exists((1))") is True

    def test_distinct_values(self):
        assert run('distinct-values((1, 2, 1, "x", "x"))') == [1, 2, "x"]

    def test_reverse(self):
        assert run("reverse((1, 2, 3))") == [3, 2, 1]

    def test_subsequence(self):
        assert run("subsequence((1, 2, 3, 4), 2)") == [2, 3, 4]
        assert run("subsequence((1, 2, 3, 4), 2, 2)") == [2, 3]

    def test_index_of(self):
        assert run("index-of((10, 20, 10), 10)") == [1, 3]

    def test_insert_before_remove(self):
        assert run("insert-before((1, 3), 2, 2)") == [1, 2, 3]
        assert run("remove((1, 2, 3), 2)") == [1, 3]

    def test_cardinality_checks(self):
        assert run1("exactly-one((5))") == 5
        with pytest.raises(XQueryDynamicError):
            run("exactly-one((1, 2))")
        with pytest.raises(XQueryDynamicError):
            run("zero-or-one((1, 2))")
        with pytest.raises(XQueryDynamicError):
            run("one-or-more(())")


class TestStrings:
    def test_concat_and_join(self):
        assert run1('concat("a", "b", "c")') == "abc"
        assert run1('string-join(("a", "b"), "-")') == "a-b"

    def test_contains_family(self):
        assert run1('contains("hello", "ell")') is True
        assert run1('starts-with("hello", "he")') is True
        assert run1('ends-with("hello", "lo")') is True

    def test_substring(self):
        assert run1('substring("hello", 2, 3)') == "ell"
        assert run1('substring-before("a=b", "=")') == "a"
        assert run1('substring-after("a=b", "=")') == "b"

    def test_normalize_case(self):
        assert run1('normalize-space("  a   b ")') == "a b"
        assert run1('upper-case("ab")') == "AB"
        assert run1('lower-case("AB")') == "ab"

    def test_string_of_node(self):
        assert run1('string(doc("d")/r/a)', {"d": DOC}) == "x"

    def test_string_length_translate(self):
        assert run1('string-length("abc")') == 3
        assert run1('translate("abc", "ab", "BA")') == "BAc"

    def test_data_atomizes(self):
        result = run('data(doc("d")/r/a)', {"d": DOC})
        assert result == [UntypedAtomic("x")]


class TestNumbers:
    def test_aggregates(self):
        assert run1("sum((1, 2, 3))") == 6
        assert run1("avg((2, 4))") == 3
        assert run1("max((1, 5, 3))") == 5
        assert run1("min((4, 2))") == 2
        assert run1("sum(())") == 0
        assert run("avg(())") == []

    def test_rounding(self):
        assert run1("floor(2.7)") == 2
        assert run1("ceiling(2.1)") == 3
        assert run1("round(2.5)") == 3
        assert run1("abs(-4)") == 4

    def test_number_of_garbage_is_nan(self):
        assert math.isnan(run1('number("zz")'))


class TestBooleans:
    def test_not_boolean(self):
        assert run1("not(())") is True
        assert run1("boolean((0))") is False
        assert run1("fn:true()") is True

    def test_deep_equal(self):
        assert run1("deep-equal(<a><b/></a>, <a><b/></a>)") is True
        assert run1("deep-equal(<a/>, <b/>)") is False
        assert run1("deep-equal((1, 2), (1, 2))") is True


class TestNames:
    def test_name_functions(self):
        assert run1('name(doc("d")/r/a)', {"d": DOC}) == "a"
        assert run1('local-name(doc("d")/r/a)', {"d": DOC}) == "a"


class TestProblem5Class1:
    """Static-context functions (shipped in the message envelope)."""

    def test_static_base_uri(self):
        assert run1("static-base-uri()") == "http://localhost/"

    def test_default_collation(self):
        assert "collation" in run1("default-collation()")

    def test_current_datetime_fixed(self):
        assert run1("current-dateTime()") == "2009-03-29T12:00:00Z"


class TestProblem5Class2:
    """Dynamic node-context functions."""

    def test_base_uri(self):
        assert run1('base-uri(doc("d")/r)', {"d": DOC}) == "d"

    def test_document_uri_on_document_node(self):
        assert run1('document-uri(doc("d"))', {"d": DOC}) == "d"

    def test_document_uri_on_element_empty(self):
        assert run('document-uri(doc("d")/r)', {"d": DOC}) == []

    def test_xrpc_wrappers_alias(self):
        assert run1('xrpc:base-uri(doc("d")/r)', {"d": DOC}) == "d"


class TestProblem5Classes34:
    """Non-descendant functions: root / id / idref (condition iv)."""

    def test_root(self):
        assert run1('root(doc("d")/r/a) is doc("d")', {"d": DOC}) is True

    def test_root_of_constructed(self):
        assert run1("let $a := <a><b/></a> return root($a/b) is $a") is True

    def test_id(self):
        result = run1('id("a1", doc("d"))', {"d": DOC})
        assert result.name == "a"

    def test_idref(self):
        result = run('idref("a1", doc("d"))', {"d": DOC})
        assert [n.name for n in result] == ["b"]
