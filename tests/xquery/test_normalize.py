"""Let-sinking normalisation (Section IV), including the Table III
Qc2 -> Qn2 rewrite."""

from repro.xquery.ast import ForExpr, LetExpr, PathExpr
from repro.xquery.normalize import normalize, sink_lets
from repro.xquery.parser import parse_expr, parse_query
from repro.xquery.pretty import pretty
from repro.xquery.scopes import count_references, free_variables

from tests.conftest import Q2
from tests.xquery.helpers import run


class TestTable3:
    def test_q2_normalises_to_qn2_shape(self):
        """The paper's Qn2: $t's let stays above the for-loop, $c's
        let sinks into the for's sequence, $s's let sinks into $t's
        value."""
        module = normalize(parse_query(Q2))
        text = pretty(module)
        # The outer shape: (let $t := (let $s := ...) return for ...)
        assert text.startswith("(let $t := (let $s := doc(")
        # $c sank into the for sequence, directly wrapping its path.
        assert 'for $e in (let $c := doc("xrpc://B/course42.xml") ' \
               "return $c/child::enroll/child::exam)" in text

    def test_normalised_query_evaluates_identically(self, q2_federation):
        from repro.decompose import Strategy

        plain = q2_federation.run(Q2, at="local",
                                  strategy=Strategy.DATA_SHIPPING,
                                  let_sinking=False)
        sunk = q2_federation.run(Q2, at="local",
                                 strategy=Strategy.DATA_SHIPPING,
                                 let_sinking=True)
        from repro.xquery.xdm import sequences_deep_equal

        assert sequences_deep_equal(plain.items, sunk.items)
        assert len(plain.items) > 0


class TestSinking:
    def test_sinks_into_single_use_branch(self):
        expr = sink_lets(parse_expr(
            "let $x := 1 return if (2) then $x else 9"))
        assert not isinstance(expr, LetExpr)  # moved inside the branch
        assert "then (let $x := 1 return $x)" in pretty(expr)

    def test_stays_above_multiple_uses(self):
        expr = sink_lets(parse_expr("let $x := 1 return ($x, $x)"))
        assert isinstance(expr, LetExpr)

    def test_never_sinks_into_loop_body(self):
        expr = sink_lets(parse_expr(
            "let $x := 1 return for $y in (1, 2) return $x + $y"))
        assert isinstance(expr, LetExpr)
        assert isinstance(expr.body, ForExpr)

    def test_sinks_into_loop_sequence(self):
        expr = sink_lets(parse_expr(
            "let $x := (1, 2) return for $y in $x return $y"))
        assert isinstance(expr, ForExpr)
        assert isinstance(expr.seq, LetExpr)

    def test_stays_above_path(self):
        expr = sink_lets(parse_expr(
            'let $c := doc("u") return $c/child::a'))
        assert isinstance(expr, LetExpr)
        assert isinstance(expr.body, PathExpr)

    def test_dead_let_dropped(self):
        expr = sink_lets(parse_expr("let $x := 1 return 2"))
        assert pretty(expr) == "2"

    def test_no_capture_through_binder(self):
        # $y is free in the let value; pushing below "for $y" would
        # capture it.
        expr = sink_lets(parse_expr(
            "let $y := 10 return "
            "let $x := $y return for $y in (1, 2) return ($y, $x)"))
        # $x's let must not enter the for body.
        text = pretty(expr)
        assert "for $y in (1, 2) return ($y, (let" not in text

    def test_semantics_preserved_on_samples(self):
        queries = [
            "let $x := (1, 2) return for $y in $x return $y * 2",
            "let $a := 1 return let $b := $a + 1 return ($b, $b)",
            "let $x := <n>5</n> return for $i in (1, 2) return $x",
        ]
        for query in queries:
            module = parse_query(query)
            plain = run(query)
            sunk_text = pretty(normalize(module))
            assert run(sunk_text) == plain or \
                len(run(sunk_text)) == len(plain)

    def test_constructor_never_duplicated_into_iteration(self):
        # Even in the seq position this is fine, but the cond of a
        # quantifier re-evaluates: the constructor must stay outside.
        expr = sink_lets(parse_expr(
            "let $n := <a/> return some $x in (1, 2) satisfies $n is $n"))
        assert isinstance(expr, LetExpr)


class TestScopes:
    def test_count_references_respects_shadowing(self):
        expr = parse_expr("($x, for $x in (1) return $x)")
        assert count_references(expr, "x") == 1

    def test_free_variables(self):
        expr = parse_expr("for $a in $b return ($a, $c)")
        assert free_variables(expr) == {"b", "c"}

    def test_xrpc_body_is_isolated(self):
        expr = parse_expr(
            'execute at {"p"} function ($q := $r) { $q/child::a }')
        assert free_variables(expr) == {"r"}
