"""Compiled predicates & hash joins must be indistinguishable from the
naive walker.

Four layers:

* hypothesis property — on random trees with value-bearing leaves and
  attributes, every comparison operator × predicate shape (child /
  attribute / descendant / ``.`` selectors, string and numeric
  literals, variable right-hand sides) yields identical results
  through the compiled set-at-a-time pipeline and the naive
  per-candidate evaluation;
* query battery — predicate and FLWOR-join queries agree end-to-end on
  the library document, including mixed-type edge cases that force the
  hash matcher's exact-fallback path;
* corpora — the library and XMark federations give deep-equal results
  for predicate/join queries under all four fixed strategies plus
  ``auto``, against a naive-engine baseline;
* invalidation — an in-place store mutation plus ``invalidate_caches``
  rebuilds the value index (results change accordingly and keep
  matching the naive engine); a ``Peer.store`` swap re-plans too.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.decompose import Strategy
from repro.workloads import build_federation
from repro.xmldb.document import DocumentBuilder
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator, set_default_use_index
from repro.xquery.parser import parse_query
from repro.xquery.xdm import sequences_deep_equal

from tests.conftest import COURSE_XML, STUDENTS_XML

_tags = st.sampled_from(["a", "b", "c"])
_values = st.sampled_from(
    ["", "1", "7", "40", "07", "x", "ya", "3.5", "-2", "nan", "b", " 7 "])


@st.composite
def value_trees(draw, depth=3):
    builder = DocumentBuilder("prop.xml")

    def element(level: int) -> None:
        builder.start_element(draw(_tags))
        for index in range(draw(st.integers(0, 2))):
            builder.attribute(f"at{index}", draw(_values))
        for _ in range(draw(st.integers(0, 3 if level < depth else 0))):
            if draw(st.booleans()) and level < depth:
                element(level + 1)
            else:
                builder.text(draw(_values))
        builder.end_element()

    element(0)
    return builder.finish()


def keys(items):
    out = []
    for item in items:
        if hasattr(item, "pre"):
            out.append((id(item.doc), item.pre))
        else:
            out.append(item)
    return out


def assert_query_agrees(query, doc):
    module = parse_query(query)

    def run(use_index):
        env = DynamicContext(resolve_doc=lambda uri: doc)
        return Evaluator(module, use_index=use_index).run(env)

    indexed, naive = run(True), run(False)
    assert keys(indexed) == keys(naive), query


OPS = ["=", "!=", "<", "<=", ">", ">="]
SELECTORS = ["child::b", "attribute::at0", "descendant::b", "."]
LITERALS = ['"7"', '"x"', "7", "3.5", "0"]


@given(doc=value_trees(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_predicate_shapes_indexed_equals_naive(doc, data):
    op = data.draw(st.sampled_from(OPS))
    selector = data.draw(st.sampled_from(SELECTORS))
    literal = data.draw(st.sampled_from(LITERALS))
    flipped = data.draw(st.booleans())
    comparison = (f"{literal} {op} {selector}" if flipped
                  else f"{selector} {op} {literal}")
    query = f"doc('d')//a[{comparison}]/child::b"
    assert_query_agrees(query, doc)


@given(doc=value_trees(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_conjunctions_and_residuals_indexed_equals_naive(doc, data):
    query = data.draw(st.sampled_from([
        "doc('d')//a[child::b = '7' and attribute::at0 = '7']",
        "doc('d')//a[child::b]/child::c",
        "doc('d')//a[child::b = '7' or child::c = '7']",
        "doc('d')//a[not(child::b)]",
        "doc('d')//a[child::b/child::c = '7']",
        "doc('d')//b[. != '1']/child::c",
        "doc('d')//a[descendant::c > 2]",
    ]))
    assert_query_agrees(query, doc)


@given(doc=value_trees(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_variable_rhs_and_joins_indexed_equals_naive(doc, data):
    query = data.draw(st.sampled_from([
        "let $v := doc('d')//b return doc('d')//a[child::b = $v]",
        "let $v := doc('d')//c return doc('d')//a[attribute::at0 = $v]",
        "for $x in doc('d')//a return"
        " if ($x/child::b = doc('d')//c) then $x else ()",
        "for $x in doc('d')//a return"
        " if ($x/descendant::b < 5) then $x/child::b else ()",
        "for $x in doc('d')//a return"
        " if ($x/attribute::at0 = '7') then $x else $x/child::b",
    ]))
    assert_query_agrees(query, doc)


BATTERY = [
    # Index-plan shapes.
    "doc('d')//person[name = 'Ann']/id",
    "doc('d')//person[id >= 's2' and id < 's4']/name",
    "doc('d')//person[tutor != 'Bob']/name",
    # Positional predicates stay per-context.
    "doc('d')//person[2]/name",
    "doc('d')//person[tutor][1]/name",
    "doc('d')//person[position() = last()]/id",
    # Hash-join shapes, incl. mixed-type invariants (exact fallback).
    "for $p in doc('d')//person return"
    " if ($p/name = doc('d')//tutor) then $p/id else ()",
    "for $p in doc('d')//person return"
    " if ($p/id = ('s1', 's3')) then $p/name else ()",
    "for $p in doc('d')//person return"
    " if ($p/name = (1, 'Bob')) then $p/id else ()",
    "for $p in doc('d')//person return"
    " if ($p/child::id = 's2') then $p else ()",
    # Range filter through the chain probe.
    "for $p in doc('d')//person return"
    " if ($p/name > 'Bn') then $p/id else ()",
    # Non-node loop items force the naive loop.
    "for $i in (1, 2, 3) return if ($i = 2) then $i else ()",
]


@pytest.mark.parametrize("query", BATTERY)
def test_battery_on_library_doc(query):
    from repro.xmldb.parser import parse_document

    doc = parse_document(STUDENTS_XML, uri="d")
    assert_query_agrees(query, doc)


def test_invalidation_after_inplace_mutation():
    from repro.xmldb.parser import parse_document

    doc = parse_document(STUDENTS_XML, uri="d")
    query = "doc('d')//person[name = 'Ann']/id"
    assert_query_agrees(query, doc)
    # Rename Ann -> Zoe in place; the value index must rebuild.
    target = next(n for n in doc.nodes()
                  if n.name == "name" and n.string_value() == "Ann")
    doc.values[target.pre + 1] = "Zoe"
    doc.invalidate_caches()
    assert_query_agrees(query, doc)
    assert_query_agrees("doc('d')//person[name = 'Zoe']/id", doc)
    module = parse_query("doc('d')//person[name = 'Zoe']/id")
    env = DynamicContext(resolve_doc=lambda uri: doc)
    assert len(Evaluator(module).run(env)) == 1


# ---------------------------------------------------------------------------
# Corpora, end to end, all strategies + auto
# ---------------------------------------------------------------------------

STRATEGIES = [Strategy.DATA_SHIPPING, Strategy.BY_VALUE,
              Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION, "auto"]

#: Q2 rephrased with predicate + join emphasis, plus a filter query.
LIBRARY_JOIN_QUERY = """
(let $s := doc("xrpc://A/students.xml")/child::people/child::person,
     $c := doc("xrpc://B/course42.xml")
 for $e in $c/enroll/exam
 where $e/@id = $s[tutor]/id
 return $e)/grade
"""

XMARK_PREDICATE_QUERY = """
for $p in doc("xrpc://peer1/people.xml")
          /child::site/child::people/child::person
return if ($p/child::age < 30) then $p/child::name else ()
"""

XMARK_JOIN_QUERY = """
(let $t := (let $s := doc("xrpc://peer1/people.xml")
                     /child::site/child::people/child::person
            return for $x in $s
                   return if ($x/child::age < 40) then $x else ())
 return for $e in doc("xrpc://peer2/auctions.xml")
                  /descendant::open_auction
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"""


def run_naive(federation, query, at):
    previous = set_default_use_index(False)
    try:
        return federation.run(query, at=at,
                              strategy=Strategy.DATA_SHIPPING)
    finally:
        set_default_use_index(previous)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_library_join_corpus_end_to_end(strategy):
    from repro.system.federation import Federation

    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    baseline = run_naive(federation, LIBRARY_JOIN_QUERY, "local")
    result = federation.run(LIBRARY_JOIN_QUERY, at="local",
                            strategy=strategy)
    assert sequences_deep_equal(baseline.items, result.items), strategy


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query", [XMARK_PREDICATE_QUERY,
                                   XMARK_JOIN_QUERY])
def test_xmark_corpus_end_to_end(strategy, query):
    federation = build_federation(scale=0.004)
    baseline = run_naive(federation, query, "local")
    result = federation.run(query, at="local", strategy=strategy)
    assert sequences_deep_equal(baseline.items, result.items), strategy


def test_store_swap_invalidates_value_indexes_end_to_end():
    """A Peer.store replaces the document object: the next run (auto,
    re-planned thanks to the stats-version cache key) probes fresh
    value indexes and sees the new content."""
    from repro.system.federation import Federation

    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("local")
    query = ('doc("xrpc://A/students.xml")'
             "//person[name = 'Zed']/id")
    empty = federation.run(query, at="local", strategy="auto")
    assert empty.items == []
    federation.peer("A").store(
        "students.xml",
        STUDENTS_XML.replace("<name>Ann</name>", "<name>Zed</name>"))
    found = federation.run(query, at="local", strategy="auto")
    assert len(found.items) == 1
    baseline = run_naive(federation, query, "local")
    assert sequences_deep_equal(found.items, baseline.items)
