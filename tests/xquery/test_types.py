"""Sequence-type matching (typeswitch / signature subset)."""

import pytest

from repro.xmldb.parser import parse_document
from repro.xquery.types import matches_sequence_type, split_occurrence
from repro.xquery.xdm import UntypedAtomic


@pytest.fixture
def doc():
    return parse_document('<a x="1">t</a>')


class TestOccurrence:
    def test_split(self):
        assert split_occurrence("node()*") == ("node()", "*")
        assert split_occurrence("xs:string?") == ("xs:string", "?")
        assert split_occurrence("item()") == ("item()", "")
        assert split_occurrence("element(p)+") == ("element(p)", "+")

    def test_empty_sequence_matching(self):
        assert matches_sequence_type([], "empty-sequence()")
        assert matches_sequence_type([], "node()*")
        assert matches_sequence_type([], "node()?")
        assert not matches_sequence_type([], "node()")
        assert not matches_sequence_type([], "node()+")

    def test_cardinality(self):
        assert matches_sequence_type([1, 2], "xs:integer*")
        assert matches_sequence_type([1, 2], "xs:integer+")
        assert not matches_sequence_type([1, 2], "xs:integer?")
        assert not matches_sequence_type([1, 2], "xs:integer")


class TestItemTypes:
    def test_item_matches_everything(self, doc):
        for value in (1, "s", True, 2.5, doc.root):
            assert matches_sequence_type([value], "item()")

    def test_node_kinds(self, doc):
        element = doc.node(1)
        attr = doc.node(2)
        text = doc.node(3)
        assert matches_sequence_type([element], "node()")
        assert matches_sequence_type([element], "element()")
        assert matches_sequence_type([element], "element(a)")
        assert not matches_sequence_type([element], "element(b)")
        assert matches_sequence_type([attr], "attribute(x)")
        assert matches_sequence_type([text], "text()")
        assert matches_sequence_type([doc.root], "document-node()")
        assert not matches_sequence_type([doc.root], "element()")

    def test_atomic_types(self):
        assert matches_sequence_type([1], "xs:integer")
        assert matches_sequence_type([1], "xs:double")  # promotion
        assert not matches_sequence_type([1.5], "xs:integer")
        assert matches_sequence_type(["s"], "xs:string")
        assert matches_sequence_type([True], "xs:boolean")
        assert not matches_sequence_type([True], "xs:integer")
        assert matches_sequence_type([UntypedAtomic("u")],
                                     "xs:untypedAtomic")

    def test_unknown_type_never_matches(self):
        assert not matches_sequence_type([1], "xs:duration")

    def test_mixed_sequence(self, doc):
        assert matches_sequence_type([doc.node(1), doc.node(3)], "node()*")
        assert not matches_sequence_type([doc.node(1), 1], "node()*")
