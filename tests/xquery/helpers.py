"""Evaluation helpers shared by the xquery test modules."""

from __future__ import annotations

from repro.xmldb.document import Document
from repro.xmldb.parser import parse_document
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query


def run(query: str, docs: dict[str, str | Document] | None = None) -> list:
    """Parse and evaluate a query against in-memory documents."""
    store: dict[str, Document] = {}
    for uri, content in (docs or {}).items():
        store[uri] = (content if isinstance(content, Document)
                      else parse_document(content, uri=uri))

    def resolve(uri: str) -> Document:
        return store[uri]

    module = parse_query(query)
    env = DynamicContext(resolve_doc=resolve)
    return Evaluator(module).evaluate(module.body, env)


def run1(query: str, docs: dict[str, str] | None = None):
    """Evaluate and assert a singleton result; return the item."""
    result = run(query, docs)
    assert len(result) == 1, f"expected singleton, got {result!r}"
    return result[0]
