"""Indexed vs. naive path execution must be indistinguishable.

Three layers:

* hypothesis property — on random generated documents, every axis ×
  node-test step (with random context subsets, including duplicates
  and reverse order) yields identical node lists through the indexed
  set-at-a-time pipeline and the naive per-node walk;
* query battery — parsed path queries (chains, predicates, positional
  predicates, reverse axes, unions) agree end-to-end on handcrafted
  documents;
* corpora — the library (students/course) and XMark federations give
  deep-equal results under all four strategies plus ``auto`` with the
  indexed engine, compared against a naive-engine baseline.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.decompose import Strategy
from repro.workloads import BENCHMARK_QUERY, build_federation
from repro.xmldb.axes import AXES
from repro.xmldb.document import DocumentBuilder
from repro.xmldb.node import Node
from repro.xquery.ast import Step
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator, set_default_use_index
from repro.xquery.parser import parse_query
from repro.xquery.xdm import sequences_deep_equal

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML

ALL_AXES = sorted(AXES) + ["attribute"]
TESTS = ["node()", "*", "a", "b", "at0", "text()", "comment()"]

_names = st.sampled_from(["a", "b", "c", "data"])
_texts = st.text(alphabet="ab <&\"'", min_size=1, max_size=6)


@st.composite
def xml_trees(draw, depth=3):
    builder = DocumentBuilder("prop.xml")

    def element(level: int) -> None:
        builder.start_element(draw(_names))
        for index in range(draw(st.integers(0, 2))):
            builder.attribute(f"at{index}", draw(_texts))
        for _ in range(draw(st.integers(0, 3 if level < depth else 0))):
            choice = draw(st.integers(0, 3))
            if choice == 0 and level < depth:
                element(level + 1)
            elif choice == 1:
                builder.comment(draw(_texts))
            else:
                builder.text(draw(_texts))
        builder.end_element()

    element(0)
    return builder.finish()


def keys(nodes):
    return [(id(node.doc), node.pre) for node in nodes]


@given(doc=xml_trees(), data=st.data(),
       axis=st.sampled_from(ALL_AXES), test=st.sampled_from(TESTS))
@settings(max_examples=120, deadline=None)
def test_single_step_indexed_equals_naive(doc, data, axis, test):
    population = list(range(len(doc)))
    context_pres = data.draw(st.lists(st.sampled_from(population),
                                      min_size=0, max_size=8))
    context = [Node(doc, pre) for pre in context_pres]
    step = Step(axis, test)
    env = DynamicContext()
    naive = Evaluator(use_index=False)._apply_step(step, list(context), env)
    indexed_groups = Evaluator(use_index=True)._apply_step_groups(
        step, _group(context), env)
    indexed = [Node(d, p) for d, pres in indexed_groups for p in pres]
    assert keys(indexed) == keys(naive)


def _group(context):
    from repro.xquery.evaluator import _group_context
    return _group_context(context, Step("self", "node()"))


@given(doc=xml_trees())
@settings(max_examples=60, deadline=None)
def test_chain_query_indexed_equals_naive(doc):
    for query in ("doc('d')//a", "doc('d')//a//b", "doc('d')/a/b",
                  "doc('d')//a/@at0", "doc('d')//node()/self::text()"):
        assert_query_agrees(query, doc)


QUERY_BATTERY = [
    "doc('d')//person/name",
    "doc('d')/child::people/child::person",
    "doc('d')//person[tutor]/id",
    "doc('d')//person[2]/name",
    "doc('d')//person/tutor/parent::person/name",
    "doc('d')//name/ancestor::*",
    "doc('d')//person[position() = last()]/name",
    "doc('d')//person/following-sibling::person/name",
    "doc('d')//text()",
    "doc('d')//person[name = 'Ann']/descendant-or-self::node()",
    "(doc('d')//name union doc('d')//tutor)",
    "doc('d')//person[tutor][1]/name",
]


@pytest.mark.parametrize("query", QUERY_BATTERY)
def test_query_battery_on_library_doc(query):
    from repro.xmldb.parser import parse_document
    doc = parse_document(STUDENTS_XML, uri="d")
    assert_query_agrees(query, doc)


def assert_query_agrees(query, doc):
    module = parse_query(query)

    def run(use_index):
        env = DynamicContext(resolve_doc=lambda uri: doc)
        return Evaluator(module, use_index=use_index).run(env)

    indexed, naive = run(True), run(False)
    assert keys(indexed) == keys(naive), query


# ---------------------------------------------------------------------------
# Corpora, end to end, all strategies + auto
# ---------------------------------------------------------------------------

STRATEGIES = [Strategy.DATA_SHIPPING, Strategy.BY_VALUE,
              Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION, "auto"]


def run_naive(federation, query, at):
    previous = set_default_use_index(False)
    try:
        return federation.run(query, at=at,
                              strategy=Strategy.DATA_SHIPPING)
    finally:
        set_default_use_index(previous)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_library_corpus_end_to_end(strategy):
    from repro.system.federation import Federation

    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    baseline = run_naive(federation, Q2, "local")
    result = federation.run(Q2, at="local", strategy=strategy)
    assert sequences_deep_equal(baseline.items, result.items), strategy


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_xmark_corpus_end_to_end(strategy):
    federation = build_federation(scale=0.004)
    baseline = run_naive(federation, BENCHMARK_QUERY, "local")
    result = federation.run(BENCHMARK_QUERY, at="local", strategy=strategy)
    assert sequences_deep_equal(baseline.items, result.items), strategy
