"""Parser tests: grammar coverage of Table II plus XRPC rules 27-28."""

import pytest

from repro.errors import UndefinedFunctionError, XQuerySyntaxError
from repro.xquery.ast import (
    ComparisonExpr, ConstructorExpr, ForExpr, FunCall, IfExpr, LetExpr,
    Literal, NodeSetExpr, OrderByExpr, PathExpr, QuantifiedExpr,
    SequenceExpr, TypeswitchExpr, VarRef, XRPCExpr,
)
from repro.xquery.parser import parse_expr, parse_query


class TestPrimaries:
    def test_literals(self):
        assert parse_expr("42") == Literal(42)
        assert parse_expr("3.5") == Literal(3.5)
        assert parse_expr('"text"') == Literal("text")

    def test_empty_sequence(self):
        assert parse_expr("()").rule == "EmptySequence"

    def test_variable(self):
        assert parse_expr("$x") == VarRef("x")

    def test_sequence(self):
        expr = parse_expr("(1, 2, 3)")
        assert isinstance(expr, SequenceExpr)
        assert len(expr.items) == 3

    def test_parenthesised_single(self):
        assert parse_expr("(1)") == Literal(1)


class TestPaths:
    def test_explicit_axes(self):
        expr = parse_expr('doc("d")/child::a/descendant::b')
        assert isinstance(expr, PathExpr)
        assert [(s.axis, s.test) for s in expr.steps] == [
            ("child", "a"), ("descendant", "b")]

    def test_abbreviations(self):
        expr = parse_expr('doc("d")/a//b/@id/../*')
        assert [(s.axis, s.test) for s in expr.steps] == [
            ("child", "a"), ("descendant-or-self", "node()"),
            ("child", "b"), ("attribute", "id"), ("parent", "node()"),
            ("child", "*")]

    def test_predicates(self):
        expr = parse_expr('doc("d")/a[2][@x = "1"]')
        assert len(expr.steps[0].predicates) == 2

    def test_predicate_on_variable(self):
        expr = parse_expr("$s[tutor]")
        assert isinstance(expr, PathExpr)
        assert expr.steps[0].axis == "self"
        assert len(expr.steps[0].predicates) == 1

    def test_kind_tests(self):
        expr = parse_expr("$x/text()/parent::node()")
        assert [(s.axis, s.test) for s in expr.steps] == [
            ("child", "text()"), ("parent", "node()")]

    def test_bare_name_is_context_step(self):
        expr = parse_expr("tutor")
        assert isinstance(expr, PathExpr)
        assert expr.input.rule == "ContextItemExpr"


class TestFLWOR:
    def test_for_desugars(self):
        expr = parse_expr("for $x in (1,2) return $x")
        assert isinstance(expr, ForExpr)

    def test_let_desugars(self):
        expr = parse_expr("let $x := 1 return $x")
        assert isinstance(expr, LetExpr)

    def test_multiple_clauses_nest(self):
        expr = parse_expr(
            "for $x in (1), $y in (2) let $z := 3 return $x")
        assert isinstance(expr, ForExpr)
        assert isinstance(expr.body, ForExpr)
        assert isinstance(expr.body.body, LetExpr)

    def test_where_becomes_if(self):
        expr = parse_expr("for $x in (1,2) where $x = 1 return $x")
        assert isinstance(expr.body, IfExpr)
        assert expr.body.else_branch.rule == "EmptySequence"

    def test_order_by(self):
        expr = parse_expr(
            "for $x in (3,1,2) order by $x descending return $x")
        assert isinstance(expr, OrderByExpr)
        assert not expr.specs[0].ascending

    def test_positional_variable(self):
        expr = parse_expr("for $x at $i in (9, 8) return $i")
        assert expr.pos_var == "i"

    def test_order_by_with_two_fors_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expr("for $x in (1), $y in (2) order by $x return $x")


class TestControl:
    def test_if(self):
        expr = parse_expr("if (1) then 2 else 3")
        assert isinstance(expr, IfExpr)

    def test_quantified(self):
        expr = parse_expr("some $x in (1, 2) satisfies $x = 2")
        assert isinstance(expr, QuantifiedExpr)
        assert expr.quantifier == "some"

    def test_typeswitch(self):
        expr = parse_expr(
            "typeswitch (1) case xs:integer return 1 "
            "case $s as xs:string return 2 default $d return 3")
        assert isinstance(expr, TypeswitchExpr)
        assert len(expr.cases) == 2
        assert expr.cases[1].var == "s"
        assert expr.default_var == "d"


class TestOperators:
    def test_precedence_or_and(self):
        expr = parse_expr("1 or 2 and 3")
        assert expr.op == "or"

    def test_value_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = parse_expr(f"1 {op} 2")
            assert isinstance(expr, ComparisonExpr)
            assert expr.op == op
            assert not expr.is_node_comparison

    def test_node_comparisons(self):
        for op in ("is", "<<", ">>"):
            expr = parse_expr(f"$a {op} $b")
            assert expr.is_node_comparison

    def test_word_comparisons_map_to_symbols(self):
        assert parse_expr("1 eq 2").op == "="
        assert parse_expr("1 lt 2").op == "<"

    def test_node_set_ops(self):
        expr = parse_expr("$a union $b intersect $c")
        assert isinstance(expr, NodeSetExpr)
        assert expr.op == "union"
        assert expr.right.op == "intersect"

    def test_pipe_is_union(self):
        assert parse_expr("$a | $b").op == "union"

    def test_arithmetic_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_range(self):
        expr = parse_expr("1 to 10")
        assert expr.rule == "RangeExpr"


class TestConstructors:
    def test_computed_element(self):
        expr = parse_expr("element res { 1 }")
        assert isinstance(expr, ConstructorExpr)
        assert expr.kind == "element"
        assert expr.name == "res"

    def test_computed_name(self):
        expr = parse_expr('element { "n" } { () }')
        assert expr.name is None
        assert expr.name_expr is not None

    def test_direct_element(self):
        expr = parse_expr("<a><b/></a>")
        assert isinstance(expr, ConstructorExpr)
        assert expr.name == "a"

    def test_direct_with_attributes_and_text(self):
        expr = parse_expr('<a x="1">hi</a>')
        content = expr.content.items
        assert content[0].kind == "attribute"
        assert content[1].kind == "text"

    def test_direct_with_embedded_expr(self):
        expr = parse_expr("<a>{ 1 + 1 }</a>")
        assert expr.content.items[0].rule == "ArithmeticExpr"

    def test_direct_followed_by_path(self):
        expr = parse_expr("<a><b><c/></b></a>/b")
        assert isinstance(expr, PathExpr)
        assert expr.steps[0].test == "b"

    def test_attribute_value_template(self):
        expr = parse_expr('<a x="v{1}w"/>')
        attr = expr.content.items[0]
        assert isinstance(attr.content, FunCall)
        assert attr.content.name == "concat"


class TestFunctions:
    def test_call(self):
        expr = parse_expr("count((1, 2))")
        assert isinstance(expr, FunCall)
        assert expr.name == "count"

    def test_fn_prefix_stripped(self):
        assert parse_expr("fn:doc('u')").name == "doc"

    def test_declaration_and_module(self):
        module = parse_query("""
            declare function local:double($x as xs:integer) as xs:integer
            { $x * 2 };
            local:double(21)
        """)
        assert module.function("local:double", 1) is not None
        assert isinstance(module.body, FunCall)

    def test_declared_variable_becomes_let(self):
        module = parse_query("declare variable $n := 5; $n + 1")
        assert isinstance(module.body, LetExpr)


class TestXrpc:
    def test_execute_at_function_form(self):
        expr = parse_expr(
            'execute at {"peer"} function ($p := $q) { $p }')
        assert isinstance(expr, XRPCExpr)
        assert expr.params[0].name == "p"

    def test_execute_at_call_form_inlines_declaration(self):
        module = parse_query("""
            declare function f($n as node()) as node() { $n };
            execute at {"peer"} { f($x) }
        """)
        assert isinstance(module.body, XRPCExpr)
        assert module.body.params[0].name == "n"
        assert isinstance(module.body.body, VarRef)

    def test_execute_at_unknown_function_rejected(self):
        with pytest.raises(UndefinedFunctionError):
            parse_query('execute at {"p"} { nosuch($x) }')


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "for $x in", "let $x 1 return $x", "if (1) then 2",
        "1 +", "<a></b>", "typeswitch (1) default return 1",
        "$x[", "(1, 2", 'execute at {"p"} { 1 + 1 }',
    ])
    def test_rejected(self, bad):
        with pytest.raises((XQuerySyntaxError, UndefinedFunctionError)):
            parse_expr(bad) if "declare" not in bad else parse_query(bad)

    def test_trailing_garbage(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expr("1 1")
