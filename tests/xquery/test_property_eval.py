"""Property-based evaluator invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from tests.xquery.helpers import run

_ints = st.integers(-50, 50)
_small = st.integers(1, 12)


@given(st.lists(_ints, max_size=6))
@settings(max_examples=50, deadline=None)
def test_sequence_construction_flattens(values):
    literal = ", ".join(str(v) for v in values)
    assert run(f"({literal})") == values


@given(_ints, _ints)
@settings(max_examples=50, deadline=None)
def test_arithmetic_matches_python(a, b):
    assert run(f"{a} + {b}")[0] == a + b
    assert run(f"{a} - {b}")[0] == a - b
    assert run(f"{a} * {b}")[0] == a * b


@given(_ints, _ints)
@settings(max_examples=50, deadline=None)
def test_comparison_total_order(a, b):
    less = run(f"{a} < {b}")[0]
    equal = run(f"{a} = {b}")[0]
    greater = run(f"{a} > {b}")[0]
    assert [less, equal, greater].count(True) == 1


@given(_small, _small)
@settings(max_examples=30, deadline=None)
def test_range_length(lo, extra):
    hi = lo + extra
    assert run(f"count({lo} to {hi})") == [extra + 1]


@given(st.lists(_ints, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_for_is_map(values):
    literal = ", ".join(str(v) for v in values)
    assert run(f"for $x in ({literal}) return $x * 2") == \
        [v * 2 for v in values]


@given(st.lists(_ints, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_aggregates_match_python(values):
    literal = ", ".join(str(v) for v in values)
    assert run(f"sum(({literal}))")[0] == sum(values)
    assert run(f"max(({literal}))")[0] == max(values)
    assert run(f"min(({literal}))")[0] == min(values)
    assert run(f"count(({literal}))")[0] == len(values)


@given(st.lists(_ints, max_size=6))
@settings(max_examples=40, deadline=None)
def test_reverse_involution(values):
    literal = ", ".join(str(v) for v in values)
    wrapped = f"({literal})" if values else "()"
    assert run(f"reverse(reverse({wrapped}))") == values


@given(st.lists(_ints, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_order_by_sorts(values):
    literal = ", ".join(str(v) for v in values)
    assert run(f"for $x in ({literal}) order by $x return $x") == \
        sorted(values)


@given(st.lists(_ints, min_size=1, max_size=5), _ints)
@settings(max_examples=40, deadline=None)
def test_general_comparison_is_existential(values, needle):
    literal = ", ".join(str(v) for v in values)
    assert run(f"({literal}) = {needle}")[0] == (needle in values)


@given(st.lists(_ints, min_size=1, max_size=5))
@settings(max_examples=30, deadline=None)
def test_quantifiers_dual(values):
    literal = ", ".join(str(v) for v in values)
    some_neg = run(f"some $x in ({literal}) satisfies $x < 0")[0]
    every_nonneg = run(f"every $x in ({literal}) satisfies $x >= 0")[0]
    assert some_neg == (not every_nonneg)
