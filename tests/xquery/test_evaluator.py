"""Evaluator tests: expressions, paths, FLWOR, node semantics."""

import pytest

from repro.errors import (
    UndefinedVariableError, XQueryDynamicError, XQueryTypeError,
)
from repro.xmldb.node import Node
from repro.xquery.xdm import serialize_sequence

from tests.xquery.helpers import run, run1

PEOPLE = """<people>
 <person id="p1"><name>Ann</name><age>30</age></person>
 <person id="p2"><name>Bob</name><age>55</age></person>
 <person id="p3"><name>Col</name><age>41</age></person>
</people>"""


class TestBasics:
    def test_literals(self):
        assert run1("42") == 42
        assert run1('"x"') == "x"
        assert run1("2.5") == 2.5

    def test_sequence_flattens(self):
        assert run("(1, (2, 3), ())") == [1, 2, 3]

    def test_arithmetic(self):
        assert run1("1 + 2 * 3") == 7
        assert run1("7 idiv 2") == 3
        assert run1("7 mod 2") == 1
        assert run1("1 div 4") == 0.25
        assert run1("-(3)") == -3

    def test_arithmetic_with_empty_is_empty(self):
        assert run("1 + ()") == []

    def test_division_by_zero(self):
        with pytest.raises(XQueryDynamicError):
            run("1 div 0")

    def test_range(self):
        assert run("1 to 4") == [1, 2, 3, 4]
        assert run("3 to 1") == []

    def test_logical_short_circuit(self):
        # The error in the right operand is skipped.
        assert run1('fn:false() and fn:error("boom")') is False
        assert run1('fn:true() or fn:error("boom")') is True

    def test_comparison_existential(self):
        assert run1("(1, 2, 3) = 3") is True
        assert run1("(1, 2) = (4, 5)") is False
        assert run1("() = 1") is False

    def test_untyped_compares_numerically(self):
        result = run1('doc("d")/a/b < 10', {"d": "<a><b>9</b></a>"})
        assert result is True

    def test_string_comparison(self):
        assert run1('"abc" < "abd"') is True

    def test_incomparable_types_raise(self):
        with pytest.raises(XQueryTypeError):
            run('"x" < 1')

    def test_undefined_variable(self):
        with pytest.raises(UndefinedVariableError):
            run("$nope")


class TestFlwor:
    def test_for_iterates(self):
        assert run("for $x in (1, 2, 3) return $x * 2") == [2, 4, 6]

    def test_for_with_position(self):
        assert run("for $x at $i in (9, 9) return $i") == [1, 2]

    def test_let_binds_once(self):
        assert run("let $x := (1, 2) return ($x, $x)") == [1, 2, 1, 2]

    def test_where_filters(self):
        assert run("for $x in (1, 2, 3, 4) where $x > 2 return $x") == [3, 4]

    def test_order_by(self):
        assert run("for $x in (3, 1, 2) order by $x return $x") == [1, 2, 3]

    def test_order_by_descending(self):
        assert run("for $x in (3, 1, 2) order by $x descending return $x") \
            == [3, 2, 1]

    def test_order_by_key_expression(self):
        result = run(
            'for $p in doc("d")//person order by $p/age return $p/name',
            {"d": PEOPLE})
        assert serialize_sequence(result) == \
            "<name>Ann</name> <name>Col</name> <name>Bob</name>"

    def test_order_by_stable_for_equal_keys(self):
        assert run('for $x in ("b1", "a1", "b2") '
                   "order by substring($x, 1, 1) return $x") \
            == ["a1", "b1", "b2"]

    def test_quantified_some_every(self):
        assert run1("some $x in (1, 2) satisfies $x = 2") is True
        assert run1("every $x in (1, 2) satisfies $x = 2") is False
        assert run1("every $x in () satisfies $x = 99") is True

    def test_shadowing(self):
        assert run("let $x := 1 return (for $x in (2, 3) return $x, $x)") \
            == [2, 3, 1]


class TestPaths:
    def test_child_steps(self):
        result = run('doc("d")/people/person/name', {"d": PEOPLE})
        assert len(result) == 3

    def test_descendant_shortcut(self):
        result = run('doc("d")//age', {"d": PEOPLE})
        assert [n.string_value() for n in result] == ["30", "55", "41"]

    def test_attribute_step(self):
        result = run('doc("d")//person/@id', {"d": PEOPLE})
        assert [n.value for n in result] == ["p1", "p2", "p3"]

    def test_result_in_document_order_and_deduplicated(self):
        # Both steps reach the same b nodes: duplicates must vanish.
        result = run('(doc("d")//b, doc("d")/a/b)/c',
                     {"d": "<a><b><c/></b><b><c/></b></a>"})
        assert len(result) == 2

    def test_positional_predicate(self):
        result = run1('doc("d")//person[2]/name', {"d": PEOPLE})
        assert result.string_value() == "Bob"

    def test_boolean_predicate(self):
        result = run('doc("d")//person[age > 40]/name', {"d": PEOPLE})
        assert [n.string_value() for n in result] == ["Bob", "Col"]

    def test_predicate_with_position_function(self):
        result = run('doc("d")//person[position() > 1]/@id', {"d": PEOPLE})
        assert [n.value for n in result] == ["p2", "p3"]

    def test_predicate_with_last(self):
        result = run1('doc("d")//person[last()]/@id', {"d": PEOPLE})
        assert result.value == "p3"

    def test_parent_step(self):
        result = run('doc("d")//age/parent::person/@id', {"d": PEOPLE})
        assert len(result) == 3

    def test_path_over_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            run("(1, 2)/child::a")

    def test_reverse_axis_result_still_document_order(self):
        result = run('doc("d")//c/ancestor::*',
                     {"d": "<a><b><c/></b></a>"})
        assert [n.name for n in result] == ["a", "b"]


class TestNodeSemantics:
    def test_is_identity(self):
        assert run1('let $d := doc("d") return $d//b is $d//b',
                    {"d": "<a><b/></a>"}) is True

    def test_is_differs_for_copies(self):
        assert run1("<a/> is <a/>") is False

    def test_order_comparisons(self):
        docs = {"d": "<a><b/><c/></a>"}
        assert run1('doc("d")//b << doc("d")//c', docs) is True
        assert run1('doc("d")//c >> doc("d")//b', docs) is True

    def test_node_comparison_empty_operand(self):
        assert run("() is ()") == []

    def test_node_comparison_requires_nodes(self):
        with pytest.raises(XQueryTypeError):
            run("1 is 2")

    def test_union_orders_and_dedups(self):
        result = run('let $d := doc("d") return $d//c union $d//b',
                     {"d": "<a><b/><c/></a>"})
        assert [n.name for n in result] == ["b", "c"]

    def test_intersect_by_identity(self):
        result = run('let $d := doc("d") return ($d//b) intersect ($d/a/b)',
                     {"d": "<a><b/></a>"})
        assert len(result) == 1

    def test_except(self):
        result = run('let $d := doc("d") return $d//* except $d//b',
                     {"d": "<a><b/><c/></a>"})
        assert [n.name for n in result] == ["a", "c"]

    def test_intersect_of_copies_is_empty(self):
        # Copies have fresh identity: Problem 2 of the paper.
        assert run("(<a/>) intersect (<a/>)") == []


class TestControl:
    def test_if_ebv(self):
        assert run1("if (()) then 1 else 2") == 2
        assert run1('if ("x") then 1 else 2') == 1

    def test_typeswitch_dispatch(self):
        query = ("typeswitch ({}) case xs:integer return \"int\" "
                 "case xs:string return \"str\" default return \"other\"")
        assert run1(query.format("1")) == "int"
        assert run1(query.format('"s"')) == "str"
        assert run1(query.format("1.5")) == "other"

    def test_typeswitch_binds_variable(self):
        assert run1("typeswitch (5) case $i as xs:integer return $i + 1 "
                    "default return 0") == 6

    def test_typeswitch_node_case(self):
        assert run1("typeswitch (<a/>) case node() return 1 "
                    "default return 2") == 1


class TestConstructors:
    def test_direct_element(self):
        node = run1("<a><b>x</b></a>")
        assert isinstance(node, Node)
        assert node.string_value() == "x"

    def test_computed_element_with_content(self):
        node = run1('element res { 1, "two" }')
        assert node.name == "res"
        assert node.string_value() == "1 two"

    def test_computed_name(self):
        node = run1('element { concat("a", "b") } { () }')
        assert node.name == "ab"

    def test_attribute_constructor(self):
        node = run1('attribute id { "v" }')
        assert node.name == "id" and node.value == "v"

    def test_text_constructor(self):
        node = run1("text { 1, 2 }")
        assert node.value == "1 2"

    def test_copied_content_gets_fresh_identity(self):
        assert run1('let $b := <b/> let $a := <a>{ $b }</a> '
                    "return $a/b is $b") is False

    def test_attribute_item_attaches(self):
        node = run1('element e { attribute x { "1" }, "body" }')
        from repro.xmldb.serializer import serialize_node
        assert serialize_node(node) == '<e x="1">body</e>'

    def test_constructed_per_iteration_distinct(self):
        assert run1("count((for $i in (1, 2) return <a/>) "
                    "intersect (for $i in (1, 2) return <a/>))") == 0


class TestFunctions:
    def test_user_function(self):
        assert run1("""
            declare function local:fact($n as xs:integer) as xs:integer
            { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
            local:fact(5)""") == 120

    def test_function_scope_is_fresh(self):
        with pytest.raises(UndefinedVariableError):
            run("""
                declare function f() as item()* { $outer };
                let $outer := 1 return f()""")
