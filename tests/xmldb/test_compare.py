"""Node identity, document order, deep-equal."""

from repro.xmldb.compare import (
    deep_equal, is_same_node, node_after, node_before, sort_document_order,
)
from repro.xmldb.parser import parse_document, parse_fragment


def by_name(doc, name):
    return next(n for n in doc.nodes() if n.name == name)


class TestIdentity:
    def test_same_node(self):
        doc = parse_document("<a><b/></a>")
        assert is_same_node(by_name(doc, "b"), by_name(doc, "b"))

    def test_equal_copies_are_not_same(self):
        left = parse_document("<a><b/></a>")
        right = parse_document("<a><b/></a>")
        assert not is_same_node(by_name(left, "b"), by_name(right, "b"))
        assert deep_equal(left.root, right.root)


class TestOrder:
    def test_within_document(self):
        doc = parse_document("<a><b/><c/></a>")
        assert node_before(by_name(doc, "b"), by_name(doc, "c"))
        assert node_after(by_name(doc, "c"), by_name(doc, "b"))

    def test_ancestor_before_descendant(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert node_before(by_name(doc, "a"), by_name(doc, "c"))

    def test_across_documents_stable(self):
        first = parse_document("<a/>")
        second = parse_document("<b/>")
        assert node_before(first.root, second.root)
        assert not node_before(second.root, first.root)

    def test_sort_dedup(self):
        doc = parse_document("<a><b/><c/></a>")
        b, c = by_name(doc, "b"), by_name(doc, "c")
        assert sort_document_order([c, b, c, b]) == [b, c]


class TestDeepEqual:
    def test_attribute_order_irrelevant(self):
        left = parse_document('<a x="1" y="2"/>')
        right = parse_document('<a y="2" x="1"/>')
        assert deep_equal(left.root, right.root)

    def test_attribute_value_matters(self):
        left = parse_document('<a x="1"/>')
        right = parse_document('<a x="2"/>')
        assert not deep_equal(left.root, right.root)

    def test_comments_ignored(self):
        left = parse_document("<a><b/><!--x--></a>")
        right = parse_document("<a><b/></a>")
        assert deep_equal(left.root, right.root)

    def test_text_compared(self):
        assert not deep_equal(parse_document("<a>x</a>").root,
                              parse_document("<a>y</a>").root)

    def test_element_vs_document_root_not_equal(self):
        # fn:deep-equal requires matching node kinds (XQuery F&O 15.3.1);
        # compare the fragment against the document's root *element*.
        doc = parse_document("<a><b/></a>")
        frag = parse_fragment("<a><b/></a>")
        assert not deep_equal(doc.root, frag.root)
        assert deep_equal(doc.node(1), frag.root)

    def test_child_order_matters(self):
        left = parse_document("<a><b/><c/></a>")
        right = parse_document("<a><c/><b/></a>")
        assert not deep_equal(left.root, right.root)

    def test_names_matter(self):
        assert not deep_equal(parse_document("<a/>").root,
                              parse_document("<b/>").root)

    def test_attribute_nodes(self):
        doc = parse_document('<a x="1" y="1"/>')
        x = next(n for n in doc.nodes() if n.name == "x")
        y = next(n for n in doc.nodes() if n.name == "y")
        assert not deep_equal(x, y)  # names differ
        assert deep_equal(x, x)
