"""All thirteen axes over a known tree.

Tree: a(x=1)[ b[ c, "t1" ], d[ e[ f ] ], g ]
"""

import pytest

from repro.xmldb import axes
from repro.xmldb.parser import parse_document


@pytest.fixture
def doc():
    return parse_document('<a x="1"><b><c/>t1</b><d><e><f/></e></d><g/></a>')


def names(nodes):
    return [n.name or n.value for n in nodes]


def by_name(doc, name):
    return next(n for n in doc.nodes() if n.name == name)


class TestDownward:
    def test_child_skips_attributes(self, doc):
        a = by_name(doc, "a")
        assert names(axes.child(a)) == ["b", "d", "g"]

    def test_child_includes_text(self, doc):
        b = by_name(doc, "b")
        assert names(axes.child(b)) == ["c", "t1"]

    def test_descendant(self, doc):
        a = by_name(doc, "a")
        assert names(axes.descendant(a)) == ["b", "c", "t1", "d", "e",
                                             "f", "g"]

    def test_descendant_excludes_attributes(self, doc):
        assert all(n.name != "x" for n in axes.descendant(doc.root))

    def test_descendant_or_self(self, doc):
        d = by_name(doc, "d")
        assert names(axes.descendant_or_self(d)) == ["d", "e", "f"]

    def test_attribute(self, doc):
        a = by_name(doc, "a")
        assert [(n.name, n.value) for n in axes.attribute(a)] == [("x", "1")]

    def test_attribute_of_non_element_empty(self, doc):
        attr = next(n for n in doc.nodes() if n.name == "x")
        assert list(axes.attribute(attr)) == []


class TestUpward:
    def test_parent(self, doc):
        f = by_name(doc, "f")
        assert names(axes.parent(f)) == ["e"]

    def test_parent_of_attribute_is_owner(self, doc):
        attr = next(n for n in doc.nodes() if n.name == "x")
        assert attr.parent().name == "a"

    def test_ancestor(self, doc):
        f = by_name(doc, "f")
        assert [n.name for n in axes.ancestor(f)][:3] == ["e", "d", "a"]

    def test_ancestor_or_self(self, doc):
        f = by_name(doc, "f")
        assert [n.name for n in axes.ancestor_or_self(f)][:2] == ["f", "e"]

    def test_root_has_no_parent(self, doc):
        assert list(axes.parent(doc.root)) == []


class TestHorizontal:
    def test_following_sibling(self, doc):
        b = by_name(doc, "b")
        assert names(axes.following_sibling(b)) == ["d", "g"]

    def test_preceding_sibling_reverse_order(self, doc):
        g = by_name(doc, "g")
        assert names(axes.preceding_sibling(g)) == ["d", "b"]

    def test_following(self, doc):
        b = by_name(doc, "b")
        assert names(axes.following(b)) == ["d", "e", "f", "g"]

    def test_preceding_excludes_ancestors(self, doc):
        f = by_name(doc, "f")
        out = names(axes.preceding(f))
        assert "a" not in out and "d" not in out and "e" not in out
        assert out == ["t1", "c", "b"]  # reverse document order


class TestNodeTests:
    def test_name_test(self, doc):
        a = by_name(doc, "a")
        assert names(axes.axis_step(a, "child", "d")) == ["d"]

    def test_wildcard(self, doc):
        a = by_name(doc, "a")
        assert names(axes.axis_step(a, "child", "*")) == ["b", "d", "g"]

    def test_text_test(self, doc):
        b = by_name(doc, "b")
        assert names(axes.axis_step(b, "child", "text()")) == ["t1"]

    def test_node_test(self, doc):
        b = by_name(doc, "b")
        assert names(axes.axis_step(b, "child", "node()")) == ["c", "t1"]

    def test_wildcard_excludes_text(self, doc):
        b = by_name(doc, "b")
        assert names(axes.axis_step(b, "child", "*")) == ["c"]


class TestSelfAxis:
    def test_self(self, doc):
        b = by_name(doc, "b")
        assert list(axes.self(b)) == [b]


class TestAxisSets:
    def test_categories_are_disjoint(self):
        assert not (axes.REVERSE_AXES & axes.HORIZONTAL_AXES)
        assert axes.NON_OVERLAPPING_AXES <= set(axes.AXES) | {"parent"}

    def test_all_thirteen_registered(self):
        assert len(axes.AXES) == 12  # all but the namespace axis
