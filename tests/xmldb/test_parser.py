"""XML parser unit tests: well-formedness, entities, errors."""

import pytest

from repro.errors import XmlParseError
from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.serializer import serialize


class TestBasics:
    def test_minimal(self):
        doc = parse_document("<a/>")
        assert doc.root.kind == NodeKind.DOCUMENT
        assert doc.node(1).name == "a"

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        names = [doc.names[p] for p in range(len(doc)) if doc.names[p]]
        assert names == ["a", "b", "c", "d"]

    def test_attributes_both_quotes(self):
        doc = parse_document("""<a x="1" y='2'/>""")
        attrs = {doc.names[p]: doc.values[p] for p in range(len(doc))
                 if doc.kinds[p] == NodeKind.ATTRIBUTE}
        assert attrs == {"x": "1", "y": "2"}

    def test_text_content(self):
        doc = parse_document("<a>hello <b>world</b>!</a>")
        assert doc.node(1).string_value() == "hello world!"

    def test_xml_declaration_and_doctype_skipped(self):
        doc = parse_document(
            '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>')
        assert doc.node(1).name == "a"

    def test_namespaced_names_kept_verbatim(self):
        doc = parse_document('<x:a xmlns:x="urn:x"><x:b/></x:a>')
        assert doc.names[1] == "x:a"


class TestEntities:
    def test_predefined(self):
        doc = parse_document("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert doc.node(1).string_value() == "<>&\"'"

    def test_numeric(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.node(1).string_value() == "AB"

    def test_in_attribute(self):
        doc = parse_document('<a x="a&amp;b"/>')
        assert doc.values[2] == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<a>&nope;</a>")


class TestSpecialConstructs:
    def test_comment(self):
        doc = parse_document("<a><!--note--></a>")
        assert doc.kinds[2] == NodeKind.COMMENT
        assert doc.values[2] == "note"

    def test_processing_instruction(self):
        doc = parse_document("<a><?target data here?></a>")
        assert doc.kinds[2] == NodeKind.PROCESSING_INSTRUCTION
        assert doc.names[2] == "target"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<raw> & stuff]]></a>")
        assert doc.node(1).string_value() == "<raw> & stuff"

    def test_cdata_merges_with_text(self):
        doc = parse_document("<a>x<![CDATA[y]]>z</a>")
        assert doc.node(1).string_value() == "xyz"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "<a>",                      # unterminated
        "<a></b>",                  # mismatched tags
        "<a x=1/>",                 # unquoted attribute
        '<a x="1" x="2"/>',         # duplicate attribute
        "<a/><b/>",                 # two roots
        "",                         # empty input
        "just text",                # no element
        "<a><!--never closed</a>",  # unterminated comment
    ])
    def test_rejected(self, bad):
        with pytest.raises(XmlParseError):
            parse_document(bad)

    def test_error_carries_offset(self):
        with pytest.raises(XmlParseError) as info:
            parse_document("<a><b></c></a>")
        assert info.value.offset > 0


class TestFragment:
    def test_fragment_root_is_element(self):
        doc = parse_fragment("<a><b/></a>")
        assert doc.is_fragment
        assert doc.root.name == "a"

    def test_fragment_rejects_document_extras(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a/><b/>")


class TestRoundTrip:
    @pytest.mark.parametrize("xml", [
        "<a/>",
        '<a x="1"><b>t</b></a>',
        "<a>one<b/>two</a>",
        '<a note="&lt;&amp;&quot;">&amp;</a>',
        "<a><!--c--><?pi d?></a>",
    ])
    def test_parse_serialize_identity(self, xml):
        assert serialize(parse_document(xml)) == xml
