"""The columnar core: kernels, spill format, buffer pool.

Four layers:

* kernel properties — every batch kernel against its brute-force
  one-liner on random sorted columns;
* columnar vs. naive equivalence — on random trees, indexed axis
  scans over an in-memory document and over the same document spilled
  and reopened through a tiny buffer pool all agree with the naive
  per-node walk;
* spill format — freeze → open → freeze round-trips byte-identically,
  sizing figures match the in-memory ColumnSet exactly, and eviction
  under a pathologically small budget never changes an answer;
* federation — the Section VII benchmark over a spilled XMark corpus
  gives deep-equal results under all four strategies plus ``auto``.
"""

import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.decompose import Strategy
from repro.workloads import (BENCHMARK_QUERY, build_federation,
                             build_spilled_federation)
from repro.xmldb import kernels
from repro.xmldb.columns import ColumnSet, NameTable
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.index import INDEXED_AXES, structural_index
from repro.xmldb.kernels import pre_array
from repro.xmldb.node import Node
from repro.xmldb.parser import parse_document
from repro.xmldb.pool import (BufferPool, ColumnStore, POOL_PAGE_ITEMS,
                              freeze_to, open_document)
from repro.xmldb.serializer import serialize_node
from repro.xquery.ast import Step
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.xdm import sequences_deep_equal

from tests.xquery.test_indexed_equivalence import xml_trees

# ---------------------------------------------------------------------------
# Kernels vs. brute force
# ---------------------------------------------------------------------------

_sorted_columns = st.lists(st.integers(0, 60), max_size=25).map(
    lambda xs: pre_array(sorted(set(xs))))


@given(column=_sorted_columns, low=st.integers(-5, 65),
       high=st.integers(-5, 65))
def test_interval_bounds_matches_filter(column, low, high):
    lo, hi = kernels.interval_bounds(column, low, high)
    assert list(column[lo:hi]) == [p for p in column if low < p <= high]


@given(column=_sorted_columns, low=st.integers(-5, 65),
       high=st.integers(-5, 65))
def test_any_in_interval_matches_filter(column, low, high):
    expected = any(low < p <= high for p in column)
    assert kernels.any_in_interval(column, low, high) == expected


@given(columns=st.lists(_sorted_columns, max_size=5))
def test_merge_sorted_is_sorted_union(columns):
    merged = kernels.merge_sorted(columns)
    assert list(merged) == sorted({p for col in columns for p in col})


@given(left=_sorted_columns, right=_sorted_columns)
def test_set_kernels_match_set_algebra(left, right):
    ls, rs = set(left), set(right)
    assert list(kernels.union_sorted(left, right)) == sorted(ls | rs)
    assert list(kernels.intersect_sorted(left, right)) == sorted(ls & rs)
    assert list(kernels.difference_sorted(left, right)) == sorted(ls - rs)


@given(values=st.lists(st.integers(0, 9), max_size=20),
       probe=st.integers(-1, 10))
def test_equal_bounds_matches_count(values, probe):
    ordered = sorted(values)
    lo, hi = kernels.equal_bounds(ordered, probe)
    assert hi - lo == values.count(probe)
    assert all(v == probe for v in ordered[lo:hi])


@given(doc=xml_trees(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_subtree_sweep_matches_interval_filter(doc, data):
    sizes = doc.sizes
    candidates = pre_array(sorted(data.draw(
        st.sets(st.integers(0, len(doc) - 1), max_size=10))))
    contexts = pre_array(sorted(data.draw(
        st.sets(st.integers(0, len(doc) - 1), max_size=6))))
    swept = kernels.subtree_sweep(candidates, contexts, sizes)
    expected = sorted({p for p in candidates for c in contexts
                       if c < p <= c + sizes[c]})
    assert list(swept) == expected


@given(doc=xml_trees(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_children_of_matches_parent_filter(doc, data):
    candidates = pre_array(sorted(data.draw(
        st.sets(st.integers(0, len(doc) - 1), max_size=10))))
    contexts = pre_array(sorted(data.draw(
        st.sets(st.integers(0, len(doc) - 1), max_size=6))))
    got = kernels.children_of(candidates, contexts, doc.sizes, doc.parents)
    wanted = set(contexts)
    expected = [p for p in candidates if doc.parents[p] in wanted]
    assert list(got) == expected


def test_accelerator_flag_round_trips():
    original = kernels.accelerator()
    try:
        kernels.set_accelerator("python")
        assert kernels.accelerator() == "python"
        kernels.set_accelerator("auto")
        assert kernels.accelerator() in ("python", "numpy")
        with pytest.raises(ValueError):
            kernels.set_accelerator("fortran")
    finally:
        kernels.set_accelerator(original)


# ---------------------------------------------------------------------------
# ColumnSet / NameTable
# ---------------------------------------------------------------------------


def test_columnset_coerces_lists_to_typed_arrays():
    doc = parse_document("<a><b x='1'>t</b></a>", uri="c.xml")
    assert isinstance(doc.columns.kinds, array)
    assert doc.columns.kinds.typecode == "B"
    assert isinstance(doc.columns.sizes, array)
    assert doc.columns.sizes.typecode == "i"
    assert doc.count == len(doc.columns) == len(doc.kinds)


def test_nametable_assigns_dense_first_occurrence_ids():
    table = NameTable(["b", "a", "b", "", "c"])
    assert table.names == ["", "b", "a", "c"]
    assert table.id_of("a") == 2
    assert table.value(3) == "c"
    assert len(table) == 4


def test_column_byte_sizes_are_exact():
    doc = parse_document("<r><k>héllo</k><k a='v'/></r>", uri="s.xml")
    sizes = doc.column_byte_sizes()
    count = doc.count
    assert sizes["kinds"] == count
    assert sizes["sizes"] == sizes["levels"] == sizes["parents"] == count * 4
    blob = sum(len(v.encode()) for v in doc.values)
    assert sizes["values"] == (count + 1) * 8 + blob
    distinct = set(doc.names) | {""}
    assert sizes["names"] == count * 4 + sum(len(n.encode())
                                             for n in distinct)
    assert doc.column_bytes() == sum(sizes.values())


# ---------------------------------------------------------------------------
# Spill round trip
# ---------------------------------------------------------------------------


@given(doc=xml_trees())
@settings(max_examples=25, deadline=None)
def test_spill_reopen_preserves_every_column(doc, tmp_path_factory):
    path = tmp_path_factory.mktemp("spill") / "doc.xcol"
    freeze_to(doc, path)
    with ColumnStore.open(path) as store:
        reopened = store.document
        assert reopened.uri == doc.uri
        assert reopened.count == doc.count
        for name in ("kinds", "names", "values", "sizes", "levels",
                     "parents"):
            assert list(getattr(reopened, name)) == \
                list(getattr(doc, name)), name
        assert serialize_node(reopened.root) == serialize_node(doc.root)


@given(doc=xml_trees())
@settings(max_examples=25, deadline=None)
def test_freeze_open_freeze_is_byte_identical(doc, tmp_path_factory):
    base = tmp_path_factory.mktemp("spill")
    first = base / "first.xcol"
    second = base / "second.xcol"
    freeze_to(doc, first)
    with ColumnStore.open(first) as store:
        freeze_to(store.document, second)
    assert first.read_bytes() == second.read_bytes()


def test_reopened_sizing_matches_in_memory(tmp_path):
    doc = parse_document("<a><b x='1'>txt</b><b/></a>", uri="z.xml")
    path = tmp_path / "doc.xcol"
    freeze_to(doc, path)
    with ColumnStore.open(path) as store:
        assert dict(store.document.column_byte_sizes()) == \
            dict(doc.column_byte_sizes())
        assert store.document.column_bytes() == doc.column_bytes()


def test_open_rejects_non_spill_file(tmp_path):
    path = tmp_path / "junk.xcol"
    path.write_bytes(b"definitely not a spill file" + b"\x00" * 4096)
    from repro.errors import XmlError
    with pytest.raises(XmlError):
        ColumnStore.open(path)


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


def _large_doc(nodes: int = 3 * POOL_PAGE_ITEMS) -> Document:
    rng = random.Random(7)
    builder = DocumentBuilder("large.xml")
    builder.start_document()
    builder.start_element("root")
    appended = 2
    while appended < nodes:
        builder.start_element(rng.choice(["item", "entry", "row"]))
        builder.attribute("id", str(appended))
        builder.text(f"value-{appended}")
        builder.end_element()
        appended += 3
    builder.end_element()
    builder.end_document()
    return builder.finish()


def test_eviction_under_tiny_budget_is_still_correct(tmp_path):
    doc = _large_doc()
    path = tmp_path / "large.xcol"
    freeze_to(doc, path)
    # A budget far below one column's footprint: every page fault
    # evicts another page, yet answers must not change.
    with ColumnStore.open(path, budget_bytes=4096) as store:
        reopened = store.document
        rng = random.Random(13)
        probes = [rng.randrange(doc.count) for _ in range(200)]
        for pre in probes:
            assert reopened.kinds[pre] == doc.kinds[pre]
            assert reopened.names[pre] == doc.names[pre]
            assert reopened.values[pre] == doc.values[pre]
            assert reopened.parents[pre] == doc.parents[pre]
        stats = store.pool.stats()
        assert stats["evictions"] > 0
        assert stats["cached_bytes"] <= 4096


def test_pool_caps_cached_bytes_and_counts_hits(tmp_path):
    doc = _large_doc()
    path = tmp_path / "large.xcol"
    freeze_to(doc, path)
    budget = 64 * 1024
    with ColumnStore.open(path, budget_bytes=budget) as store:
        reopened = store.document
        for _ in range(3):
            assert sum(1 for k in reopened.kinds if k == 1) == \
                sum(1 for k in doc.kinds if k == 1)
        stats = store.pool.stats()
        assert stats["cached_bytes"] <= budget
        assert stats["hits"] > 0 and stats["misses"] > 0


def test_shared_pool_across_stores_keeps_keys_distinct(tmp_path):
    first = parse_document("<a><b>one</b></a>", uri="one.xml")
    second = parse_document("<c><d>two</d></c>", uri="two.xml")
    freeze_to(first, tmp_path / "one.xcol")
    freeze_to(second, tmp_path / "two.xcol")
    pool = BufferPool(budget_bytes=1 << 20)
    with ColumnStore.open(tmp_path / "one.xcol", pool=pool) as s1, \
            ColumnStore.open(tmp_path / "two.xcol", pool=pool) as s2:
        assert list(s1.document.names) == list(first.names)
        assert list(s2.document.names) == list(second.names)
        assert s1.pool is s2.pool is pool


# ---------------------------------------------------------------------------
# Columnar vs. naive walker, in memory and spilled
# ---------------------------------------------------------------------------

_AXIS_TESTS = [("child", "a"), ("child", "*"), ("child", "node()"),
               ("descendant", "b"), ("descendant-or-self", "*"),
               ("attribute", "at0"), ("attribute", "*"),
               ("self", "node()"), ("descendant", "text()")]


@given(doc=xml_trees(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_spilled_axis_scans_equal_in_memory_and_naive(
        doc, data, tmp_path_factory):
    path = tmp_path_factory.mktemp("equiv") / "doc.xcol"
    freeze_to(doc, path)
    axis, test = data.draw(st.sampled_from(_AXIS_TESTS))
    context_pres = sorted(data.draw(
        st.sets(st.integers(0, len(doc) - 1), max_size=6)))
    env = DynamicContext()
    step = Step(axis, test)
    naive = Evaluator(use_index=False)._apply_step(
        step, [Node(doc, p) for p in context_pres], env)
    expected = [n.pre for n in naive]
    assert axis in INDEXED_AXES
    in_memory = structural_index(doc).axis_scan(axis, test, context_pres)
    assert list(in_memory) == expected
    with ColumnStore.open(path, budget_bytes=8192) as store:
        spilled = structural_index(store.document).axis_scan(
            axis, test, context_pres)
        assert list(spilled) == expected


# ---------------------------------------------------------------------------
# Federated end-to-end over a spilled corpus
# ---------------------------------------------------------------------------


def test_benchmark_over_spilled_corpus_all_strategies(tmp_path):
    baseline = build_federation(0.005).run(
        BENCHMARK_QUERY, at="local", strategy=Strategy.DATA_SHIPPING)
    spilled = build_spilled_federation(0.005, tmp_path,
                                       budget_bytes=256 * 1024)
    for strategy in list(Strategy) + ["auto"]:
        result = spilled.run(BENCHMARK_QUERY, at="local", strategy=strategy)
        assert sequences_deep_equal(result.items, baseline.items), strategy
    people = spilled.peer("peer1").documents["people.xml"]
    stats = people.columns.store.pool.stats()
    assert stats["misses"] > 0
    assert stats["cached_bytes"] <= 256 * 1024 or stats["evictions"] > 0


def test_spilled_pair_matches_generated_pair(tmp_path):
    from repro.xmark import generate_pair, spill_pair

    people_path, auctions_path = spill_pair(0.004, tmp_path, seed=11)
    people, auctions = generate_pair(0.004, seed=11)
    for path, doc in ((people_path, people), (auctions_path, auctions)):
        reopened = open_document(path)
        try:
            assert serialize_node(reopened.root) == serialize_node(doc.root)
        finally:
            reopened.columns.store.close()
