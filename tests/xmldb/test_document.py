"""Unit tests for the pre/size/level store and its builder."""

import pytest

from repro.errors import XmlError
from repro.xmldb.document import Document, DocumentBuilder, \
    build_fragment_from_nodes
from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_document


def build_simple():
    builder = DocumentBuilder("t.xml")
    builder.start_document()
    builder.start_element("a")
    builder.attribute("x", "1")
    builder.start_element("b")
    builder.text("hello")
    builder.end_element()
    builder.start_element("c")
    builder.end_element()
    builder.end_element()
    builder.end_document()
    return builder.finish()


class TestBuilder:
    def test_sizes_are_descendant_counts(self):
        doc = build_simple()
        # doc node spans everything below it
        assert doc.sizes[0] == len(doc) - 1
        a = doc.node(1)
        assert a.name == "a"
        assert a.size == len(doc) - 2  # everything except doc node + a

    def test_levels(self):
        doc = build_simple()
        assert doc.levels[0] == 0
        assert doc.node(1).level == 1      # a
        assert doc.node(2).level == 2      # @x
        assert doc.node(3).level == 2      # b

    def test_parents(self):
        doc = build_simple()
        assert doc.node(1).parent().kind == NodeKind.DOCUMENT
        assert doc.node(2).parent().name == "a"
        assert doc.root.parent() is None

    def test_attribute_after_content_rejected(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.text("x")
        with pytest.raises(XmlError):
            builder.attribute("late", "1")

    def test_attribute_outside_element_rejected(self):
        builder = DocumentBuilder()
        with pytest.raises(XmlError):
            builder.attribute("x", "1")

    def test_unbalanced_rejected(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        with pytest.raises(XmlError):
            builder.finish()

    def test_double_finish_rejected(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.end_element()
        builder.finish()
        with pytest.raises(XmlError):
            builder.finish()

    def test_adjacent_text_merged(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.text("one")
        builder.text(" two")
        builder.end_element()
        doc = builder.finish()
        texts = [doc.values[p] for p in range(len(doc))
                 if doc.kinds[p] == NodeKind.TEXT]
        assert texts == ["one two"]

    def test_empty_text_skipped(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.text("")
        builder.end_element()
        assert len(builder.finish()) == 1

    def test_fragment_has_no_document_node(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.end_element()
        doc = builder.finish()
        assert doc.is_fragment
        assert doc.root.kind == NodeKind.ELEMENT


class TestCopySubtree:
    def test_copy_creates_fresh_identity(self):
        source = build_simple()
        b = next(n for n in source.nodes() if n.name == "b")
        builder = DocumentBuilder("copy")
        builder.copy_subtree(b)
        copy_doc = builder.finish()
        assert copy_doc.root.name == "b"
        assert copy_doc.root != b  # identity differs
        assert copy_doc.root.string_value() == b.string_value()

    def test_copy_preserves_structure(self):
        source = build_simple()
        a = source.node(1)
        builder = DocumentBuilder("copy")
        builder.copy_subtree(a)
        copy_doc = builder.finish()
        assert copy_doc.sizes[0] == a.size
        assert copy_doc.names[0] == "a"
        # Attribute came along.
        assert copy_doc.kinds[1] == NodeKind.ATTRIBUTE
        assert copy_doc.values[1] == "1"

    def test_copy_levels_rebased(self):
        source = build_simple()
        b = next(n for n in source.nodes() if n.name == "b")
        builder = DocumentBuilder("copy")
        builder.start_element("wrap")
        builder.copy_subtree(b)
        builder.end_element()
        doc = builder.finish()
        assert doc.levels[0] == 0   # wrap
        assert doc.levels[1] == 1   # b
        assert doc.levels[2] == 2   # text


class TestIdIndex:
    def test_element_by_id(self):
        doc = parse_document('<r><p id="p1"/><p id="p2"/></r>')
        assert doc.element_by_id("p1").name == "p"
        assert doc.element_by_id("missing") is None

    def test_idref_heuristic(self):
        doc = parse_document(
            '<r><a person="p1"/><p id="p1"/><b ref="p1"/></r>')
        owners = {n.name for n in doc.elements_by_idref("p1")}
        assert owners == {"a", "b"}


class TestFragmentFromNodes:
    def test_single_element_becomes_root(self):
        doc = parse_document("<r><a><b/></a></r>")
        a = next(n for n in doc.nodes() if n.name == "a")
        frag = build_fragment_from_nodes("f", [a])
        assert frag.root.name == "a"

    def test_multiple_nodes_wrapped(self):
        doc = parse_document("<r><a/><b/></r>")
        nodes = [n for n in doc.nodes() if n.name in ("a", "b")]
        frag = build_fragment_from_nodes("f", nodes)
        assert frag.root.name == "xrpc:sequence"
        assert frag.sizes[0] == 2


class TestDocument:
    def test_empty_rejected(self):
        with pytest.raises(XmlError):
            Document("u", [], [], [], [], [], [])

    def test_node_range_checked(self):
        doc = build_simple()
        with pytest.raises(XmlError):
            doc.node(999)

    def test_doc_seq_monotonic(self):
        first = build_simple()
        second = build_simple()
        assert second.doc_seq > first.doc_seq
