"""Serializer unit tests: escaping, node kinds, attribute handling."""

from repro.xmldb import axes
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import (
    escape_attribute, escape_text, serialize, serialize_node,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == \
            "say &quot;hi&quot; &amp; <go>".replace("<go>", "&lt;go>")

    def test_text_keeps_quotes(self):
        assert escape_text('"quoted"') == '"quoted"'


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert serialize(parse_document("<a/>")) == "<a/>"

    def test_attributes_in_order(self):
        assert serialize(parse_document('<a b="1" c="2"/>')) == \
            '<a b="1" c="2"/>'

    def test_mixed_content(self):
        xml = "<a>one<b>two</b>three</a>"
        assert serialize(parse_document(xml)) == xml

    def test_comment_and_pi(self):
        xml = "<a><!--note--><?pi data?></a>"
        assert serialize(parse_document(xml)) == xml

    def test_serialize_subtree(self):
        doc = parse_document("<a><b><c/></b></a>")
        b = next(n for n in doc.nodes() if n.name == "b")
        assert serialize_node(b) == "<b><c/></b>"

    def test_serialize_text_node(self):
        doc = parse_document("<a>x &amp; y</a>")
        text = next(axes.axis_step(doc.node(1), "child", "text()"))
        assert serialize_node(text) == "x &amp; y"

    def test_serialize_attribute_gives_value(self):
        doc = parse_document('<a x="v"/>')
        attr = next(axes.attribute(doc.node(1)))
        assert serialize_node(attr) == "v"
