"""Property-based tests on the XML store (hypothesis).

Invariants checked on randomly generated trees:

* parse(serialize(doc)) is deep-equal to doc (round-trip);
* the pre/size/level encoding is self-consistent;
* parent/child are inverse axes;
* ancestor interval containment matches the axis walk;
* following/preceding/ancestor-or-self/descendant-or-self partition
  the non-attribute nodes of a document.
"""

from hypothesis import given, settings, strategies as st

from repro.xmldb import axes
from repro.xmldb.compare import deep_equal, sort_document_order
from repro.xmldb.document import DocumentBuilder
from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_fragment
from repro.xmldb.serializer import serialize_node

_names = st.sampled_from(["a", "b", "c", "data", "x1", "n-s.t"])
_texts = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           whitelist_characters=" <>&\"'"),
    min_size=1, max_size=12)


@st.composite
def xml_trees(draw, depth=3):
    """Build a random fragment document directly with the builder."""
    builder = DocumentBuilder("prop.xml")

    def element(level: int) -> None:
        builder.start_element(draw(_names))
        for index in range(draw(st.integers(0, 2))):
            builder.attribute(f"at{index}", draw(_texts))
        for _ in range(draw(st.integers(0, 3 if level < depth else 0))):
            if draw(st.booleans()):
                element(level + 1)
            else:
                builder.text(draw(_texts))

        builder.end_element()

    element(0)
    return builder.finish()


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_serialize_parse_roundtrip(doc):
    text = serialize_node(doc.root)
    reparsed = parse_fragment(text)
    assert deep_equal(doc.root, reparsed.root)
    assert serialize_node(reparsed.root) == text


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_pre_size_level_consistency(doc):
    for pre in range(len(doc)):
        parent = doc.parents[pre]
        if parent < 0:
            assert doc.levels[pre] == 0
        else:
            assert doc.levels[pre] == doc.levels[parent] + 1
            assert parent < pre <= parent + doc.sizes[parent]
        # size covers exactly the contiguous subtree
        end = pre + doc.sizes[pre]
        assert end < len(doc)
        if end + 1 < len(doc):
            assert doc.levels[end + 1] <= doc.levels[pre]


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_parent_child_inverse(doc):
    for node in doc.nodes():
        for child in axes.child(node):
            assert child.parent() == node
        for attr in axes.attribute(node):
            assert attr.parent() == node


@given(xml_trees())
@settings(max_examples=60, deadline=None)
def test_ancestor_matches_interval_test(doc):
    nodes = list(doc.nodes())
    for node in nodes:
        ancestors_by_axis = set(axes.ancestor(node))
        for other in nodes:
            if other.kind == NodeKind.ATTRIBUTE:
                continue
            expected = other.is_ancestor_of(node)
            assert (other in ancestors_by_axis) == expected


@given(xml_trees())
@settings(max_examples=40, deadline=None)
def test_axes_partition_document(doc):
    """self + ancestors + descendants + preceding + following covers
    every non-attribute node exactly once."""
    all_nodes = [n for n in doc.nodes() if n.kind != NodeKind.ATTRIBUTE]
    for node in all_nodes:
        if node.kind == NodeKind.ATTRIBUTE:
            continue
        parts = (
            [node]
            + list(axes.ancestor(node))
            + list(axes.descendant(node))
            + list(axes.preceding(node))
            + list(axes.following(node))
        )
        assert sorted(parts, key=lambda n: n.pre) == all_nodes


@given(xml_trees(), xml_trees())
@settings(max_examples=40, deadline=None)
def test_document_order_total(left, right):
    nodes = list(left.nodes()) + list(right.nodes())
    ordered = sort_document_order(nodes)
    keys = [n.order_key() for n in ordered]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
