"""Value-index units: typed probes, laziness, LRU caps, invalidation."""

import pytest

from repro.xmldb.document import DEFAULT_MEMO_CACHE_CAP
from repro.xmldb.node import Node
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.serializer import serialize_node
from repro.xmldb.values import (
    coerce_number, iter_leaf_values, node_string, value_index,
)

DOC = """<shop>
 <item id="a1" grade="7"><price>10</price><name>axe</name></item>
 <item id="a2"><price>25.5</price><name>bow</name></item>
 <item id="a3" grade="3"><price>n/a</price><name>cord</name></item>
 <item id="a4"><price>7</price><name>axe</name></item>
</shop>"""


@pytest.fixture
def doc():
    return parse_document(DOC, uri="shop.xml")


def pres_of(doc, name):
    return [n.pre for n in doc.nodes()
            if n.name == name and n.kind.name == "ELEMENT"]


class TestProbes:
    def test_string_equality(self, doc):
        matched = value_index(doc).probe("name", "=", "axe")
        assert [node_string(doc, p) for p in matched] == ["axe", "axe"]
        assert list(matched) == sorted(matched)

    def test_string_inequality_is_complement(self, doc):
        index = value_index(doc)
        equal = index.probe("name", "=", "axe")
        unequal = index.probe("name", "!=", "axe")
        assert sorted(equal + unequal) == pres_of(doc, "name")

    def test_numeric_range(self, doc):
        index = value_index(doc)
        below = index.probe("price", "<", 11)
        assert sorted(node_string(doc, p) for p in below) == ["10", "7"]
        at_least = index.probe("price", ">=", 10)
        assert sorted(node_string(doc, p) for p in at_least) == \
            ["10", "25.5"]

    def test_numeric_inequality_includes_nan_values(self, doc):
        # "n/a" coerces to NaN and NaN != 10 is true.
        unequal = value_index(doc).probe("price", "!=", 10)
        assert sorted(node_string(doc, p) for p in unequal) == \
            ["25.5", "7", "n/a"]

    def test_nan_probe_matches_only_inequality(self, doc):
        index = value_index(doc)
        assert list(index.probe("price", "=", float("nan"))) == []
        assert list(index.probe("price", "<", float("nan"))) == []
        unequal = index.probe("price", "!=", float("nan"))
        assert len(unequal) == 4

    def test_attribute_column(self, doc):
        index = value_index(doc)
        assert len(index.probe("@id", "=", "a2")) == 1
        assert len(index.probe("@grade", ">", 5)) == 1
        assert list(index.attribute_pres("grade")) == \
            sorted(index.attribute_pres("grade"))

    def test_unknown_key_is_empty(self, doc):
        assert list(value_index(doc).probe("missing", "=", "x")) == []

    def test_boolean_probe_unsupported(self, doc):
        assert value_index(doc).probe("name", "=", True) is None

    def test_element_value_is_string_value(self):
        doc = parse_fragment("<a><b>1<c>2</c>3</b></a>", uri="f")
        matched = value_index(doc).probe("b", "=", "123")
        assert len(matched) == 1


class TestCaching:
    def test_index_cached_until_epoch_moves(self, doc):
        first = value_index(doc)
        assert value_index(doc) is first
        doc.invalidate_caches()
        rebuilt = value_index(doc)
        assert rebuilt is not first

    def test_mutation_with_invalidation_reprobes(self, doc):
        index = value_index(doc)
        target = index.probe("name", "=", "bow")[0]
        doc.values[target + 1] = "sling"   # the text node under <name>
        doc.invalidate_caches()
        assert list(value_index(doc).probe("name", "=", "bow")) == []
        assert len(value_index(doc).probe("name", "=", "sling")) == 1

    def test_default_cap_exposed(self, doc):
        assert doc.memo_cache_cap == DEFAULT_MEMO_CACHE_CAP

    def test_column_lru_bounded_by_cap(self, doc):
        doc.memo_cache_cap = 2
        index = value_index(doc)
        for key in ("name", "price", "@id", "@grade", "item"):
            index.probe(key, "=", "x")
        assert index.cached_columns() <= 2
        # Evicted columns rebuild transparently with correct answers.
        assert len(index.probe("name", "=", "axe")) == 2

    def test_serializer_memo_bounded_by_cap(self, doc):
        doc.memo_cache_cap = 3
        items = pres_of(doc, "item") + pres_of(doc, "name")
        texts = [serialize_node(Node(doc, pre)) for pre in items]
        memo = doc._ser_cache.memo
        assert len(memo) <= 3
        # Re-serialisation after eviction still agrees.
        assert [serialize_node(Node(doc, pre)) for pre in items] == texts


class TestHelpers:
    def test_coerce_number(self):
        assert coerce_number(" 42 ") == 42.0
        assert coerce_number("abc") != coerce_number("abc")  # NaN

    def test_iter_leaf_values_covers_attrs_and_leaves(self, doc):
        pairs = list(iter_leaf_values(doc))
        keys = {key for key, _value in pairs}
        assert "@id" in keys and "price" in keys and "name" in keys
        # Container elements (shop, item) are not histogram material.
        assert "shop" not in keys and "item" not in keys
        assert ("name", "axe") in pairs

    def test_node_string_kinds(self):
        doc = parse_document('<a x="v"><!--c-->text</a>', uri="k")
        by_kind = {node.kind.name: node.pre for node in doc.nodes()}
        assert node_string(doc, by_kind["ATTRIBUTE"]) == "v"
        assert node_string(doc, by_kind["COMMENT"]) == "c"
        assert node_string(doc, by_kind["TEXT"]) == "text"
        assert node_string(doc, by_kind["ELEMENT"]) == "text"
