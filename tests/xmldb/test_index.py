"""The structural index and the memoized serializer.

Covers the tag/kind arrays, the path-summary chain matcher, nodeid
ranks, scan-vs-naive-axis agreement on a handcrafted document, cache
epochs (in-place invalidation), and the store-mutation safety the
acceptance criteria require: after a ``Peer.store`` no stale index,
serialisation, or statistic is ever served.
"""

import pytest

from repro.xmldb import axes
from repro.xmldb.index import (
    INDEXED_AXES, structural_index, supported_test,
)
from repro.xmldb.node import Node, NodeKind
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.serializer import (
    serialize, serialize_node, serialized_byte_length, subtree_spans,
)

DOC_XML = ('<site><people><person id="p0"><name>Ann</name>'
           '<age>31</age></person><person id="p1"><name>Bob</name>'
           "<watches><watch/></watches></person></people>"
           "<regions><asia><item id=\"i0\"><name>thing</name></item>"
           "</asia></regions><!--note--></site>")


@pytest.fixture
def doc():
    return parse_document(DOC_XML, uri="index.xml")


class TestIndexStructures:
    def test_tag_index_sorted_and_complete(self, doc):
        index = structural_index(doc)
        for name, pres in index.tag_pres.items():
            assert list(pres) == sorted(pres)
            for pre in pres:
                assert doc.kinds[pre] == NodeKind.ELEMENT
                assert doc.names[pre] == name
        total = sum(len(pres) for pres in index.tag_pres.values())
        assert total == len(index.element_pres)

    def test_index_is_cached_on_document(self, doc):
        assert structural_index(doc) is structural_index(doc)

    def test_kind_arrays_partition_non_attributes(self, doc):
        index = structural_index(doc)
        kinds = {pre: doc.kinds[pre] for pre in range(len(doc))}
        assert list(index.text_pres) == [
            p for p, k in kinds.items() if k == NodeKind.TEXT]
        assert list(index.comment_pres) == [
            p for p, k in kinds.items() if k == NodeKind.COMMENT]
        assert list(index.non_attr_pres) == [
            p for p, k in kinds.items() if k != NodeKind.ATTRIBUTE]

    def test_nodeid_matches_enumeration(self, doc):
        index = structural_index(doc)
        root = 1  # the site element
        expected = 0
        for pre in range(root, len(doc)):
            if doc.kinds[pre] == NodeKind.ATTRIBUTE:
                continue
            expected += 1
            assert index.nodeid(root, pre) == expected

    def test_path_summary_disjoint_and_exhaustive(self, doc):
        index = structural_index(doc)
        seen = []
        for pres in index.path_pres:
            seen.extend(pres)
        assert sorted(seen) == list(index.element_pres)

    def test_supported_tests(self):
        assert supported_test("node()")
        assert supported_test("person")
        assert supported_test("*")
        assert not supported_test("processing-instruction()")


class TestChainMatching:
    def expected(self, doc, names):
        return [pre for pre in range(len(doc))
                if doc.kinds[pre] == NodeKind.ELEMENT
                and doc.names[pre] in names]

    def test_descendant_chain(self, doc):
        index = structural_index(doc)
        pres = index.match_chain([("descendant", "name")])
        assert list(pres) == self.expected(doc, {"name"})

    def test_child_chain_distinguishes_paths(self, doc):
        index = structural_index(doc)
        # //person/name must not match the item's name.
        pres = index.match_chain([("descendant", "person"),
                                  ("child", "name")])
        names = [Node(doc, pre) for pre in pres]
        assert [n.string_value() for n in names] == ["Ann", "Bob"]

    def test_anchored_child_chain(self, doc):
        index = structural_index(doc)
        pres = index.match_chain([("child", "site"), ("child", "people"),
                                  ("child", "person")])
        assert len(pres) == 2

    def test_star_steps(self, doc):
        index = structural_index(doc)
        everything = index.match_chain([("descendant", "*")])
        assert everything == index.element_pres

    def test_fragment_root_is_anchor_not_match(self):
        frag = parse_fragment("<a><a><b/></a></a>")
        index = structural_index(frag)
        # child::a from the fragment root: only the inner a.
        assert list(index.match_chain([("child", "a")])) == [1]
        # descendant::a likewise excludes the root itself.
        assert list(index.match_chain([("descendant", "a")])) == [1]

    def test_leaf_fragment_matches_nothing(self):
        from repro.xmldb.document import Document
        leaf = Document("leaf", [NodeKind.TEXT], [""], ["hi"], [0], [0], [-1])
        assert list(structural_index(leaf).match_chain([("child", "a")])) == []


class TestAxisScansAgainstNaive:
    @pytest.mark.parametrize("axis", sorted(INDEXED_AXES))
    @pytest.mark.parametrize("test", ["node()", "*", "name", "id",
                                      "text()", "comment()"])
    def test_scan_equals_axis_walk(self, doc, axis, test):
        index = structural_index(doc)
        for pre in range(len(doc)):
            naive = [n.pre for n in
                     axes.axis_step(Node(doc, pre), axis, test)]
            assert list(index.axis_scan(axis, test, [pre])) == sorted(naive)

    def test_set_at_a_time_merges_nested_contexts(self, doc):
        index = structural_index(doc)
        context = index.tag_pres["site"] + index.tag_pres["person"]
        result = index.axis_scan("descendant", "name", sorted(context))
        assert list(result) == sorted(set(result))
        naive = set()
        for pre in context:
            naive.update(n.pre for n in
                         axes.axis_step(Node(doc, pre), "descendant",
                                        "name"))
        assert list(result) == sorted(naive)


class TestSerializerMemoization:
    def test_full_serialization_is_memoized(self, doc):
        first = serialize(doc)
        assert serialize(doc) is first
        assert serialized_byte_length(doc) == len(first.encode())

    def test_subtree_slices_equal_walks(self, doc):
        fresh = parse_document(DOC_XML, uri="fresh.xml")
        walked = [serialize_node(Node(fresh, pre))
                  for pre in range(len(fresh))]
        serialize(doc)  # builds the span table
        for pre in range(len(doc)):
            assert serialize_node(Node(doc, pre)) == walked[pre]

    def test_subtree_memo_before_full(self, doc):
        person = structural_index(doc).tag_pres["person"][0]
        text = serialize_node(Node(doc, person))
        assert serialize_node(Node(doc, person)) is text
        assert "<name>Ann</name>" in text

    def test_spans_report_exact_subtree_lengths(self, doc):
        full = serialize(doc)
        starts, ends = subtree_spans(doc)
        assert ends[0] - starts[0] == len(full)
        for pre in range(len(doc)):
            assert ends[pre] - starts[pre] == len(serialize_node(
                Node(doc, pre)))

    def test_escaping_roundtrip_through_slices(self):
        doc = parse_document('<a b="x&amp;&quot;y"><t>1 &lt; 2 &amp; 3</t>'
                             "</a>", uri="esc.xml")
        serialize(doc)
        for pre in range(len(doc)):
            reference = parse_document(
                '<a b="x&amp;&quot;y"><t>1 &lt; 2 &amp; 3</t></a>')
            assert serialize_node(Node(doc, pre)) == serialize_node(
                Node(reference, pre))


class TestInvalidation:
    def test_invalidate_caches_bumps_epoch_and_rebuilds(self, doc):
        index = structural_index(doc)
        text = serialize(doc)
        # In-place mutation (not something the code base does, but the
        # contract the caches defend against): rename an element.
        person = index.tag_pres["person"][0]
        doc.names[person] = "ghost"
        doc.invalidate_caches()
        rebuilt = structural_index(doc)
        assert rebuilt is not index
        assert "ghost" in rebuilt.tag_pres
        assert "<ghost" in serialize(doc)
        assert text.startswith("<site>")

    def test_store_mutation_serves_fresh_index_and_stats(self):
        """The acceptance-criteria store-mutation test: store() swaps
        the document object, so index, serialisation and statistics
        all reflect the new content with no explicit invalidation."""
        from repro.planner.stats import StatsCatalog
        from repro.system.federation import Federation

        federation = Federation()
        peer = federation.add_peer("A")
        peer.store("d.xml", "<people><person/><person/></people>")
        federation.add_peer("local")
        catalog = StatsCatalog()
        catalog.attach(federation)

        query = 'count(doc("xrpc://A/d.xml")//person)'
        assert federation.run(query, at="local").items == [2]
        before = catalog.document_stats("A", "d.xml")
        assert before.tag("person").count == 2
        version = catalog.version()

        peer.store("d.xml", "<people><person/></people>")
        assert federation.run(query, at="local").items == [1]
        after = catalog.document_stats("A", "d.xml")
        assert after.tag("person").count == 1
        assert catalog.version() > version
        assert "person" in peer.serialized("d.xml")
