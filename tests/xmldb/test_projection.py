"""Runtime XML projection (Algorithm 1), including the paper's
Figure 6 worked example."""

import pytest

from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.projection import project
from repro.xmldb.serializer import serialize_node

from tests.conftest import FIG6_XML


def by_name(doc, name):
    return next(n for n in doc.nodes() if n.name == name)


class TestFigure6:
    """U = {i}, R = {d, k} on the Figure 6(a) tree must produce
    exactly the Figure 6(b) tree."""

    def test_exact_paper_example(self):
        doc = parse_fragment(FIG6_XML)
        result = project(used=[by_name(doc, "i")],
                         returned=[by_name(doc, "d"), by_name(doc, "k")])
        assert serialize_node(result.doc.root) == (
            "<b><c><d><e/><f/></d></c>"
            "<g><h><i/></h><j><k><l/><m/></k></j></g></b>")

    def test_post_processing_trims_to_lca(self):
        # 'a' has a single kept child and is not a projection node, so
        # the projected root is 'b' (lines 24-27 of Algorithm 1).
        doc = parse_fragment(FIG6_XML)
        result = project(used=[by_name(doc, "i")],
                         returned=[by_name(doc, "d")])
        assert result.doc.root.name == "b"

    def test_precision_counts(self):
        doc = parse_fragment(FIG6_XML)
        result = project(used=[by_name(doc, "i")],
                         returned=[by_name(doc, "d"), by_name(doc, "k")])
        assert result.total == 15
        assert result.kept == 12


class TestBehaviour:
    def test_empty_inputs_give_none(self, fig6_doc):
        assert project([], []) is None

    def test_used_node_keeps_no_descendants(self):
        doc = parse_fragment("<a><b><c/><d/></b></a>")
        result = project(used=[by_name(doc, "b")], returned=[])
        assert serialize_node(result.doc.root) == "<b/>"

    def test_returned_node_keeps_subtree(self):
        doc = parse_fragment("<a><b><c/><d/></b></a>")
        result = project(used=[], returned=[by_name(doc, "b")])
        assert serialize_node(result.doc.root) == "<b><c/><d/></b>"

    def test_ancestors_preserved(self):
        doc = parse_fragment("<a><b><c><d/></c></b><e/></a>")
        result = project(used=[by_name(doc, "d")],
                         returned=[by_name(doc, "e")])
        # LCA is 'a'; the chain down to d is kept without siblings.
        assert serialize_node(result.doc.root) == \
            "<a><b><c><d/></c></b><e/></a>"

    def test_pre_map_translates_kept_nodes(self):
        doc = parse_fragment(FIG6_XML)
        i = by_name(doc, "i")
        result = project(used=[i], returned=[])
        new_node = result.doc.node(result.pre_map[i.pre])
        assert new_node.name == "i"

    def test_single_node_projection(self):
        doc = parse_fragment("<a><b/></a>")
        result = project(used=[by_name(doc, "b")], returned=[])
        assert result.doc.root.name == "b"
        assert len(result.doc) == 1

    def test_attributes_dropped_by_default(self):
        doc = parse_fragment('<a q="1"><b r="2"><c/></b></a>')
        c = by_name(doc, "c")
        result = project(used=[c], returned=[])
        kinds = set(result.doc.kinds)
        assert NodeKind.ATTRIBUTE not in kinds

    def test_keep_attributes_variant(self):
        # Two projection nodes keep the ancestor b (it is the LCA), so
        # the schema-aware variant retains b's attribute.
        doc = parse_fragment('<a q="1"><b r="2"><c/><d/></b></a>')
        result = project(used=[by_name(doc, "c"), by_name(doc, "d")],
                         returned=[], keep_attributes=True)
        assert result.doc.root.name == "b"
        assert any(result.doc.kinds[p] == NodeKind.ATTRIBUTE
                   for p in range(len(result.doc)))

    def test_keep_attributes_off_by_default(self):
        doc = parse_fragment('<a q="1"><b r="2"><c/><d/></b></a>')
        result = project(used=[by_name(doc, "c"), by_name(doc, "d")],
                         returned=[])
        assert all(result.doc.kinds[p] != NodeKind.ATTRIBUTE
                   for p in range(len(result.doc)))

    def test_mixed_document_and_fragment_inputs_rejected(self):
        left = parse_fragment("<a><b/></a>")
        right = parse_fragment("<a><b/></a>")
        with pytest.raises(Exception):
            project(used=[by_name(left, "b")],
                    returned=[by_name(right, "b")])

    def test_document_rooted_input(self):
        doc = parse_document("<a><b><c/></b></a>")
        result = project(used=[by_name(doc, "c")], returned=[])
        # The document node is never the projected root.
        assert result.doc.kinds[0] != NodeKind.DOCUMENT

    def test_sizes_and_levels_consistent(self):
        doc = parse_fragment(FIG6_XML)
        result = project(used=[by_name(doc, "i")],
                         returned=[by_name(doc, "d"), by_name(doc, "k")])
        out = result.doc
        for pre in range(len(out)):
            parent = out.parents[pre]
            if parent >= 0:
                assert out.levels[pre] == out.levels[parent] + 1
                assert parent < pre <= parent + out.sizes[parent]
