"""Planner correctness: ``strategy="auto"`` must be value-identical to
every fixed strategy — whatever plan it picks, on the library corpus
and the XMark benchmark documents, single-owner and sharded."""

import pytest

from repro.decompose import Strategy
from repro.system.federation import Federation
from repro.workloads import (
    BENCHMARK_QUERY, MIXED_CROSS_QUERY, SHARDED_BENCHMARK_QUERY,
    SHARDED_SCAN_QUERY, TINY_LOOKUP_QUERY, build_federation,
    build_mixed_federation, build_sharded_federation,
)
from repro.xquery.xdm import sequences_deep_equal

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML
from tests.integration.test_equivalence import QUERIES


@pytest.fixture(scope="module")
def library_federation():
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


@pytest.mark.parametrize("query", QUERIES)
def test_auto_matches_fixed_on_library_corpus(library_federation, query):
    baseline = library_federation.run(query, at="local",
                                      strategy=Strategy.DATA_SHIPPING)
    auto = library_federation.run(query, at="local", strategy="auto")
    assert auto.stats.plan is not None
    assert sequences_deep_equal(baseline.items, auto.items), (
        f"auto (plan {auto.stats.plan.strategy}) diverges on {query!r}")
    for strategy in (Strategy.BY_VALUE, Strategy.BY_FRAGMENT,
                     Strategy.BY_PROJECTION):
        fixed = library_federation.run(query, at="local",
                                       strategy=strategy)
        assert sequences_deep_equal(fixed.items, auto.items)


def test_auto_matches_fixed_on_xmark_corpus():
    federation = build_federation(0.005)
    baseline = federation.run(BENCHMARK_QUERY, at="local",
                              strategy=Strategy.DATA_SHIPPING)
    auto = federation.run(BENCHMARK_QUERY, at="local", strategy="auto")
    assert sequences_deep_equal(baseline.items, auto.items)


@pytest.mark.parametrize("query", [SHARDED_BENCHMARK_QUERY,
                                   SHARDED_SCAN_QUERY])
def test_auto_matches_fixed_on_sharded_cluster(query):
    federation = build_sharded_federation(0.003, shard_count=3)
    baseline = federation.run(query, at="local",
                              strategy=Strategy.DATA_SHIPPING)
    auto = federation.run(query, at="local", strategy="auto")
    assert auto.stats.plan is not None
    assert sequences_deep_equal(baseline.items, auto.items)


@pytest.mark.parametrize("query", [TINY_LOOKUP_QUERY, MIXED_CROSS_QUERY])
def test_auto_matches_fixed_on_mixed_workload_queries(query):
    federation = build_mixed_federation(0.005)
    baseline = federation.run(query, at="local",
                              strategy=Strategy.DATA_SHIPPING)
    auto = federation.run(query, at="local", strategy="auto")
    assert sequences_deep_equal(baseline.items, auto.items)


def test_property_auto_equivalence_random_documents():
    """Property-style: on random rosters the auto plan (whatever it
    picks, however calibration has drifted) stays deep-equal to the
    data-shipping baseline."""
    from hypothesis import given, settings, strategies as st

    @st.composite
    def rosters(draw):
        count = draw(st.integers(2, 6))
        persons = []
        for index in range(count):
            tutor = draw(st.integers(0, count - 1))
            persons.append(
                f"<person><name>n{index}</name>"
                f"<tutor>n{tutor}</tutor><id>s{index}</id></person>")
        exams = "".join(
            f'<exam id="s{draw(st.integers(0, count - 1))}">'
            f"<grade>g{i}</grade></exam>"
            for i in range(draw(st.integers(1, 5))))
        return (f"<people>{''.join(persons)}</people>",
                f"<enroll>{exams}</enroll>")

    @given(rosters())
    @settings(max_examples=10, deadline=None)
    def check(pair):
        students, course = pair
        federation = Federation()
        federation.add_peer("A").store("students.xml", students)
        federation.add_peer("B").store("course42.xml", course)
        federation.add_peer("local")
        baseline = federation.run(Q2, at="local",
                                  strategy=Strategy.DATA_SHIPPING)
        for _ in range(2):   # second run exercises the plan cache
            auto = federation.run(Q2, at="local", strategy="auto")
            assert sequences_deep_equal(baseline.items, auto.items)

    check()
