"""StatsCatalog: histograms, laziness, and store invalidation."""

from repro.planner.stats import (
    StatsCatalog, compute_document_stats, merge_document_stats,
)
from repro.system.federation import Federation
from repro.workloads import build_sharded_federation
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize

DOC = ("<people><person><name>Ann</name><age>30</age></person>"
       '<person id="p2"><name>Bob</name></person></people>')


def make_federation() -> Federation:
    federation = Federation()
    federation.add_peer("A").store("people.xml", DOC)
    federation.add_peer("local")
    return federation


class TestComputeDocumentStats:
    def test_counts_and_exact_bytes(self):
        document = parse_document(DOC, uri="t.xml")
        exact = len(serialize(document).encode())
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=exact)
        assert stats.serialized_bytes == exact
        assert stats.elements == 6          # people, 2 person, 2 name, age
        assert stats.tag("person").count == 2
        assert stats.tag("name").count == 2
        assert stats.tag("@id").count == 1
        assert stats.tag("#text").count == 3

    def test_subtree_bytes_sum_to_document(self):
        document = parse_document(DOC, uri="t.xml")
        exact = len(serialize(document).encode())
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=exact)
        # The root element's subtree covers (almost exactly) the
        # serialised document.
        root = stats.tag("people")
        assert abs(root.subtree_bytes - exact) <= 2
        # Children partition their parent.
        persons = stats.tag("person")
        assert persons.subtree_bytes < root.subtree_bytes

    def test_merge_aggregates(self):
        document = parse_document(DOC, uri="t.xml")
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=100)
        merged = merge_document_stats([stats, stats], uri="m.xml")
        assert merged.serialized_bytes == 200
        assert merged.tag("person").count == 4
        assert merged.elements == 12


class TestStatsCatalog:
    def test_lazy_lookup_and_caching(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        stats = catalog.document_stats("A", "people.xml")
        assert stats is not None and stats.tag("person").count == 2
        assert catalog.document_stats("A", "people.xml") is stats

    def test_missing_document_and_peer(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        assert catalog.document_stats("A", "nope.xml") is None
        assert catalog.document_stats("ghost", "people.xml") is None

    def test_store_invalidates_and_bumps_version(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        before = catalog.document_stats("A", "people.xml")
        version = catalog.version()
        federation.peer("A").store(
            "people.xml", "<people><person/></people>")
        assert catalog.version() > version
        after = catalog.document_stats("A", "people.xml")
        assert after is not before
        assert after.tag("person").count == 1

    def test_collection_stats_merge_shards(self):
        federation = build_sharded_federation(0.003, shard_count=3)
        catalog = StatsCatalog()
        catalog.attach(federation)
        merged = catalog.document_stats("people-c", "people.xml")
        assert merged is not None
        # The merged view must cover every member of every shard.
        spec = federation.catalog.get("people-c")
        members = sum(shard.members for shard in spec.shards)
        assert merged.tag("person").count == members

    def test_federation_planner_exposes_stats(self):
        federation = make_federation()
        stats = federation.planner.stats
        stats.attach(federation)
        assert stats.document_stats("A", "people.xml") is not None


class TestValueHistograms:
    def _stats(self):
        document = parse_document(DOC, uri="t.xml")
        return compute_document_stats(document, "t.xml",
                                      with_values=True)

    def test_disabled_by_default(self):
        document = parse_document(DOC, uri="t.xml")
        assert compute_document_stats(document, "t.xml").values is None

    def test_histogram_fields(self):
        stats = self._stats()
        ages = stats.value_histogram("age")
        assert ages.count == 1 and ages.numeric_count == 1
        assert ages.numeric_min == ages.numeric_max == 30.0
        names = stats.value_histogram("name")
        assert names.count == 2 and names.distinct == 2
        assert names.numeric_count == 0
        assert stats.value_histogram("@id").count == 1
        # Container elements carry no value histogram.
        assert stats.value_histogram("people") is None

    def test_selectivity_equality_and_range(self):
        from repro.planner.stats import ValueHistogram

        hist = ValueHistogram(count=100, distinct=50, numeric_count=100,
                              numeric_min=0.0, numeric_max=100.0,
                              buckets=(25, 25, 0, 0, 25, 0, 0, 25))
        assert abs(hist.selectivity("=", "x") - 0.02) < 1e-9
        assert 0.35 < hist.selectivity("<", 50) < 0.65
        low = hist.selectivity("<", 10)
        high = hist.selectivity("<", 90)
        assert low < high
        assert abs(hist.selectivity(">", 50)
                   + hist.selectivity("<=", 50) - 1.0) < 0.01
        # String range comparisons have no ordering statistics.
        assert hist.selectivity("<", "x") is None

    def test_histogram_merge(self):
        from repro.planner.stats import ValueHistogram

        a = ValueHistogram(count=10, distinct=10, numeric_count=10,
                           numeric_min=0.0, numeric_max=9.0,
                           buckets=(2, 1, 1, 1, 1, 1, 1, 2))
        b = ValueHistogram(count=10, distinct=10, numeric_count=10,
                           numeric_min=10.0, numeric_max=19.0,
                           buckets=(2, 1, 1, 1, 1, 1, 1, 2))
        merged = a.merged(b)
        assert merged.count == 20 and merged.numeric_count == 20
        assert merged.numeric_min == 0.0 and merged.numeric_max == 19.0
        assert sum(merged.buckets) == 20
        # Roughly half the mass below the midpoint.
        assert 0.3 < merged.selectivity("<", 9.5) < 0.7

    def test_catalog_upgrade_bumps_values_version(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        plain = catalog.document_stats("A", "people.xml")
        assert plain.values is None
        version = catalog.values_version()
        upgraded = catalog.document_stats("A", "people.xml",
                                          with_values=True)
        assert upgraded.values is not None
        assert catalog.values_version() == version + 1
        # Cached with values now; a value-less request reuses it.
        assert catalog.document_stats("A", "people.xml") is upgraded
        assert catalog.values_version() == version + 1

    def test_sharded_collection_merges_value_histograms(self):
        federation = build_sharded_federation(0.004, shard_count=2)
        catalog = StatsCatalog()
        catalog.attach(federation)
        stats = catalog.document_stats("people-c", "people.xml",
                                       with_values=True)
        ages = stats.value_histogram("age")
        assert ages is not None
        assert ages.count == stats.tag("age").count
        assert 18.0 <= ages.numeric_min < ages.numeric_max <= 70.0


class TestMeasuredSelectivity:
    def test_age_filter_prices_with_measured_selectivity(self):
        """The benchmark condition (age < 40 over ages uniform in
        [18, 70]) must price near the measured ~0.42, not the 0.5
        default — visible as the if-condition selectivity applied to
        the estimated response volume."""
        from repro.workloads import BENCHMARK_QUERY, build_federation

        federation = build_federation(0.01)
        planned = federation.planner.plan(BENCHMARK_QUERY, at="local",
                                          strategy="auto")
        catalog = federation.planner.stats
        stats = catalog.document_stats("peer1", "people.xml",
                                       with_values=True)
        ages = stats.value_histogram("age")
        measured = ages.selectivity("<", 40)
        assert 0.30 < measured < 0.55
        assert planned.plan.estimated_s > 0.0

    def test_plan_replanned_after_histograms_appear(self):
        """A plan priced before value histograms existed must not be
        served from the cache once they exist (values_version is part
        of the cache key)."""
        federation = make_federation()
        planner = federation.planner
        # No value comparisons: priced without histograms.
        no_values = 'doc("xrpc://A/people.xml")/child::people'
        planner.plan(no_values, at="local", strategy="auto")
        assert planner.stats.values_version() == 0
        # A predicate query builds histograms for the same document.
        with_values = ('doc("xrpc://A/people.xml")'
                       "//person[name = 'Ann']")
        planner.plan(with_values, at="local", strategy="auto")
        assert planner.stats.values_version() >= 1
        # The value-less plan was keyed at version 0: replanned now.
        replay = planner.plan(no_values, at="local", strategy="auto")
        assert replay.from_cache is False
        # And the re-plan is cached under the current version.
        again = planner.plan(no_values, at="local", strategy="auto")
        assert again.from_cache is True
