"""StatsCatalog: histograms, laziness, and store invalidation."""

from repro.planner.stats import (
    StatsCatalog, compute_document_stats, merge_document_stats,
)
from repro.system.federation import Federation
from repro.workloads import build_sharded_federation
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize

DOC = ("<people><person><name>Ann</name><age>30</age></person>"
       '<person id="p2"><name>Bob</name></person></people>')


def make_federation() -> Federation:
    federation = Federation()
    federation.add_peer("A").store("people.xml", DOC)
    federation.add_peer("local")
    return federation


class TestComputeDocumentStats:
    def test_counts_and_exact_bytes(self):
        document = parse_document(DOC, uri="t.xml")
        exact = len(serialize(document).encode())
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=exact)
        assert stats.serialized_bytes == exact
        assert stats.elements == 6          # people, 2 person, 2 name, age
        assert stats.tag("person").count == 2
        assert stats.tag("name").count == 2
        assert stats.tag("@id").count == 1
        assert stats.tag("#text").count == 3

    def test_subtree_bytes_sum_to_document(self):
        document = parse_document(DOC, uri="t.xml")
        exact = len(serialize(document).encode())
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=exact)
        # The root element's subtree covers (almost exactly) the
        # serialised document.
        root = stats.tag("people")
        assert abs(root.subtree_bytes - exact) <= 2
        # Children partition their parent.
        persons = stats.tag("person")
        assert persons.subtree_bytes < root.subtree_bytes

    def test_merge_aggregates(self):
        document = parse_document(DOC, uri="t.xml")
        stats = compute_document_stats(document, "t.xml",
                                       serialized_bytes=100)
        merged = merge_document_stats([stats, stats], uri="m.xml")
        assert merged.serialized_bytes == 200
        assert merged.tag("person").count == 4
        assert merged.elements == 12


class TestStatsCatalog:
    def test_lazy_lookup_and_caching(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        stats = catalog.document_stats("A", "people.xml")
        assert stats is not None and stats.tag("person").count == 2
        assert catalog.document_stats("A", "people.xml") is stats

    def test_missing_document_and_peer(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        assert catalog.document_stats("A", "nope.xml") is None
        assert catalog.document_stats("ghost", "people.xml") is None

    def test_store_invalidates_and_bumps_version(self):
        federation = make_federation()
        catalog = StatsCatalog()
        catalog.attach(federation)
        before = catalog.document_stats("A", "people.xml")
        version = catalog.version()
        federation.peer("A").store(
            "people.xml", "<people><person/></people>")
        assert catalog.version() > version
        after = catalog.document_stats("A", "people.xml")
        assert after is not before
        assert after.tag("person").count == 1

    def test_collection_stats_merge_shards(self):
        federation = build_sharded_federation(0.003, shard_count=3)
        catalog = StatsCatalog()
        catalog.attach(federation)
        merged = catalog.document_stats("people-c", "people.xml")
        assert merged is not None
        # The merged view must cover every member of every shard.
        spec = federation.catalog.get("people-c")
        members = sum(shard.members for shard in spec.shards)
        assert merged.tag("person").count == members

    def test_federation_planner_exposes_stats(self):
        federation = make_federation()
        stats = federation.planner.stats
        stats.attach(federation)
        assert stats.document_stats("A", "people.xml") is not None
