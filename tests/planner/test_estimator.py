"""Estimator unit tests: cost vectors, lowering, operator pricing."""

from repro.decompose import Strategy, decompose
from repro.net.costmodel import CostModel
from repro.net.estimate import CostVector
from repro.planner.ir import (
    BulkBatch, LocalEval, ScatterGather, ShipDocument, XrpcCall,
)
from repro.system.federation import Federation
from repro.workloads import (
    BENCHMARK_QUERY, SHARDED_BENCHMARK_QUERY, build_federation,
    build_sharded_federation,
)
from repro.xquery.parser import parse_query


def lower(federation, query, strategy, at="local"):
    decomposition = decompose(parse_query(query), strategy, local_host=at)
    return federation.planner.estimator.lower(decomposition, at)


class TestCostVector:
    def test_monotonic_in_bytes(self):
        """More bytes on the wire can never be estimated cheaper."""
        model = CostModel()
        previous = -1.0
        for size in (0, 100, 10_000, 1_000_000, 50_000_000):
            message = CostVector(message_bytes=size, messages=2).total_s(
                model)
            assert message > previous
            previous = message
        previous = -1.0
        for size in (0, 100, 10_000, 1_000_000, 50_000_000):
            document = CostVector(document_bytes=size,
                                  messages=1).total_s(model)
            assert document > previous
            previous = document

    def test_shred_costs_more_than_serialize(self):
        """The paper's data-shipping pathology: shredding a shipped
        byte must dominate serialising it (and message deserialisation
        sits in between)."""
        model = CostModel()
        assert model.shred_s_per_byte > model.deserialize_s_per_byte \
            > model.serialize_s_per_byte
        size = 1_000_000
        shipped = CostVector(document_bytes=size, messages=1)
        times = shipped.time(model)
        assert times.shred > times.serialize

    def test_time_matches_transport_charging(self):
        """Pricing a vector must use the very same arithmetic the
        transport charges into RunStats."""
        from repro.net.stats import RunStats
        from repro.runtime.transport import LoopbackTransport

        model = CostModel()
        stats = RunStats()
        transport = LoopbackTransport(model)
        transport.charge_message(stats, 12_345)
        vector = CostVector(message_bytes=12_345, messages=1)
        times = vector.time(model)
        assert abs(times.network - stats.times.network) < 1e-12
        assert abs(times.serialize - stats.times.serialize) < 1e-12

    def test_add_accumulates(self):
        total = CostVector()
        total.add(CostVector(message_bytes=10, messages=2))
        total.add(CostVector(document_bytes=5, local_exec_s=0.5))
        assert total.message_bytes == 10
        assert total.document_bytes == 5
        assert total.wire_bytes == 15
        assert total.local_exec_s == 0.5


class TestLowering:
    def test_data_shipping_plan_ships_both_documents(self):
        federation = build_federation(0.003)
        plan = lower(federation, BENCHMARK_QUERY, Strategy.DATA_SHIPPING)
        ships = [op for op in plan.ops if isinstance(op, ShipDocument)]
        assert {(op.owner, op.local_name) for op in ships} == {
            ("peer1", "people.xml"), ("peer2", "auctions.xml")}
        assert all(isinstance(op, (ShipDocument, LocalEval))
                   for op in plan.ops)
        # Ship sizes are exact: the stats catalog knows the documents.
        for op in ships:
            peer = federation.peer(op.owner)
            exact = len(peer.serialized(op.local_name).encode())
            assert op.document_bytes == exact

    def test_projection_plan_has_two_call_sites(self):
        federation = build_federation(0.003)
        plan = lower(federation, BENCHMARK_QUERY, Strategy.BY_PROJECTION)
        calls = [op for op in plan.ops
                 if isinstance(op, (XrpcCall, BulkBatch))]
        assert len(calls) == 2
        dests = {op.call.dest if isinstance(op, BulkBatch) else op.dest
                 for op in calls}
        assert dests == {"peer1", "peer2"}
        for site_id in plan.site_semantics:
            assert plan.semantics_for(site_id) == "by-projection"

    def test_estimates_track_strategy_ordering(self):
        """At benchmark scale the estimated totals must reproduce the
        paper's ordering: shipping > by-value > fragment > projection."""
        federation = build_federation(0.01)
        totals = [
            lower(federation, BENCHMARK_QUERY, strategy).estimated_s
            for strategy in (Strategy.DATA_SHIPPING, Strategy.BY_VALUE,
                             Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION)
        ]
        assert totals[0] > totals[1] > totals[2] > totals[3]

    def test_estimates_scale_with_documents(self):
        small = lower(build_federation(0.003), BENCHMARK_QUERY,
                      Strategy.DATA_SHIPPING)
        large = lower(build_federation(0.01), BENCHMARK_QUERY,
                      Strategy.DATA_SHIPPING)
        assert large.estimated_s > small.estimated_s
        assert large.estimated_bytes > small.estimated_bytes

    def test_scatter_gather_lowering(self):
        federation = build_sharded_federation(0.003, shard_count=4)
        plan = lower(federation, SHARDED_BENCHMARK_QUERY,
                     Strategy.BY_FRAGMENT)
        scatters = [op for op in plan.ops
                    if isinstance(op, ScatterGather)]
        assert scatters, "collection call sites must lower to scatters"
        assert all(op.shards == 4 for op in scatters)
        # Fan-out multiplies message count.
        assert all(op.call.vector.messages == 2 * 4 for op in scatters)

    def test_explain_renders_operators(self):
        federation = build_federation(0.003)
        plan = lower(federation, BENCHMARK_QUERY, Strategy.BY_PROJECTION)
        text = plan.explain()
        assert "plan by-projection" in text
        assert "xrpc-call by-projection -> peer1" in text

    def test_unknown_document_uses_default(self):
        federation = Federation()
        federation.add_peer("A")
        federation.add_peer("local")
        plan = lower(federation,
                     'doc("xrpc://A/missing.xml")/child::a/child::b',
                     Strategy.DATA_SHIPPING)
        ships = [op for op in plan.ops if isinstance(op, ShipDocument)]
        assert len(ships) == 1
        assert ships[0].document_bytes > 0   # falls back to a default
