"""QueryPlanner behaviour: aliases, plan reports, cache, feedback."""

import pytest

from repro.decompose import AUTO, Strategy
from repro.planner.feedback import CalibrationBook
from repro.runtime.engine import FederationEngine
from repro.system.federation import Federation
from repro.workloads import (
    BENCHMARK_QUERY, MIXED_CROSS_QUERY, TINY_LOOKUP_QUERY,
    build_federation, build_mixed_federation,
)

from tests.conftest import COURSE_XML, Q2, STUDENTS_XML


def q2_federation() -> Federation:
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS_XML)
    federation.add_peer("B").store("course42.xml", COURSE_XML)
    federation.add_peer("local")
    return federation


class TestStrategyCoercion:
    def test_enum_passthrough(self):
        assert Strategy.coerce(Strategy.BY_VALUE) is Strategy.BY_VALUE

    @pytest.mark.parametrize("alias,expected", [
        ("by-projection", Strategy.BY_PROJECTION),
        ("BY_PROJECTION", Strategy.BY_PROJECTION),
        ("By-Fragment", Strategy.BY_FRAGMENT),
        ("data_shipping", Strategy.DATA_SHIPPING),
        (" by-value ", Strategy.BY_VALUE),
    ])
    def test_string_aliases(self, alias, expected):
        assert Strategy.coerce(alias) is expected

    def test_auto_sentinel(self):
        assert Strategy.coerce("auto") == AUTO
        assert Strategy.coerce("AUTO") == AUTO

    def test_unknown_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            Strategy.coerce("by-magic")
        message = str(excinfo.value)
        for name in ("data-shipping", "by-value", "by-fragment",
                     "by-projection", "auto"):
            assert name in message

    def test_federation_run_accepts_alias(self):
        federation = q2_federation()
        enum_run = federation.run(Q2, at="local",
                                  strategy=Strategy.BY_FRAGMENT)
        alias_run = federation.run(Q2, at="local", strategy="BY_FRAGMENT")
        assert alias_run.stats.total_transferred_bytes \
            == enum_run.stats.total_transferred_bytes

    def test_federation_run_rejects_unknown(self):
        with pytest.raises(ValueError, match="by-projection"):
            q2_federation().run(Q2, at="local", strategy="nope")

    def test_engine_submit_accepts_alias_and_auto(self):
        federation = q2_federation()
        with FederationEngine(federation, max_workers=2) as engine:
            fixed = engine.submit(Q2, "local", "by-fragment").result()
            auto = engine.submit(Q2, "local", "auto").result()
            assert fixed.stats.plan.strategy == "by-fragment"
            assert auto.stats.plan is not None
            with pytest.raises(ValueError, match="valid strategies"):
                engine.submit(Q2, "local", "warp-speed")
        summary = engine.metrics.summary()
        assert sum(summary["plans"].values()) == 2


class TestPlanReports:
    def test_every_run_exposes_plan_and_estimate(self):
        federation = q2_federation()
        for strategy in list(Strategy) + ["auto"]:
            result = federation.run(Q2, at="local", strategy=strategy)
            plan = result.stats.plan
            assert plan is not None
            assert plan.estimated_s > 0
            assert plan.candidates
            assert result.plan is plan
            assert result.stats.summary()["plan"]["strategy"] \
                == plan.strategy

    def test_auto_report_ranks_all_candidates(self):
        federation = build_federation(0.003)
        result = federation.run(BENCHMARK_QUERY, at="local",
                                strategy="auto")
        plan = result.stats.plan
        labels = [label for label, _est in plan.candidates]
        # All four fixed strategies were priced...
        for strategy in Strategy:
            assert strategy.value in labels
        # ...plus at least one mixed (per-site) candidate.
        assert any("+ship[" in label for label in labels)
        # Cheapest first, and the pick is the cheapest.
        estimates = [est for _label, est in plan.candidates]
        assert estimates == sorted(estimates)
        assert plan.strategy == labels[0]
        assert "plan " in plan.explain()

    def test_mixed_plan_beats_fixed_on_cross_query(self):
        federation = build_mixed_federation(0.01)
        result = federation.run(MIXED_CROSS_QUERY, at="local",
                                strategy="auto")
        assert "+ship[refdata]" in result.stats.plan.strategy

    def test_tiny_document_ships(self):
        federation = build_mixed_federation(0.01)
        result = federation.run(TINY_LOOKUP_QUERY, at="local",
                                strategy="auto")
        assert result.stats.plan.strategy == "data-shipping"
        assert result.stats.documents_shipped == 1


class TestPlanCache:
    def test_repeat_query_hits_cache(self):
        federation = build_federation(0.003)
        first = federation.run(BENCHMARK_QUERY, at="local",
                               strategy="auto")
        assert first.stats.plan.from_cache is False
        second = federation.run(BENCHMARK_QUERY, at="local",
                                strategy="auto")
        assert second.stats.plan.from_cache is True
        assert second.stats.plan.strategy == first.stats.plan.strategy
        snapshot = federation.planner.snapshot()
        assert snapshot["cache_hits"] >= 1

    def test_store_invalidates_cached_plan(self):
        federation = q2_federation()
        federation.run(Q2, at="local", strategy="auto")
        federation.peer("A").store("students.xml", STUDENTS_XML)
        result = federation.run(Q2, at="local", strategy="auto")
        assert result.stats.plan.from_cache is False

    def test_distinct_options_planned_separately(self):
        federation = q2_federation()
        federation.run(Q2, at="local", strategy="auto")
        result = federation.run(Q2, at="local", strategy="auto",
                                bulk_rpc=False)
        assert result.stats.plan.from_cache is False


class TestCalibrationBook:
    def test_observe_moves_factor_toward_truth(self):
        book = CalibrationBook()
        assert book.factor("msg", "A", "by-value") == 1.0
        book.observe("msg", "A", "by-value", estimated=100.0,
                     observed=400.0)
        factor = book.factor("msg", "A", "by-value")
        assert 1.0 < factor <= 4.0
        book.observe("msg", "A", "by-value", estimated=100.0,
                     observed=400.0)
        assert book.factor("msg", "A", "by-value") > factor

    def test_factors_clamped(self):
        book = CalibrationBook()
        for _ in range(50):
            book.observe("msg", "A", "by-value", 1.0, 1e9)
        assert book.factor("msg", "A", "by-value") <= book.limit

    def test_generation_bumps_on_drift_only(self):
        book = CalibrationBook()
        generation = book.generation()
        book.observe("msg", "A", "by-value", 100.0, 102.0)  # tiny drift
        assert book.generation() == generation
        book.observe("msg", "A", "by-value", 100.0, 1000.0)
        assert book.generation() > generation

    def test_zero_quantities_ignored(self):
        book = CalibrationBook()
        book.observe("msg", "A", "by-value", 0.0, 10.0)
        book.observe("msg", "A", "by-value", 10.0, 0.0)
        assert book.factor("msg", "A", "by-value") == 1.0
        assert book.observations == 0


class TestAdaptiveFeedback:
    def test_repeated_runs_converge_on_true_best(self):
        """A deceptive workload: estimates favour decomposition, but
        the predicate matches everything so responses carry the whole
        document — repeated auto runs must settle on data shipping."""
        rows = "".join(
            f"<entry><code>C{index:03d}</code><region>r0</region>"
            f"<note>{'x' * 60}</note></entry>" for index in range(120))
        query = """
        (for $e in doc("xrpc://ref/rates.xml")/child::rates/child::entry
         return if ($e/child::region = "r0") then $e/child::note else (),
         for $e in doc("xrpc://ref/rates.xml")/child::rates/child::entry
         return if ($e/child::region = "r0") then $e/child::code else ())
        """
        federation = Federation()
        federation.add_peer("ref").store("rates.xml",
                                         f"<rates>{rows}</rates>")
        federation.add_peer("local")

        baseline = {
            strategy: federation.run(query, at="local",
                                     strategy=strategy).stats.times.total
            for strategy in Strategy
        }
        assert min(baseline, key=baseline.get) is Strategy.DATA_SHIPPING

        chosen = []
        for _ in range(12):
            result = federation.run(query, at="local", strategy="auto")
            chosen.append(result.stats.plan.strategy)
        assert chosen[-1] == "data-shipping", chosen
        assert federation.planner.calibration.observations > 0

    def test_calibration_in_snapshot(self):
        federation = build_federation(0.003)
        federation.run(BENCHMARK_QUERY, at="local", strategy="auto")
        snapshot = federation.planner.snapshot()
        assert snapshot["calibration"]
        assert snapshot["stats"]["documents"]
