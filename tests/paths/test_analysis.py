"""Projection path analysis (Section VI-A) over decomposed queries."""

from repro.paths.analysis import analyze_module
from repro.xquery.ast import XRPCExpr, walk
from repro.xquery.parser import parse_query


def spec_for(query: str):
    module = parse_query(query)
    xrpc = next(e for e in walk(module.body) if isinstance(e, XRPCExpr))
    return analyze_module(module)[id(xrpc)], xrpc


class TestParamPaths:
    def test_value_comparison_marks_used_with_text(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) '
            "{ $p/child::id = 1 }")
        used = {str(p) for p in spec.param_paths["p"].used}
        assert "child::id" in used
        assert "child::id/descendant::text()" in used
        assert not spec.param_paths["p"].returned

    def test_escaping_param_marks_returned(self):
        spec, _ = spec_for('execute at {"B"} function ($p := $t) { $p }')
        returned = {str(p) for p in spec.param_paths["p"].returned}
        assert "self::node()" in returned

    def test_path_result_escapes(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) { $p/child::a }')
        returned = {str(p) for p in spec.param_paths["p"].returned}
        assert "child::a" in returned

    def test_flow_through_let_and_for(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) '
            "{ let $x := $p/child::a return "
            "for $y in $x return $y/child::b = 2 }")
        used = {str(p) for p in spec.param_paths["p"].used}
        assert "child::a/child::b" in used

    def test_constructor_content_returned(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) '
            "{ element wrap { $p/child::a } }")
        returned = {str(p) for p in spec.param_paths["p"].returned}
        assert "child::a" in returned

    def test_reverse_axis_tracked(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) '
            "{ $p/parent::x/child::y = 1 }")
        used = {str(p) for p in spec.param_paths["p"].used}
        assert "parent::x/child::y" in used

    def test_root_function_becomes_pseudo_step(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) { root($p) }')
        returned = {str(p) for p in spec.param_paths["p"].returned}
        assert "root()" in returned

    def test_predicate_marks_context_used(self):
        spec, _ = spec_for(
            'execute at {"B"} function ($p := $t) '
            "{ count($p/child::a[child::b = 1]) }")
        used = {str(p) for p in spec.param_paths["p"].used}
        assert "child::a" in used
        assert "child::a/child::b" in used


class TestResultPaths:
    def test_caller_steps_become_result_paths(self):
        module = parse_query(
            'declare function f() as node()* { doc("d.xml")/child::a };'
            '(execute at {"B"} { f() })/child::grade')
        xrpc = next(e for e in walk(module.body)
                    if isinstance(e, XRPCExpr))
        spec = analyze_module(module)[id(xrpc)]
        returned = {str(p) for p in spec.result_paths.returned}
        assert "child::grade" in returned

    def test_parent_step_on_result(self):
        """The Figure 5 makenodes() case: the caller navigates to
        parent::a, so the response must ship the enclosing fragment."""
        module = parse_query(
            "declare function makenodes() as node() "
            "{ <a><b><c/></b></a>/child::b };"
            'let $bc := execute at {"p"} { makenodes() } '
            "return $bc/parent::a")
        xrpc = next(e for e in walk(module.body)
                    if isinstance(e, XRPCExpr))
        spec = analyze_module(module)[id(xrpc)]
        returned = {str(p) for p in spec.result_paths.returned}
        assert "parent::a" in returned

    def test_query_result_marks_self_returned(self):
        module = parse_query(
            'declare function f() as node()* { doc("d.xml")/child::a };'
            'execute at {"B"} { f() }')
        xrpc = module.body
        spec = analyze_module(module)[id(xrpc)]
        assert "self::node()" in {str(p)
                                  for p in spec.result_paths.returned}


class TestBenchmarkSpecs:
    def test_benchmark_projection_matches_paper(self):
        """Section VII: parameter projection $t/attribute::id and
        result projection annotation -> author."""
        from repro.decompose import Strategy, decompose
        from repro.workloads import BENCHMARK_QUERY

        result = decompose(parse_query(BENCHMARK_QUERY),
                           Strategy.BY_PROJECTION, local_host="local")
        specs = analyze_module(result.module)
        xrpcs = [e for e in walk(result.module.body)
                 if isinstance(e, XRPCExpr)]
        by_host = {x.dest.value: specs[id(x)] for x in xrpcs}

        # peer1's result is consumed as $t/attribute::id (after code
        # motion the path feeds the peer2 call's parameter, so the
        # attributes are marked returned — for attribute nodes,
        # returned and used project identically).
        peer1_paths = {str(p) for p in (by_host["peer1"].result_paths.used
                                        | by_host["peer1"]
                                        .result_paths.returned)}
        assert "attribute::id" in peer1_paths

        # peer2 returns annotations; the caller applies /child::author.
        peer2_returned = {str(p)
                          for p in by_host["peer2"].result_paths.returned}
        assert "child::author" in peer2_returned
