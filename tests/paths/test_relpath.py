"""Relative projection paths: Table V grammar, string round-trips,
runtime evaluation (including the pseudo-steps)."""

import pytest

from repro.errors import XrpcMarshalError
from repro.paths.relpath import RelPath, RelStep, parse_rel_path
from repro.xmldb.parser import parse_document, parse_fragment


def by_name(doc, name):
    return next(n for n in doc.nodes() if n.name == name)


class TestStringForm:
    def test_empty_is_self(self):
        assert str(RelPath()) == "self::node()"
        assert parse_rel_path("self::node()") == RelPath()

    def test_roundtrip(self):
        path = RelPath((RelStep("child", "a"),
                        RelStep("descendant", "text()"),
                        RelStep("parent", "node()")))
        assert parse_rel_path(str(path)) == path

    def test_pseudo_steps(self):
        path = RelPath((RelStep("root()"), RelStep("child", "a")))
        assert str(path) == "root()/child::a"
        assert parse_rel_path(str(path)) == path

    def test_malformed_rejected(self):
        with pytest.raises(XrpcMarshalError):
            parse_rel_path("child:a")
        with pytest.raises(XrpcMarshalError):
            parse_rel_path("sideways::a")


class TestEvaluation:
    def test_forward_steps(self):
        doc = parse_fragment("<a><b><c/></b><b><c/><c/></b></a>")
        path = parse_rel_path("child::b/child::c")
        assert len(path.evaluate([doc.root])) == 3

    def test_reverse_step(self):
        doc = parse_fragment("<a><b><c/></b></a>")
        path = parse_rel_path("parent::node()")
        assert path.evaluate([by_name(doc, "c")]) == [by_name(doc, "b")]

    def test_result_sorted_deduplicated(self):
        doc = parse_fragment("<a><b/><b/></a>")
        path = parse_rel_path("parent::node()")
        bs = [n for n in doc.nodes() if n.name == "b"]
        assert path.evaluate(bs) == [doc.root]

    def test_root_pseudo_step(self):
        doc = parse_document("<a><b/></a>")
        path = parse_rel_path("root()")
        assert path.evaluate([by_name(doc, "b")]) == [doc.root]

    def test_id_pseudo_step_conserves_all_id_elements(self):
        doc = parse_document('<r><p id="1"/><q id="2"/><s/></r>')
        path = parse_rel_path("id()")
        names = {n.name for n in path.evaluate([doc.node(1)])}
        assert names == {"p", "q"}

    def test_atomics_in_context_ignored(self):
        doc = parse_fragment("<a><b/></a>")
        path = parse_rel_path("child::b")
        assert len(path.evaluate([doc.root])) == 1
