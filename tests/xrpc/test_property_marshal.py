"""Property-based marshalling invariants (hypothesis).

For random trees and random parameter selections:

* by-value round-trips preserve deep-equality (values survive);
* by-fragment round-trips additionally preserve identity and relative
  document order *within* a message;
* fragments never serialise a shipped node twice (the dedup claim of
  Section V);
* projection round-trips preserve the anchors and everything reachable
  via the declared returned paths.
"""

from hypothesis import given, settings, strategies as st

from repro.paths.analysis import PathSets
from repro.paths.relpath import parse_rel_path
from repro.xmldb.compare import deep_equal, is_same_node, node_before
from repro.xmldb.document import DocumentBuilder
from repro.xmldb.node import NodeKind
from repro.xrpc.marshal import marshal_calls, unmarshal_calls

_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def trees(draw, max_depth=3):
    builder = DocumentBuilder("prop.xml")

    def element(depth: int) -> None:
        builder.start_element(draw(_names))
        if draw(st.booleans()):
            builder.attribute("id", str(draw(st.integers(0, 99))))
        for _ in range(draw(st.integers(0, 3 if depth < max_depth else 0))):
            if draw(st.booleans()):
                element(depth + 1)
            else:
                builder.text(draw(st.text("xyz ", min_size=1,
                                          max_size=5)))
        builder.end_element()

    element(0)
    return builder.finish()


@st.composite
def tree_with_picks(draw):
    doc = draw(trees())
    elements = [n for n in doc.nodes()
                if n.kind == NodeKind.ELEMENT]
    count = draw(st.integers(1, min(4, len(elements))))
    picks = [elements[draw(st.integers(0, len(elements) - 1))]
             for _ in range(count)]
    return doc, picks


@given(tree_with_picks())
@settings(max_examples=60, deadline=None)
def test_by_value_preserves_values(pair):
    doc, picks = pair
    calls = [[(f"p{i}", [node]) for i, node in enumerate(picks)]]
    bundle = marshal_calls(calls, "by-value")
    (out,) = unmarshal_calls(bundle.calls, bundle.fragments, "m")
    for (name, shipped), original in zip(out, picks):
        assert deep_equal(shipped[0], original)


@given(tree_with_picks())
@settings(max_examples=60, deadline=None)
def test_by_fragment_preserves_identity_and_order(pair):
    doc, picks = pair
    calls = [[(f"p{i}", [node]) for i, node in enumerate(picks)]]
    bundle = marshal_calls(calls, "by-fragment")
    (out,) = unmarshal_calls(bundle.calls, bundle.fragments, "m")
    shipped = [seq[0] for _name, seq in out]
    for i in range(len(picks)):
        assert deep_equal(shipped[i], picks[i])
        for j in range(len(picks)):
            assert is_same_node(shipped[i], shipped[j]) == \
                is_same_node(picks[i], picks[j])
            if picks[i].pre < picks[j].pre:
                assert node_before(shipped[i], shipped[j])
            # Containment relationships also survive.
            assert picks[i].is_ancestor_of(picks[j]) == \
                shipped[i].is_ancestor_of(shipped[j])


@given(tree_with_picks())
@settings(max_examples=60, deadline=None)
def test_by_fragment_never_ships_a_node_twice(pair):
    doc, picks = pair
    calls = [[(f"p{i}", [node]) for i, node in enumerate(picks)]]
    bundle = marshal_calls(calls, "by-fragment")
    total_fragment_nodes = 0
    from repro.xmldb.parser import parse_fragment

    for text in bundle.fragments:
        total_fragment_nodes += len(parse_fragment(text))
    # The union of shipped subtrees (maximal roots) bounds the payload.
    maximal: list = []
    for node in sorted(picks, key=lambda n: n.pre):
        if any(m.is_ancestor_of(node) or m == node for m in maximal):
            continue
        maximal.append(node)
    union_size = sum(m.size + 1 for m in maximal)
    # A forest container may add one wrapper node per fragment.
    assert total_fragment_nodes <= union_size + len(bundle.fragments)


@given(tree_with_picks())
@settings(max_examples=60, deadline=None)
def test_projection_keeps_anchors_and_returned_paths(pair):
    doc, picks = pair
    paths = {"p0": PathSets(returned={parse_rel_path("child::a")})}
    calls = [[("p0", [picks[0]])]]
    bundle = marshal_calls(calls, "by-projection", paths)
    (out,) = unmarshal_calls(bundle.calls, bundle.fragments, "m")
    shipped = out[0][1][0]
    # The anchor is addressable and has the right name.
    assert shipped.name == picks[0].name
    # Every child::a of the original is present with a deep-equal copy.
    from repro.xmldb import axes

    original_as = list(axes.axis_step(picks[0], "child", "a"))
    shipped_as = list(axes.axis_step(shipped, "child", "a"))
    assert len(shipped_as) == len(original_as)
    for orig, got in zip(original_as, shipped_as):
        assert deep_equal(orig, got)
