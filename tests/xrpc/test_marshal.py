"""Marshalling semantics: exactly the behaviours Sections II, V and VI
attribute to pass-by-value, pass-by-fragment and pass-by-projection."""

from repro.paths.analysis import PathSets
from repro.paths.relpath import parse_rel_path
from repro.xmldb.compare import is_same_node, node_before
from repro.xmldb.parser import parse_fragment
from repro.xrpc.marshal import marshal_calls, unmarshal_calls
from repro.xrpc.messages import NodeRef


def by_name(doc, name):
    return next(n for n in doc.nodes() if n.name == name)


def ship(calls, semantics, param_paths=None):
    """Marshal + unmarshal one request (the full copy pipeline)."""
    bundle = marshal_calls(calls, semantics, param_paths)
    return unmarshal_calls(bundle.calls, bundle.fragments, "msg")


class TestByValue:
    def test_nodes_become_independent_copies(self):
        doc = parse_fragment("<a><b><c/></b></a>")
        b = by_name(doc, "b")
        (call,) = ship([[("l", [b]), ("r", [b])]], "by-value")
        left = call[0][1][0]
        right = call[1][1][0]
        # Problem 2: the same node arrives as two distinct copies.
        assert not is_same_node(left, right)
        assert left.string_value() == right.string_value()

    def test_parent_lost(self):
        doc = parse_fragment("<a><b><c/></b></a>")
        (call,) = ship([[("p", [by_name(doc, "b")])]], "by-value")
        shipped = call[0][1][0]
        # Problem 1: only descendants travel.
        assert shipped.parent() is None

    def test_order_is_parameter_order(self):
        doc = parse_fragment("<a><b/></a>")
        a, b = by_name(doc, "a"), by_name(doc, "b")
        # Ship the *descendant* first: pass-by-value cannot preserve
        # the original order between parameters (Problem 3).
        (call,) = ship([[("l", [b]), ("r", [a])]], "by-value")
        assert node_before(call[0][1][0], call[1][1][0])

    def test_atomics_roundtrip(self):
        (call,) = ship([[("p", [1, "x", True, 2.5])]], "by-value")
        assert call[0][1] == [1, "x", True, 2.5]

    def test_attribute_copy(self):
        doc = parse_fragment('<a id="v"/>')
        attr = next(n for n in doc.nodes() if n.name == "id")
        (call,) = ship([[("p", [attr])]], "by-value")
        shipped = call[0][1][0]
        assert shipped.name == "id" and shipped.value == "v"


class TestByFragment:
    def test_identity_preserved_within_message(self):
        doc = parse_fragment("<a><b><c/></b></a>")
        b = by_name(doc, "b")
        (call,) = ship([[("l", [b]), ("r", [b])]], "by-fragment")
        assert is_same_node(call[0][1][0], call[1][1][0])

    def test_containment_not_serialized_twice(self):
        """Figure 4: $bc is inside $abc's fragment — one fragment."""
        doc = parse_fragment("<a><b><c/></b></a>")
        a, b = by_name(doc, "a"), by_name(doc, "b")
        bundle = marshal_calls([[("bc", [b]), ("abc", [a])]],
                               "by-fragment")
        assert bundle.fragments == ["<a><b><c/></b></a>"]
        # $bc references node 2 ($abc node 1), as in Figure 4.
        assert bundle.calls[0].params[0][1] == [NodeRef(1, 2)]
        assert bundle.calls[0].params[1][1] == [NodeRef(1, 1)]

    def test_order_and_ancestry_preserved(self):
        doc = parse_fragment("<a><b><c/></b></a>")
        a, b = by_name(doc, "a"), by_name(doc, "b")
        (call,) = ship([[("l", [b]), ("r", [a])]], "by-fragment")
        left, right = call[0][1][0], call[1][1][0]
        # Problem 3 fixed: the parent still precedes the child.
        assert node_before(right, left)
        assert right.is_ancestor_of(left)

    def test_disjoint_nodes_share_forest_fragment(self):
        doc = parse_fragment("<r><a/><b/></r>")
        a, b = by_name(doc, "a"), by_name(doc, "b")
        (call,) = ship([[("l", [a]), ("r", [b])]], "by-fragment")
        left, right = call[0][1][0], call[1][1][0]
        assert left.doc is right.doc  # one fragment space
        assert node_before(left, right)

    def test_attribute_referenced_via_owner(self):
        doc = parse_fragment('<a id="7"><b/></a>')
        attr = next(n for n in doc.nodes() if n.name == "id")
        (call,) = ship([[("p", [attr]), ("q", [by_name(doc, "a")])]],
                       "by-fragment")
        shipped = call[0][1][0]
        assert shipped.name == "id" and shipped.value == "7"
        assert shipped.parent() == call[1][1][0]

    def test_multiple_source_documents(self):
        left = parse_fragment("<l><x/></l>")
        right = parse_fragment("<r><y/></r>")
        bundle = marshal_calls(
            [[("a", [by_name(left, "x")]), ("b", [by_name(right, "y")])]],
            "by-fragment")
        assert len(bundle.fragments) == 2

    def test_bulk_calls_share_fragment_space(self):
        doc = parse_fragment("<a><b/><c/></a>")
        calls = [[("p", [by_name(doc, "b")])],
                 [("p", [by_name(doc, "c")])]]
        out = ship(calls, "by-fragment")
        assert out[0][0][1][0].doc is out[1][0][1][0].doc


class TestByProjection:
    def test_used_paths_keep_anchor_without_descendants(self):
        doc = parse_fragment("<a><p><id>1</id><big><x/><y/></big></p></a>")
        p = by_name(doc, "p")
        paths = {"t": PathSets(
            used={parse_rel_path("child::id"),
                  parse_rel_path("child::id/descendant::text()")})}
        bundle = marshal_calls([[("t", [p])]], "by-projection", paths)
        assert "<big>" not in bundle.fragments[0]
        assert "<id>1</id>" in bundle.fragments[0]

    def test_returned_paths_keep_subtrees(self):
        doc = parse_fragment("<a><p><keep><deep/></keep><drop/></p></a>")
        p = by_name(doc, "p")
        paths = {"t": PathSets(returned={parse_rel_path("child::keep")})}
        bundle = marshal_calls([[("t", [p])]], "by-projection", paths)
        assert "<deep/>" in bundle.fragments[0]
        assert "<drop/>" not in bundle.fragments[0]

    def test_ancestors_preserved_for_reverse_axes(self):
        """Figure 5: the b node travels with its enclosing a."""
        doc = parse_fragment("<a><b><c/></b></a>")
        b = by_name(doc, "b")
        paths = {"r": PathSets(returned={parse_rel_path("parent::a")})}
        bundle = marshal_calls([[("r", [b])]], "by-projection", paths)
        assert bundle.fragments == ["<a><b><c/></b></a>"]
        (call,) = unmarshal_calls(bundle.calls, bundle.fragments, "m")
        shipped = call[0][1][0]
        assert shipped.name == "b"
        assert shipped.parent() is not None
        assert shipped.parent().name == "a"

    def test_projection_smaller_than_fragment(self):
        doc = parse_fragment(
            "<a><p><id>1</id>" + "<filler>x</filler>" * 50 + "</p></a>")
        p = by_name(doc, "p")
        fragment = marshal_calls([[("t", [p])]], "by-fragment")
        paths = {"t": PathSets(used={parse_rel_path("child::id")})}
        projected = marshal_calls([[("t", [p])]], "by-projection", paths)
        assert len(projected.fragments[0]) < len(fragment.fragments[0]) / 5

    def test_missing_paths_default_to_full_subtree(self):
        doc = parse_fragment("<a><p><x/></p></a>")
        p = by_name(doc, "p")
        bundle = marshal_calls([[("t", [p])]], "by-projection", {})
        assert "<x/>" in bundle.fragments[0]
