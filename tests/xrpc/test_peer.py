"""Peer-side request handling, including failure injection."""

import pytest

from repro.errors import XrpcMarshalError, XQueryDynamicError
from repro.xmldb.parser import parse_document
from repro.xrpc.marshal import marshal_calls, unmarshal_result
from repro.xrpc.messages import Call, RequestMessage
from repro.xrpc.peer import RequestHandler


def handler(semantics="by-fragment", docs=None):
    store = {uri: parse_document(text, uri=uri)
             for uri, text in (docs or {}).items()}

    def resolve(uri):
        try:
            return store[uri]
        except KeyError:
            raise XQueryDynamicError(f"no document {uri!r}") from None

    def no_xrpc(dest, params, body):
        raise XQueryDynamicError("nested XRPC not wired in this test")

    return RequestHandler("peer", resolve, no_xrpc, semantics)


def make_request(query, params=None, calls=None, **kwargs):
    params = params or []
    calls = calls if calls is not None else [Call([])]
    return RequestMessage(query=query, param_names=params, calls=calls,
                          **kwargs)


class TestHandling:
    def test_evaluates_body_against_local_documents(self):
        h = handler(docs={"d.xml": "<a><b>7</b></a>"})
        request = make_request('doc("d.xml")/child::a/child::b')
        response = h.handle(request)
        results = unmarshal_result(response.results, response.fragments,
                                   "m")
        assert results[0][0].string_value() == "7"

    def test_bulk_calls_evaluated_independently(self):
        h = handler()
        bundle = marshal_calls([[("n", [i])] for i in (1, 2, 3)],
                               "by-fragment")
        request = make_request("$n * 10", params=["n"],
                               calls=bundle.calls,
                               fragments=bundle.fragments)
        response = h.handle(request)
        results = unmarshal_result(response.results, response.fragments,
                                   "m")
        assert results == [[10], [20], [30]]

    def test_static_context_installed_from_message(self):
        h = handler()
        request = make_request(
            "static-base-uri()",
            static_attrs={"xrpc:base-uri": "http://elsewhere/"})
        response = h.handle(request)
        results = unmarshal_result(response.results, response.fragments,
                                   "m")
        assert results == [["http://elsewhere/"]]

    def test_projection_request_without_paths_degrades_to_fragment(self):
        h = handler("by-projection", docs={"d.xml": "<a><b/></a>"})
        request = make_request('doc("d.xml")/child::a')
        response = h.handle(request)  # no projection-paths element
        results = unmarshal_result(response.results, response.fragments,
                                   "m")
        assert results[0][0].name == "a"


class TestFailureInjection:
    def test_syntax_error_in_shipped_query(self):
        from repro.errors import XQuerySyntaxError

        with pytest.raises(XQuerySyntaxError):
            handler().handle(make_request("let $x := return"))

    def test_unknown_document_on_peer(self):
        with pytest.raises(XQueryDynamicError):
            handler().handle(make_request('doc("ghost.xml")/child::a'))

    def test_undefined_parameter_reference(self):
        from repro.errors import UndefinedVariableError

        with pytest.raises(UndefinedVariableError):
            handler().handle(make_request("$missing"))

    def test_malformed_message_xml(self):
        from repro.errors import XmlParseError, XrpcMarshalError

        with pytest.raises((XmlParseError, XrpcMarshalError)):
            RequestMessage.from_xml("<env:Envelope>not closed")

    def test_dangling_fragment_reference(self):
        from repro.xrpc.messages import NodeRef

        request = make_request(
            "$p", params=["p"],
            calls=[Call([("p", [NodeRef(1, 99)])])],
            fragments=["<a/>"])
        with pytest.raises(XrpcMarshalError):
            handler().handle(request)

    def test_reference_to_missing_fragment(self):
        from repro.xrpc.messages import NodeRef

        request = make_request(
            "$p", params=["p"],
            calls=[Call([("p", [NodeRef(3, 1)])])],
            fragments=["<a/>"])
        with pytest.raises((XrpcMarshalError, IndexError)):
            handler().handle(request)

    def test_missing_attribute_reference(self):
        from repro.xrpc.messages import AttrRef

        request = make_request(
            "$p", params=["p"],
            calls=[Call([("p", [AttrRef(1, 1, "nope")])])],
            fragments=["<a/>"])
        with pytest.raises(XrpcMarshalError):
            handler().handle(request)
