"""Message wire format: Figures 4-5 shapes and XML round-trips."""

from repro.xrpc.messages import (
    Atomic, AttrRef, Call, NodeCopy, NodeRef, RequestMessage,
    ResponseMessage,
)


def roundtrip_request(request: RequestMessage) -> RequestMessage:
    return RequestMessage.from_xml(request.to_xml())


class TestRequestRoundTrip:
    def test_atomics(self):
        request = RequestMessage(
            query="$p", param_names=["p"],
            calls=[Call([("p", [Atomic("xs:integer", "42"),
                                Atomic("xs:string", "a<b&c")])])])
        back = roundtrip_request(request)
        assert back.query == "$p"
        assert back.calls[0].params[0][1] == [
            Atomic("xs:integer", "42"), Atomic("xs:string", "a<b&c")]

    def test_node_copy(self):
        request = RequestMessage(
            query="$p", param_names=["p"],
            calls=[Call([("p", [NodeCopy("element", "",
                                         "<a x=\"1\"><b/></a>")])])])
        back = roundtrip_request(request)
        (item,) = back.calls[0].params[0][1]
        assert isinstance(item, NodeCopy)
        assert item.xml == '<a x="1"><b/></a>'

    def test_attribute_copy(self):
        request = RequestMessage(
            query="$p", param_names=["p"],
            calls=[Call([("p", [NodeCopy("attribute", "id", "v&1")])])])
        (item,) = roundtrip_request(request).calls[0].params[0][1]
        assert item.name == "id" and item.xml == "v&1"

    def test_fragment_references(self):
        request = RequestMessage(
            query="($l, $r)", param_names=["l", "r"],
            calls=[Call([("l", [NodeRef(1, 2)]),
                         ("r", [AttrRef(1, 1, "id")])])],
            fragments=["<a><b/></a>"])
        back = roundtrip_request(request)
        assert back.fragments == ["<a><b/></a>"]
        assert back.calls[0].params[0][1] == [NodeRef(1, 2)]
        assert back.calls[0].params[1][1] == [AttrRef(1, 1, "id")]

    def test_bulk_calls(self):
        request = RequestMessage(
            query="$p", param_names=["p"],
            calls=[Call([("p", [Atomic("xs:integer", str(i))])])
                   for i in range(3)])
        assert len(roundtrip_request(request).calls) == 3

    def test_static_context_attributes(self):
        request = RequestMessage(
            query="1", param_names=[], calls=[Call([])],
            static_attrs={"xrpc:base-uri": "http://x/",
                          "xrpc:current-dateTime": "t"})
        back = roundtrip_request(request)
        assert back.static_attrs["xrpc:base-uri"] == "http://x/"

    def test_projection_paths_element(self):
        """Figure 5: the request for makenodes() carries parent::a as
        a returned path; presence selects by-projection responses."""
        request = RequestMessage(
            query="makenodes()", param_names=[], calls=[Call([])],
            used_paths=[], returned_paths=["parent::a"])
        xml = request.to_xml()
        assert "<xrpc:projection-paths>" in xml
        assert ("<xrpc:returned-path>parent::a"
                "</xrpc:returned-path>") in xml
        back = RequestMessage.from_xml(xml)
        assert back.returned_paths == ["parent::a"]

    def test_absent_projection_paths_is_none(self):
        request = RequestMessage(query="1", param_names=[],
                                 calls=[Call([])])
        back = roundtrip_request(request)
        assert back.used_paths is None
        assert back.returned_paths is None


class TestResponse:
    def test_roundtrip(self):
        response = ResponseMessage(
            results=[[NodeRef(1, 2)], [Atomic("xs:boolean", "true")]],
            fragments=["<a><b><c/></b></a>"])
        back = ResponseMessage.from_xml(response.to_xml())
        assert back.results == [[NodeRef(1, 2)],
                                [Atomic("xs:boolean", "true")]]
        assert back.fragments == ["<a><b><c/></b></a>"]

    def test_figure4_shape(self):
        """The pass-by-fragment response of Figure 4: one fragment,
        references carrying fragid/nodeid."""
        response = ResponseMessage(results=[[NodeRef(1, 2)]],
                                   fragments=["<a><b><c/></b></a>"])
        xml = response.to_xml()
        assert ("<xrpc:fragments><xrpc:fragment><a><b><c/></b></a>"
                "</xrpc:fragment></xrpc:fragments>") in xml
        assert '<xrpc:element fragid="1" nodeid="2"/>' in xml

    def test_envelope_is_soap(self):
        response = ResponseMessage(results=[[]])
        xml = response.to_xml()
        assert xml.startswith("<env:Envelope")
        assert "soap-envelope" in xml
