"""Federation API: peers, data shipping, transport accounting."""

import pytest

from repro.decompose import Strategy
from repro.errors import NetworkError
from repro.system.federation import Federation
from repro.xquery.xdm import serialize_sequence


@pytest.fixture
def fed():
    federation = Federation()
    federation.add_peer("p1").store("d.xml", "<a><b>x</b><b>y</b></a>")
    federation.add_peer("p2").store("e.xml", "<r><s/></r>")
    federation.add_peer("local").store("mine.xml", "<m><n/></m>")
    return federation


class TestPeers:
    def test_duplicate_peer_rejected(self, fed):
        with pytest.raises(NetworkError):
            fed.add_peer("p1")

    def test_unknown_peer_rejected(self, fed):
        with pytest.raises(NetworkError):
            fed.peer("nope")

    def test_unknown_document_rejected(self, fed):
        with pytest.raises(NetworkError):
            fed.peer("p1").document("nope.xml")

    def test_store_is_chainable_and_parses(self, fed):
        doc = fed.peer("p1").document("d.xml")
        assert doc.uri == "xrpc://p1/d.xml"


class TestLocalResolution:
    def test_relative_uri_resolves_at_originator(self, fed):
        result = fed.run('doc("mine.xml")/child::m/child::n', at="local",
                         strategy=Strategy.DATA_SHIPPING)
        assert serialize_sequence(result.items) == "<n/>"
        assert result.stats.total_transferred_bytes == 0

    def test_own_xrpc_uri_is_local(self, fed):
        result = fed.run('doc("xrpc://local/mine.xml")/child::m',
                         at="local", strategy=Strategy.DATA_SHIPPING)
        assert result.stats.documents_shipped == 0


class TestDataShipping:
    def test_remote_doc_shipped_and_counted(self, fed):
        result = fed.run('doc("xrpc://p1/d.xml")//b', at="local",
                         strategy=Strategy.DATA_SHIPPING)
        assert len(result.items) == 2
        stats = result.stats
        assert stats.documents_shipped == 1
        assert stats.document_bytes == len("<a><b>x</b><b>y</b></a>")
        assert stats.times.shred > 0

    def test_document_cached_within_run(self, fed):
        query = ('(doc("xrpc://p1/d.xml")//b, '
                 'doc("xrpc://p1/d.xml")//b)')
        result = fed.run(query, at="local",
                         strategy=Strategy.DATA_SHIPPING)
        assert result.stats.documents_shipped == 1

    def test_two_peers_both_shipped(self, fed):
        query = ('(doc("xrpc://p1/d.xml")//b, '
                 'doc("xrpc://p2/e.xml")//s)')
        result = fed.run(query, at="local",
                         strategy=Strategy.DATA_SHIPPING)
        assert result.stats.documents_shipped == 2


class TestFunctionShipping:
    def test_messages_counted(self, fed):
        result = fed.run('doc("xrpc://p1/d.xml")/child::a/child::b',
                         at="local", strategy=Strategy.BY_FRAGMENT)
        assert result.stats.messages == 2  # request + response
        assert result.stats.rpc_calls == 1
        assert result.stats.documents_shipped == 0

    def test_message_log(self, fed):
        result = fed.run('doc("xrpc://p1/d.xml")/child::a/child::b',
                         at="local", strategy=Strategy.BY_FRAGMENT,
                         keep_message_xml=True)
        (log,) = result.messages
        assert log.dest == "p1"
        assert log.request_bytes == len(log.request_xml.encode())
        assert "<xrpc:query>" in log.request_xml

    def test_remote_and_local_exec_tracked_separately(self, fed):
        result = fed.run('doc("xrpc://p1/d.xml")/child::a/child::b',
                         at="local", strategy=Strategy.BY_FRAGMENT)
        assert result.stats.times.remote_exec > 0
        assert result.stats.times.local_exec > 0

    def test_execute_reuses_decomposition(self, fed):
        from repro.decompose import decompose
        from repro.xquery.parser import parse_query

        decomposition = decompose(
            parse_query('doc("xrpc://p1/d.xml")/child::a/child::b'),
            Strategy.BY_FRAGMENT, local_host="local")
        first = fed.execute(decomposition, at="local")
        second = fed.execute(decomposition, at="local")
        assert serialize_sequence(first.items) == \
            serialize_sequence(second.items)

    def test_unknown_destination_peer_raises(self, fed):
        with pytest.raises(NetworkError):
            fed.run('declare function f() as item()* { 1 };'
                    'execute at {"ghost"} { f() }',
                    at="local", strategy=Strategy.BY_VALUE)


class TestRemoteDataShipping:
    def test_remote_peer_can_fetch_third_party_doc(self, fed):
        # A function executed at p1 opens p2's document: p1 data-ships
        # it from p2 (counted), then evaluates locally.
        query = ('declare function f() as item()* '
                 '{ count(doc("xrpc://p2/e.xml")/child::r/child::s) };'
                 'execute at {"p1"} { f() }')
        result = fed.run(query, at="local", strategy=Strategy.BY_VALUE)
        assert result.items == [1]
        assert result.stats.documents_shipped == 1
