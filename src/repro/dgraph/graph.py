"""Building the d-graph from an AST.

Vertex layout follows Figure 2 of the paper:

* binder expressions (``let``, ``for``, quantified, order-by) get a
  ``Var[$x]`` child vertex that *owns* the binding's value/sequence
  subtree; the in-scope body hangs directly under the binder vertex;
* path expressions become a chain of ``AxisStep`` vertices — the
  topmost vertex is the last step, its parse child the previous step,
  and the innermost child the path input (Figure 2's
  ``v4:/person -> v5:/people -> v6:FunCall[doc]``). Every chain vertex
  records how many steps of the original :class:`PathExpr` it covers,
  so a decomposition point in the middle of a path can be realised by
  splitting the path;
* calls to *user-declared* functions are inlined (the paper's grammar
  has no user function declarations — a query is a single ``Expr``):
  the call vertex gets one ``Var[$param]`` child per argument and the
  function body is built underneath with parameters in scope.
  Recursive functions cannot be inlined; their call vertices become
  opaque ``FunCall`` leaves with a wildcard URI dependency, which makes
  every analysis treat them conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xquery.ast import (
    ArithmeticExpr, ComparisonExpr, ConstructorExpr, ContextItemExpr,
    EmptySequence, Expr, ForExpr, FunCall, IfExpr, LetExpr, Literal,
    LogicalExpr, Module, NodeSetExpr, OrderByExpr, PathExpr, QuantifiedExpr,
    RangeExpr, SequenceExpr, TypeswitchExpr, UnaryExpr, VarRef, XRPCExpr,
)
from repro.xmldb.axes import HORIZONTAL_AXES, REVERSE_AXES


@dataclass
class Vertex:
    """One d-graph vertex ``vi:rule[val]``."""

    vid: int
    rule: str
    val: str | None = None
    ast: Expr | None = None
    #: For AxisStep chain vertices: number of leading steps of the
    #: owning PathExpr that this vertex covers (prefix length).
    step_count: int | None = None
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    #: varref edge target (Var vertex), for VarRef vertices.
    varref: int | None = None

    def label(self) -> str:
        if self.val is not None:
            return f"v{self.vid}:{self.rule}[{self.val}]"
        return f"v{self.vid}:{self.rule}"


class DGraph:
    """The dependency graph with reachability utilities."""

    def __init__(self) -> None:
        self.vertices: list[Vertex] = []
        self._parse_descendants: dict[int, frozenset[int]] = {}
        self._depends_cache: dict[int, frozenset[int]] = {}

    # -- construction ---------------------------------------------------------

    def add(self, rule: str, val: str | None = None, ast: Expr | None = None,
            parent: int | None = None, step_count: int | None = None) -> Vertex:
        vertex = Vertex(len(self.vertices), rule, val, ast, step_count, parent)
        self.vertices.append(vertex)
        if parent is not None:
            self.vertices[parent].children.append(vertex.vid)
        return vertex

    @property
    def root(self) -> Vertex:
        return self.vertices[0]

    def __getitem__(self, vid: int) -> Vertex:
        return self.vertices[vid]

    def __len__(self) -> int:
        return len(self.vertices)

    # -- reachability -----------------------------------------------------------

    def parse_descendants(self, vid: int) -> frozenset[int]:
        """The subgraph of ``vid``: vertices reachable via parse edges
        (including ``vid`` itself)."""
        cached = self._parse_descendants.get(vid)
        if cached is not None:
            return cached
        out = {vid}
        for child in self.vertices[vid].children:
            out |= self.parse_descendants(child)
        result = frozenset(out)
        self._parse_descendants[vid] = result
        return result

    def parse_depends(self, x: int, y: int) -> bool:
        """x parse-depends-on y: y reachable from x via parse edges only."""
        return y in self.parse_descendants(x)

    def depends_set(self, vid: int) -> frozenset[int]:
        """All vertices reachable from ``vid`` via parse and varref
        edges (the paper's full "depends on" relation)."""
        cached = self._depends_cache.get(vid)
        if cached is not None:
            return cached
        out: set[int] = set()
        stack = [vid]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            vertex = self.vertices[current]
            stack.extend(vertex.children)
            if vertex.varref is not None:
                stack.append(vertex.varref)
        result = frozenset(out)
        self._depends_cache[vid] = result
        return result

    def depends(self, x: int, y: int) -> bool:
        """x depends-on y (parse or varref reachability)."""
        return y in self.depends_set(x)

    # -- paper predicates -----------------------------------------------------------

    def use_result(self, n: int, rs: int) -> bool:
        """useResult(n, rs): a consumer *outside* rs's subgraph depends
        on rs (i.e. on the shipped result)."""
        if n in self.parse_descendants(rs):
            return False
        return self.depends(n, rs)

    def use_param(self, n: int, rs: int) -> bool:
        """useParam(n, rs) <=> n is inside rs's subgraph and depends on
        a vertex outside it (i.e. on a shipped parameter)."""
        subgraph = self.parse_descendants(rs)
        if n not in subgraph:
            return False
        return bool(self.depends_set(n) - subgraph)

    def by_rule(self, *rules: str) -> list[Vertex]:
        return [v for v in self.vertices if v.rule in rules]

    def render(self) -> str:
        """Human-readable dump (used in docs and debugging)."""
        lines = []
        for vertex in self.vertices:
            indent = "  " * self._depth(vertex.vid)
            varref = (f" ..-> v{vertex.varref}"
                      if vertex.varref is not None else "")
            lines.append(f"{indent}{vertex.label()}{varref}")
        return "\n".join(lines)

    def _depth(self, vid: int) -> int:
        depth = 0
        current = self.vertices[vid].parent
        while current is not None:
            depth += 1
            current = self.vertices[current].parent
        return depth


#: AxisStep sub-classification used by the insertion conditions.
def axis_category(axis: str) -> str:
    if axis in REVERSE_AXES:
        return "RevAxis"
    if axis in HORIZONTAL_AXES:
        return "HorAxis"
    return "FwdAxis"


class _Builder:
    def __init__(self, module: Module):
        self.module = module
        self.graph = DGraph()
        self._inlining: list[tuple[str, int]] = []  # (name, arity) stack

    def build(self) -> DGraph:
        self._build(self.module.body, parent=None, env={})
        return self.graph

    # -- helpers ------------------------------------------------------------

    def _var_vertex(self, name: str, parent: int) -> Vertex:
        return self.graph.add("Var", f"${name}", parent=parent)

    def _build(self, expr: Expr, parent: int | None,
               env: dict[str, int]) -> Vertex:
        graph = self.graph

        if isinstance(expr, Literal):
            return graph.add("Literal", repr(expr.value), expr, parent)
        if isinstance(expr, EmptySequence):
            return graph.add("ExprSeq", "()", expr, parent)
        if isinstance(expr, ContextItemExpr):
            return graph.add("ContextItem", None, expr, parent)
        if isinstance(expr, VarRef):
            vertex = graph.add("VarRef", f"${expr.name}", expr, parent)
            vertex.varref = env.get(expr.name)
            return vertex

        if isinstance(expr, SequenceExpr):
            vertex = graph.add("ExprSeq", None, expr, parent)
            for item in expr.items:
                self._build(item, vertex.vid, env)
            return vertex

        if isinstance(expr, LetExpr):
            vertex = graph.add("LetExpr", None, expr, parent)
            var_vertex = self._var_vertex(expr.var, vertex.vid)
            self._build(expr.value, var_vertex.vid, env)
            body_env = dict(env)
            body_env[expr.var] = var_vertex.vid
            self._build(expr.body, vertex.vid, body_env)
            return vertex

        if isinstance(expr, ForExpr):
            vertex = graph.add("ForExpr", None, expr, parent)
            var_vertex = self._var_vertex(expr.var, vertex.vid)
            self._build(expr.seq, var_vertex.vid, env)
            body_env = dict(env)
            body_env[expr.var] = var_vertex.vid
            if expr.pos_var is not None:
                pos_vertex = self._var_vertex(expr.pos_var, vertex.vid)
                body_env[expr.pos_var] = pos_vertex.vid
            self._build(expr.body, vertex.vid, body_env)
            return vertex

        if isinstance(expr, QuantifiedExpr):
            vertex = graph.add("QuantExpr", expr.quantifier, expr, parent)
            var_vertex = self._var_vertex(expr.var, vertex.vid)
            self._build(expr.seq, var_vertex.vid, env)
            cond_env = dict(env)
            cond_env[expr.var] = var_vertex.vid
            self._build(expr.cond, vertex.vid, cond_env)
            return vertex

        if isinstance(expr, OrderByExpr):
            vertex = graph.add("OrderExpr", None, expr, parent)
            var_vertex = self._var_vertex(expr.var, vertex.vid)
            self._build(expr.seq, var_vertex.vid, env)
            inner_env = dict(env)
            inner_env[expr.var] = var_vertex.vid
            for spec in expr.specs:
                self._build(spec.key, vertex.vid, inner_env)
            self._build(expr.body, vertex.vid, inner_env)
            return vertex

        if isinstance(expr, IfExpr):
            vertex = graph.add("IfExpr", None, expr, parent)
            self._build(expr.cond, vertex.vid, env)
            then_else = graph.add("ThenElse", None, None, vertex.vid)
            self._build(expr.then_branch, then_else.vid, env)
            self._build(expr.else_branch, then_else.vid, env)
            return vertex

        if isinstance(expr, TypeswitchExpr):
            vertex = graph.add("Typeswitch", None, expr, parent)
            self._build(expr.operand, vertex.vid, env)
            for case in expr.cases:
                case_vertex = graph.add("CaseClause", case.seq_type, None,
                                        vertex.vid)
                case_env = env
                if case.var is not None:
                    var_vertex = self._var_vertex(case.var, case_vertex.vid)
                    case_env = dict(env)
                    case_env[case.var] = var_vertex.vid
                self._build(case.body, case_vertex.vid, case_env)
            default_env = env
            default_vertex = graph.add("DefaultClause", None, None, vertex.vid)
            if expr.default_var is not None:
                var_vertex = self._var_vertex(expr.default_var,
                                              default_vertex.vid)
                default_env = dict(env)
                default_env[expr.default_var] = var_vertex.vid
            self._build(expr.default_body, default_vertex.vid, default_env)
            return vertex

        if isinstance(expr, ComparisonExpr):
            rule = "NodeCmp" if expr.is_node_comparison else "CompExpr"
            vertex = graph.add(rule, expr.op, expr, parent)
            self._build(expr.left, vertex.vid, env)
            self._build(expr.right, vertex.vid, env)
            return vertex

        if isinstance(expr, (ArithmeticExpr, LogicalExpr)):
            rule = ("ArithExpr" if isinstance(expr, ArithmeticExpr)
                    else "LogicExpr")
            vertex = graph.add(rule, expr.op, expr, parent)
            self._build(expr.left, vertex.vid, env)
            self._build(expr.right, vertex.vid, env)
            return vertex

        if isinstance(expr, UnaryExpr):
            vertex = graph.add("UnaryExpr", expr.op, expr, parent)
            self._build(expr.operand, vertex.vid, env)
            return vertex

        if isinstance(expr, RangeExpr):
            vertex = graph.add("RangeExpr", None, expr, parent)
            self._build(expr.start, vertex.vid, env)
            self._build(expr.end, vertex.vid, env)
            return vertex

        if isinstance(expr, NodeSetExpr):
            vertex = graph.add("NodeSetExpr", expr.op, expr, parent)
            self._build(expr.left, vertex.vid, env)
            self._build(expr.right, vertex.vid, env)
            return vertex

        if isinstance(expr, PathExpr):
            return self._build_path(expr, parent, env)

        if isinstance(expr, ConstructorExpr):
            vertex = graph.add("Constructor", expr.kind, expr, parent)
            if expr.name_expr is not None:
                self._build(expr.name_expr, vertex.vid, env)
            if expr.content is not None:
                self._build(expr.content, vertex.vid, env)
            return vertex

        if isinstance(expr, FunCall):
            return self._build_funcall(expr, parent, env)

        if isinstance(expr, XRPCExpr):
            vertex = graph.add("XRPCExpr", None, expr, parent)
            self._build(expr.dest, vertex.vid, env)
            body_env: dict[str, int] = {}
            for param in expr.params:
                param_vertex = graph.add("XRPCParam", f"${param.name}", None,
                                         vertex.vid)
                self._build(param.value, param_vertex.vid, env)
                body_env[param.name] = param_vertex.vid
            self._build(expr.body, vertex.vid, body_env)
            return vertex

        raise TypeError(f"cannot graph {type(expr).__name__}")

    def _build_path(self, expr: PathExpr, parent: int | None,
                    env: dict[str, int]) -> Vertex:
        """Build the AxisStep chain, innermost (input) first."""
        graph = self.graph
        # Build bottom-up: create the top (last step) vertex first so
        # parent linkage is natural, then descend.
        top: Vertex | None = None
        current_parent = parent
        for index in range(len(expr.steps) - 1, -1, -1):
            step = expr.steps[index]
            vertex = graph.add("AxisStep", f"{step.axis}::{step.test}",
                               expr, current_parent,
                               step_count=index + 1)
            if top is None:
                top = vertex
            for predicate in step.predicates:
                self._build(predicate, vertex.vid, env)
            current_parent = vertex.vid
        self._build(expr.input, current_parent, env)
        assert top is not None  # PathExpr always has >= 1 step
        return top

    def _build_funcall(self, expr: FunCall, parent: int | None,
                       env: dict[str, int]) -> Vertex:
        graph = self.graph
        decl = self.module.function(expr.name, len(expr.args))
        key = (expr.name, len(expr.args))
        if decl is not None and key not in self._inlining:
            vertex = graph.add("FunCall", expr.name, expr, parent)
            body_env: dict[str, int] = {}
            for param, arg in zip(decl.params, expr.args):
                var_vertex = self._var_vertex(param.name, vertex.vid)
                self._build(arg, var_vertex.vid, env)
                body_env[param.name] = var_vertex.vid
            self._inlining.append(key)
            try:
                self._build(decl.body, vertex.vid, body_env)
            finally:
                self._inlining.pop()
            return vertex
        # Built-in (or recursive) call: args only.
        vertex = graph.add("FunCall", expr.name, expr, parent)
        for arg in expr.args:
            self._build(arg, vertex.vid, env)
        return vertex


def build_dgraph(module: Module) -> DGraph:
    """Build the d-graph of a module's body (functions inlined)."""
    return _Builder(module).build()
