"""URI dependency sets ``D(v)`` and the document-conflict predicates.

``D(v)`` (Section IV) is the set of document URIs used by ``fn:doc``
calls that ``v`` reaches via parse edges, each tagged with the vertex
where the document is opened — "to be able to distinguish the use of
the same document through multiple fn:doc() calls". Computed URIs
become the wildcard ``*``; ``fn:collection`` is treated as ``doc(*)``;
an element construction is assigned an artificial unique URI
(``doc(vi::vi)`` in the paper's notation).

``hasMatchingDoc`` (Section V) isolates Problem 4: an expression that
depends on two *different* ``fn:doc`` call sites that may open the same
document can mix nodes from different remote calls, which
pass-by-fragment cannot repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dgraph.graph import DGraph, Vertex


@dataclass(frozen=True)
class DocDep:
    """One entry of D(v): ``uri :: opened_at`` (vertex id)."""

    uri: str
    vertex: int

    def matches(self, other: "DocDep") -> bool:
        """URI match including wildcards (computed URIs)."""
        return (self.uri == other.uri or self.uri == "*"
                or other.uri == "*")


#: Constructors get artificial unique URIs with this prefix; they never
#: collide with real URIs but do match wildcards.
_CONSTRUCTED_PREFIX = "constructed:"


def uri_dependencies(graph: DGraph, vid: int) -> frozenset[DocDep]:
    """Compute D(v) for vertex ``vid``."""
    deps: set[DocDep] = set()
    for member in graph.parse_descendants(vid):
        vertex = graph[member]
        if vertex.rule == "FunCall" and vertex.val in ("doc", "collection"):
            deps.add(_doc_dep(graph, vertex))
        elif vertex.rule == "Constructor":
            deps.add(DocDep(f"{_CONSTRUCTED_PREFIX}v{vertex.vid}",
                            vertex.vid))
    return frozenset(deps)


def _doc_dep(graph: DGraph, vertex: Vertex) -> DocDep:
    if vertex.val == "collection":
        return DocDep("*", vertex.vid)
    if len(vertex.children) == 1:
        child = graph[vertex.children[0]]
        if child.rule == "Literal":
            # Literal vals are repr()'d strings.
            uri = child.val or ""
            if uri.startswith("'") or uri.startswith('"'):
                uri = uri[1:-1]
            return DocDep(uri, vertex.vid)
    return DocDep("*", vertex.vid)


def has_duplicate_doc(deps: frozenset[DocDep]) -> bool:
    """True when two *different* call sites in ``deps`` may open the
    same document (the negation of the paper's hasMatchingDoc)."""
    entries = list(deps)
    for i, left in enumerate(entries):
        for right in entries[i + 1:]:
            if left.vertex != right.vertex and left.matches(right):
                return True
    return False


def matching_doc_conflict(graph: DGraph, n: int, rs: int) -> bool:
    """Does consumer vertex ``n`` mix nodes of the candidate subquery
    ``rs`` with nodes from a *different* call site of a matching
    document?

    This realises the by-fragment refinement of Conditions ii/iii: a
    node comparison / set operation / axis step ``n`` is only dangerous
    when it can see the same document through the shipped subquery
    *and* through some other doc() application outside it.
    """
    subgraph = graph.parse_descendants(rs)
    n_deps = _reachable_doc_deps(graph, n)
    inside = {dep for dep in n_deps if dep.vertex in subgraph}
    outside = {dep for dep in n_deps if dep.vertex not in subgraph}
    for left in inside:
        for right in outside:
            if left.vertex != right.vertex and left.matches(right):
                return True
    # Two different call sites of the same doc inside the shipped
    # subquery are harmless (they run on one peer in one call), but two
    # matching call sites both visible to n via *separate* XRPC results
    # are caught above because one of them lies outside each candidate.
    return False


def _reachable_doc_deps(graph: DGraph, vid: int) -> frozenset[DocDep]:
    """Like D(v) but over the full depends-on relation (parse + varref),
    since a consumer reaches shipped data through variables."""
    deps: set[DocDep] = set()
    for member in graph.depends_set(vid):
        vertex = graph[member]
        if vertex.rule == "FunCall" and vertex.val in ("doc", "collection"):
            deps.add(_doc_dep(graph, vertex))
        elif vertex.rule == "Constructor":
            deps.add(DocDep(f"{_CONSTRUCTED_PREFIX}v{vertex.vid}",
                            vertex.vid))
    return frozenset(deps)
