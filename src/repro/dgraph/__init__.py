"""The XCore dependency graph (d-graph) of Section III.

A d-graph is "in essence a parse-tree with additional (dashed) edges to
indicate variable usages": vertices labelled with grammar rules,
*parse edges* from each rule use to the rules it directly causes, and
*varref edges* from each :class:`~repro.xquery.ast.VarRef` to the
``Var`` vertex that binds it.

The graph drives every analysis of Sections IV-VI: reachability
("parse-depends" / "varref-depends" / "depends"), URI dependency sets
``D(v)``, the insertion conditions, and interesting decomposition
points ``I'(G)``.
"""

from repro.dgraph.graph import DGraph, Vertex, build_dgraph
from repro.dgraph.analysis import (
    DocDep, uri_dependencies, has_duplicate_doc, matching_doc_conflict,
)

__all__ = [
    "DGraph", "Vertex", "build_dgraph",
    "DocDep", "uri_dependencies", "has_duplicate_doc",
    "matching_doc_conflict",
]
