"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type. The sub-hierarchy mirrors the subsystems:
XML parsing/storage, XQuery compilation and evaluation, decomposition,
and the XRPC runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class XmlError(ReproError):
    """Base class for XML storage and parsing errors."""


class XmlParseError(XmlError):
    """Raised when an XML document is not well-formed.

    Carries the character ``offset`` into the input at which parsing
    failed, for error reporting.
    """

    def __init__(self, message: str, offset: int = -1):
        super().__init__(message)
        self.offset = offset


class XQueryError(ReproError):
    """Base class for XQuery compilation and evaluation errors."""


class XQuerySyntaxError(XQueryError):
    """Raised when a query does not conform to the supported grammar.

    Carries the character ``offset`` into the query text.
    """

    def __init__(self, message: str, offset: int = -1):
        super().__init__(message)
        self.offset = offset


class XQueryTypeError(XQueryError):
    """Raised on dynamic type errors (e.g. atomizing a bad operand)."""


class XQueryDynamicError(XQueryError):
    """Raised on dynamic evaluation errors (e.g. unknown document URI)."""


class UndefinedVariableError(XQueryError):
    """Raised when a query references a variable that is not in scope."""

    def __init__(self, name: str):
        super().__init__(f"undefined variable: ${name}")
        self.name = name


class UndefinedFunctionError(XQueryError):
    """Raised when a query calls a function that is not declared."""

    def __init__(self, name: str, arity: int):
        super().__init__(f"undefined function: {name}#{arity}")
        self.name = name
        self.arity = arity


class DecompositionError(ReproError):
    """Raised when query decomposition cannot produce a valid rewrite."""


class XrpcError(ReproError):
    """Base class for XRPC runtime errors."""


class XrpcMarshalError(XrpcError):
    """Raised when a value cannot be (un)marshalled into a message."""


class NetworkError(ReproError):
    """Raised by the simulated network (unknown peer, no such document)."""


class TransientNetworkError(NetworkError):
    """A wire fault worth retrying against the *same* peer: an injected
    transmission fault or a per-attempt timeout. The peer itself is
    presumed fine — the attempt, not the replica, failed — so the
    router's retry budget applies before any failover.

    Carries the ``peer`` the attempt targeted and the ``attempt``
    ordinal (1-based, set by the retry loop) so operators can tell a
    one-off blip from a peer that only ever answers on attempt three.
    """

    def __init__(self, message: str, peer: str | None = None,
                 attempt: int | None = None):
        super().__init__(message)
        self.peer = peer
        self.attempt = attempt


class PeerUnavailableError(NetworkError):
    """A fault that indicts the *peer*, not the attempt: the destination
    is down (killed, partitioned away). Retrying the same peer is
    pointless; the router fails over to the next replica immediately
    and the membership detector counts the evidence."""

    def __init__(self, message: str, peer: str | None = None):
        super().__init__(message)
        self.peer = peer
