"""A small, dependency-free XML parser feeding :class:`DocumentBuilder`.

Supports the subset of XML needed by the paper's workloads: elements,
attributes (single or double quoted), character data, the five
predefined entities plus numeric character references, CDATA sections,
comments, processing instructions, and a skipped DOCTYPE. Namespace
prefixes are kept as part of the QName (no URI resolution), matching
the paper's prefix-level treatment of names.
"""

from __future__ import annotations

from sys import intern

from repro.errors import XmlParseError
from repro.xmldb.document import Document, DocumentBuilder

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_EXTRA = set("-._:")


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Single-pass recursive-descent XML reader."""

    def __init__(self, text: str, builder: DocumentBuilder):
        self.text = text
        self.pos = 0
        self.builder = builder

    # -- small helpers -------------------------------------------------------

    def error(self, message: str) -> XmlParseError:
        return XmlParseError(f"{message} at offset {self.pos}", self.pos)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while not self.at_end() and _is_name_char(self.text[self.pos]):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        # Interned: a parsed document's tag/attribute names collapse to
        # one string per distinct name (identity-comparable, and the
        # substrings don't pin the whole source text alive).
        return intern(self.text[start:self.pos])

    def decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise self.error("unterminated entity reference")
            entity = raw[i + 1:end]
            if entity.startswith("#x") or entity.startswith("#X"):
                out.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                out.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise self.error(f"unknown entity &{entity};")
            i = end + 1
        return "".join(out)

    # -- grammar -------------------------------------------------------------

    def parse_prolog(self) -> None:
        self.skip_whitespace()
        if self.startswith("<?xml"):
            end = self.text.find("?>", self.pos)
            if end < 0:
                raise self.error("unterminated XML declaration")
            self.pos = end + 2
        self.skip_misc()
        if self.startswith("<!DOCTYPE"):
            # Skip to the matching '>' allowing a bracketed subset.
            depth = 0
            while not self.at_end():
                ch = self.text[self.pos]
                self.pos += 1
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth == 0:
                    break
            else:
                raise self.error("unterminated DOCTYPE")
        self.skip_misc()

    def skip_misc(self) -> None:
        """Skip whitespace, comments and PIs between top-level constructs."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                self.parse_comment(emit=False)
            elif self.startswith("<?") and not self.startswith("<?xml"):
                self.parse_pi(emit=False)
            else:
                return

    def parse_comment(self, emit: bool = True) -> None:
        self.expect("<!--")
        end = self.text.find("-->", self.pos)
        if end < 0:
            raise self.error("unterminated comment")
        if emit:
            self.builder.comment(self.text[self.pos:end])
        self.pos = end + 3

    def parse_pi(self, emit: bool = True) -> None:
        self.expect("<?")
        target = self.read_name()
        end = self.text.find("?>", self.pos)
        if end < 0:
            raise self.error("unterminated processing instruction")
        content = self.text[self.pos:end].strip()
        if emit:
            self.builder.processing_instruction(target, content)
        self.pos = end + 2

    def parse_cdata(self) -> str:
        self.expect("<![CDATA[")
        end = self.text.find("]]>", self.pos)
        if end < 0:
            raise self.error("unterminated CDATA section")
        content = self.text[self.pos:end]
        self.pos = end + 3
        return content

    def parse_attribute(self) -> tuple[str, str]:
        name = self.read_name()
        self.skip_whitespace()
        self.expect("=")
        self.skip_whitespace()
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected quoted attribute value")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated attribute value")
        value = self.decode_entities(self.text[self.pos:end])
        self.pos = end + 1
        return name, value

    def parse_element(self) -> None:
        self.expect("<")
        name = self.read_name()
        self.builder.start_element(name)
        seen: set[str] = set()
        while True:
            self.skip_whitespace()
            ch = self.peek()
            if ch == ">":
                self.pos += 1
                break
            if self.startswith("/>"):
                self.pos += 2
                self.builder.end_element()
                return
            attr_name, attr_value = self.parse_attribute()
            if attr_name in seen:
                raise self.error(f"duplicate attribute {attr_name!r}")
            seen.add(attr_name)
            self.builder.attribute(attr_name, attr_value)
        self.parse_content(name)

    def parse_content(self, open_name: str) -> None:
        text_start = self.pos
        while True:
            if self.at_end():
                raise self.error(f"unterminated element <{open_name}>")
            lt = self.text.find("<", self.pos)
            if lt < 0:
                raise self.error(f"unterminated element <{open_name}>")
            if lt > self.pos:
                raw = self.text[self.pos:lt]
                self.builder.text(self.decode_entities(raw))
                self.pos = lt
            if self.startswith("</"):
                self.pos += 2
                name = self.read_name()
                if name != open_name:
                    raise self.error(
                        f"mismatched end tag </{name}> for <{open_name}>")
                self.skip_whitespace()
                self.expect(">")
                self.builder.end_element()
                return
            if self.startswith("<!--"):
                self.parse_comment()
            elif self.startswith("<![CDATA["):
                self.builder.text(self.parse_cdata())
            elif self.startswith("<?"):
                self.parse_pi()
            else:
                self.parse_element()
        del text_start  # single loop exit above

    def run_document(self) -> None:
        self.parse_prolog()
        if not self.startswith("<"):
            raise self.error("expected root element")
        self.builder.start_document()
        self.parse_element()
        self.skip_misc()
        if not self.at_end():
            raise self.error("content after root element")
        self.builder.end_document()

    def run_fragment(self) -> None:
        """Parse a single parentless element (no document node)."""
        self.skip_misc()
        if not self.startswith("<"):
            raise self.error("expected an element")
        self.parse_element()
        self.skip_misc()
        if not self.at_end():
            raise self.error("content after fragment element")


def parse_document(text: str, uri: str = "") -> Document:
    """Parse a full XML document (with document node at ``pre == 0``)."""
    builder = DocumentBuilder(uri)
    _Parser(text, builder).run_document()
    return builder.finish()


def parse_fragment(text: str, uri: str = "") -> Document:
    """Parse one element as a parentless fragment document."""
    builder = DocumentBuilder(uri)
    _Parser(text, builder).run_fragment()
    return builder.finish()
