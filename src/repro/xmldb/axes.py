"""The 13 XPath axes over the pre/size/level store.

Each axis function takes one context :class:`Node` and yields result
nodes in the order the axis defines (forward axes in document order,
reverse axes in reverse document order — the evaluator re-sorts the
final step result into document order as XQuery requires).

Attribute nodes are stored inside their owner's pre/size interval but
are *not* descendants in the XPath data model, so every axis that walks
subtrees filters them out; only ``attribute`` (and ``self``) can yield
them.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.xmldb.node import Node, NodeKind

AxisFunction = Callable[[Node], Iterator[Node]]


def child(node: Node) -> Iterator[Node]:
    doc = node.doc
    if node.kind == NodeKind.ATTRIBUTE:
        return
    end = node.pre + node.size
    cursor = node.pre + 1
    while cursor <= end:
        if doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            yield Node(doc, cursor)
        cursor += doc.sizes[cursor] + 1


def attribute(node: Node) -> Iterator[Node]:
    doc = node.doc
    if node.kind != NodeKind.ELEMENT:
        return
    end = node.pre + node.size
    cursor = node.pre + 1
    while cursor <= end:
        if doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            return  # attributes precede all other children
        yield Node(doc, cursor)
        cursor += 1


def descendant(node: Node) -> Iterator[Node]:
    doc = node.doc
    if node.kind == NodeKind.ATTRIBUTE:
        return
    for pre in range(node.pre + 1, node.pre + node.size + 1):
        if doc.kinds[pre] != NodeKind.ATTRIBUTE:
            yield Node(doc, pre)


def descendant_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from descendant(node)


def self(node: Node) -> Iterator[Node]:
    yield node


def parent(node: Node) -> Iterator[Node]:
    p = node.parent()
    if p is not None:
        yield p


def ancestor(node: Node) -> Iterator[Node]:
    p = node.parent()
    while p is not None:
        yield p
        p = p.parent()


def ancestor_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from ancestor(node)


def following_sibling(node: Node) -> Iterator[Node]:
    doc = node.doc
    if node.kind == NodeKind.ATTRIBUTE:
        return
    parent_pre = doc.parents[node.pre]
    if parent_pre < 0:
        return
    end = parent_pre + doc.sizes[parent_pre]
    cursor = node.pre + node.size + 1
    while cursor <= end:
        if doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            yield Node(doc, cursor)
        cursor += doc.sizes[cursor] + 1


def preceding_sibling(node: Node) -> Iterator[Node]:
    """Preceding siblings in reverse document order."""
    doc = node.doc
    if node.kind == NodeKind.ATTRIBUTE:
        return
    parent_pre = doc.parents[node.pre]
    if parent_pre < 0:
        return
    siblings = []
    cursor = parent_pre + 1
    while cursor < node.pre:
        if doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            siblings.append(cursor)
        cursor += doc.sizes[cursor] + 1
    for pre in reversed(siblings):
        yield Node(doc, pre)


def following(node: Node) -> Iterator[Node]:
    """Nodes after the subtree of ``node``, excluding ancestors."""
    doc = node.doc
    start = node.pre + node.size + 1
    if node.kind == NodeKind.ATTRIBUTE:
        # Per XPath, following of an attribute = following of its owner
        # plus the owner's descendants after the attribute; we use the
        # common simplification: everything after the owner's attributes.
        owner = doc.parents[node.pre]
        start = node.pre + 1
        while start < len(doc.kinds) and doc.kinds[start] == NodeKind.ATTRIBUTE \
                and doc.parents[start] == owner:
            start += 1
    for pre in range(start, len(doc.kinds)):
        if doc.kinds[pre] != NodeKind.ATTRIBUTE:
            yield Node(doc, pre)


def preceding(node: Node) -> Iterator[Node]:
    """Nodes wholly before ``node``, excluding ancestors, reverse order."""
    doc = node.doc
    ancestors = {a.pre for a in ancestor(node)}
    result = []
    for pre in range(node.pre):
        if doc.kinds[pre] == NodeKind.ATTRIBUTE:
            continue
        if pre in ancestors:
            continue
        result.append(pre)
    for pre in reversed(result):
        yield Node(doc, pre)


AXES: dict[str, AxisFunction] = {
    "child": child,
    "attribute": attribute,
    "descendant": descendant,
    "descendant-or-self": descendant_or_self,
    "self": self,
    "parent": parent,
    "ancestor": ancestor,
    "ancestor-or-self": ancestor_or_self,
    "following-sibling": following_sibling,
    "preceding-sibling": preceding_sibling,
    "following": following,
    "preceding": preceding,
}

#: Axes that navigate upwards (paper Condition i forbids these on
#: shipped nodes under pass-by-value and pass-by-fragment).
REVERSE_AXES = frozenset({"parent", "ancestor", "ancestor-or-self"})

#: Axes that navigate sideways (likewise forbidden by Condition i).
HORIZONTAL_AXES = frozenset({
    "preceding", "preceding-sibling", "following", "following-sibling",
})

#: Axes guaranteed to produce non-overlapping results from a
#: duplicate-free input sequence (paper Condition iii whitelist).
NON_OVERLAPPING_AXES = frozenset({
    "parent", "preceding-sibling", "following-sibling", "self", "child",
    "attribute",
})


def matches_node_test(node: Node, test: str) -> bool:
    """Apply a node test: ``node()``, ``text()``, a QName, or ``*``.

    ``*`` matches any element on non-attribute axes; the axis layer
    cannot know the axis here, so ``*`` matches elements and
    attributes — callers on the attribute axis only ever see
    attributes, and all other axes never yield attributes, so the
    combined behaviour is correct.
    """
    if test == "node()":
        return True
    kind = node.kind
    if test == "text()":
        return kind == NodeKind.TEXT
    if test == "comment()":
        return kind == NodeKind.COMMENT
    if kind not in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE):
        return False
    if test == "*":
        return True
    return node.name == test


def axis_step(node: Node, axis: str, test: str) -> Iterator[Node]:
    """One axis step from one context node, node-test applied."""
    for candidate in AXES[axis](node):
        if matches_node_test(candidate, test):
            yield candidate
