"""Contiguous typed columns backing the pre/size/level store.

A :class:`ColumnSet` is the physical layout of one shredded document:
the ``kinds`` byte column, the ``sizes``/``levels``/``parents`` 32-bit
columns (stdlib :class:`array.array` — contiguous machine ints, not
lists of boxed objects), and the ``names``/``values`` string columns.
In-memory documents keep names and values as lists of interned /
plain strings (a Python string column *is* a pointer array, and the
interned name column shares one object per distinct tag); a document
reopened from a spill file substitutes buffer-pool backed lazy
columns (:mod:`repro.xmldb.pool`) with the same sequence protocol, so
every consumer — kernels, indexes, the naive walker — is storage
agnostic.

A :class:`NameTable` interns the distinct names and assigns dense
name-ids in first-occurrence order; the spill format stores the
name-id column plus the table instead of repeating tag strings, and
the assignment is deterministic so freeze → open → freeze round-trips
byte-identically.

``column_byte_sizes`` reports the exact physical bytes of every
column (the spill format's sizes), which is what the planner's
statistics catalog records as the document's columnar footprint.
"""

from __future__ import annotations

from array import array
from sys import intern
from typing import Iterable, Mapping, Sequence

from repro.xmldb.kernels import PRE_TYPECODE

#: Typecode of the node-kind column (unsigned byte per node).
KIND_TYPECODE = "B"

#: Typecode of the value-blob offset column (one u64 per node + 1).
OFFSET_TYPECODE = "Q"


class NameTable:
    """Dense interned-name dictionary: name <-> name-id.

    Ids are assigned in first-occurrence order, so the same column
    always produces the same table — the determinism the spill
    round-trip relies on. Id 0 is always the empty string (the name of
    document/text/comment nodes).
    """

    __slots__ = ("names", "_ids")

    def __init__(self, names: Iterable[str] = ()):
        self.names: list[str] = [""]
        self._ids: dict[str, int] = {"": 0}
        for name in names:
            self.id_of(name)

    def id_of(self, name: str) -> int:
        """The id of ``name``, assigning the next dense id on first
        sight (the name is interned)."""
        nid = self._ids.get(name)
        if nid is None:
            name = intern(name)
            nid = len(self.names)
            self.names.append(name)
            self._ids[name] = nid
        return nid

    def value(self, nid: int) -> str:
        return self.names[nid]

    def __len__(self) -> int:
        return len(self.names)


class ColumnSet:
    """The six parallel columns of one document, typed and contiguous.

    ``kinds`` is ``array('B')``, ``sizes``/``levels``/``parents`` are
    ``array('i')``; ``names``/``values`` are string sequences (lists
    in memory, pooled lazy columns when spilled). Lists handed to the
    constructor are coerced into typed arrays once; typed arrays and
    lazy columns pass through untouched.
    """

    __slots__ = ("kinds", "names", "values", "sizes", "levels",
                 "parents", "count")

    def __init__(self, kinds: Sequence[int], names: Sequence[str],
                 values: Sequence[str], sizes: Sequence[int],
                 levels: Sequence[int], parents: Sequence[int]):
        self.kinds = _typed(kinds, KIND_TYPECODE)
        self.names = names
        self.values = values
        self.sizes = _typed(sizes, PRE_TYPECODE)
        self.levels = _typed(levels, PRE_TYPECODE)
        self.parents = _typed(parents, PRE_TYPECODE)
        self.count = len(self.kinds)

    def __len__(self) -> int:
        return self.count

    # -- physical sizing -----------------------------------------------------

    def column_byte_sizes(self) -> Mapping[str, int]:
        """Exact physical bytes per column, matching what the spill
        format writes: fixed-width columns at their array item size,
        names as a 32-bit id column plus the UTF-8 name table, values
        as a 64-bit offset column plus the UTF-8 blob."""
        count = self.count
        distinct_names = set(self.names)
        distinct_names.add("")
        return {
            "kinds": count * self.kinds.itemsize,
            "names": count * 4 + sum(len(name.encode())
                                     for name in distinct_names),
            "values": (count + 1) * 8 + sum(len(value.encode())
                                            for value in self.values),
            "sizes": count * self.sizes.itemsize,
            "levels": count * self.levels.itemsize,
            "parents": count * self.parents.itemsize,
        }

    def byte_size(self) -> int:
        """Total exact columnar footprint in bytes."""
        return sum(self.column_byte_sizes().values())


def _typed(column: Sequence, typecode: str) -> Sequence:
    """Coerce lists (and tuples) to a typed array; anything already
    array-shaped or lazy passes through."""
    if isinstance(column, (list, tuple)):
        return array(typecode, column)
    return column
