"""Per-document content (value) indexes over element text and
attribute values.

Where :mod:`repro.xmldb.index` answers *structural* steps
(``child::person``) as array range scans, a :class:`ValueIndex`
answers *value* probes (``age < 40``, ``@id = "person7"``) the same
way: per tag (or ``@attr``) name it keeps the node values as typed
sorted arrays — one sorted by string (the XQuery codepoint collation
is plain ``str`` ordering) and one sorted by numeric value for the
entries whose text coerces to a double — so every general-comparison
operator becomes one or two :mod:`bisect` range scans returning a
sorted, duplicate-free pre list.

Columns are built lazily per key on first probe (an element column
materialises the tag's string values via ``string_value``; attribute
columns read the value array directly) and are kept in an LRU bounded
by ``Document.memo_cache_cap``, so a long-lived peer probing many
distinct keys cannot grow without limit. Like the structural index,
the whole index rides on the :class:`~repro.xmldb.document.Document`
object and records its ``epoch``: a ``Peer.store`` swaps the document
object, in-place mutators call ``invalidate_caches()``, and the
accessor rebuilds on mismatch — a stale value column is never served.

Comparison semantics match :func:`repro.xquery.xdm.general_compare`
pair by pair for the shapes the predicate compiler lowers here: node
values are untyped atomics, so a string probe value compares as a
string and a numeric probe value compares as a double (entries whose
text is not numeric become NaN, which satisfies only ``!=``).
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from math import isnan
from time import perf_counter
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.obs.metrics import GLOBAL_REGISTRY
from repro.xmldb.kernels import (
    difference_sorted, equal_bounds, pre_array, sorted_array,
)
from repro.xmldb.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xmldb.document import Document

#: Operators a value column can answer as range scans.
PROBE_OPS = frozenset({"=", "!=", "<", "<=", ">", ">=", "exists"})

_EMPTY = pre_array()


def coerce_number(text: str) -> float:
    """``fn:number`` on an untyped value: a double, NaN when the text
    is not numeric (mirrors :func:`repro.xquery.xdm.to_number`)."""
    try:
        return float(text.strip())
    except ValueError:
        return float("nan")


class ValueColumn:
    """The typed sorted arrays of one tag / attribute name.

    ``str_values``/``str_pres`` cover *every* indexed node of the key,
    sorted by ``(value, pre)``; ``num_values``/``num_pres`` cover the
    numeric-coercible subset, sorted by ``(number, pre)``. ``all_pres``
    is the key's full pre list in document order (complement scans).
    """

    __slots__ = ("key", "str_values", "str_pres", "num_values",
                 "num_pres", "all_pres")

    def __init__(self, key: str, entries: list[tuple[str, int]]):
        self.key = key
        entries.sort()
        self.str_values = [value for value, _pre in entries]
        self.str_pres = pre_array(pre for _value, pre in entries)
        numeric = sorted(
            (number, pre)
            for value, pre in entries
            if not isnan(number := coerce_number(value)))
        self.num_values = array("d", (number for number, _pre in numeric))
        self.num_pres = pre_array(pre for _number, pre in numeric)
        self.all_pres = sorted_array(self.str_pres)

    def __len__(self) -> int:
        return len(self.str_pres)

    # -- probes --------------------------------------------------------------

    def probe(self, op: str, value: object) -> Sequence[int] | None:
        """Sorted pres of nodes whose value satisfies ``value-op-probe``
        under general-comparison coercion; None when the probe value's
        type is not supported (booleans — the caller falls back)."""
        if op == "exists":
            return self.all_pres
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return self._probe_numeric(op, float(value))
        if isinstance(value, str):
            return self._probe_string(op, str(value))
        return None

    def _probe_string(self, op: str, value: str) -> Sequence[int]:
        pres = self.str_pres
        lo, hi = equal_bounds(self.str_values, value)
        if op == "=":
            return sorted_array(pres[lo:hi])
        if op == "!=":
            return sorted_array(pres[:lo] + pres[hi:])
        if op == "<":
            return sorted_array(pres[:lo])
        if op == "<=":
            return sorted_array(pres[:hi])
        if op == ">":
            return sorted_array(pres[hi:])
        if op == ">=":
            return sorted_array(pres[lo:])
        raise ValueError(f"unknown probe operator {op!r}")

    def _probe_numeric(self, op: str, value: float) -> Sequence[int]:
        if isnan(value):
            # NaN satisfies only !=, and it does so against everything.
            return self.all_pres if op == "!=" else _EMPTY
        pres = self.num_pres
        lo, hi = equal_bounds(self.num_values, value)
        if op == "=":
            return sorted_array(pres[lo:hi])
        if op == "!=":
            # Non-numeric entries coerce to NaN, and NaN != n is true:
            # the complement runs over *all* pres, not just numeric ones.
            if lo == hi:
                return self.all_pres
            return difference_sorted(self.all_pres,
                                     sorted_array(pres[lo:hi]))
        if op == "<":
            return sorted_array(pres[:lo])
        if op == "<=":
            return sorted_array(pres[:hi])
        if op == ">":
            return sorted_array(pres[hi:])
        if op == ">=":
            return sorted_array(pres[lo:])
        raise ValueError(f"unknown probe operator {op!r}")


class ValueIndex:
    """All value columns of one document, built lazily per key.

    Keys are element tag names (column over the elements' string
    values — concatenated descendant text, as atomization defines) and
    ``@name`` attribute names (column over attribute values). The
    per-key column cache is an LRU bounded by the document's
    ``memo_cache_cap``; peers share documents across concurrent
    queries, so the LRU mutations are lock-guarded (built columns are
    immutable and probed lock-free once handed out).
    """

    __slots__ = ("doc", "epoch", "_columns", "_attr_pres", "_lock")

    def __init__(self, doc: "Document"):
        self.doc = doc
        self.epoch = doc.epoch
        self._columns: OrderedDict[str, ValueColumn | None] = OrderedDict()
        self._attr_pres: dict[str, array] | None = None
        self._lock = threading.Lock()

    # -- column construction -------------------------------------------------

    def _attribute_pres(self, name: str) -> Sequence[int]:
        by_name = self._attr_pres
        if by_name is None:
            by_name = {}
            ATTRIBUTE = NodeKind.ATTRIBUTE
            # Zipped column iterators: streams page-wise on a pooled
            # (spilled) document.
            for pre, (kind, node_name) in enumerate(
                    zip(self.doc.kinds, self.doc.names)):
                if kind == ATTRIBUTE:
                    bucket = by_name.get(node_name)
                    if bucket is None:
                        by_name[node_name] = bucket = pre_array()
                    bucket.append(pre)
            # Benign publish race: concurrent builders produce the
            # same immutable table; last store wins.
            self._attr_pres = by_name
        return by_name.get(name, _EMPTY)

    def _build(self, key: str) -> ValueColumn | None:
        doc = self.doc
        if key.startswith("@"):
            values = doc.values
            entries = [(values[pre], pre)
                       for pre in self._attribute_pres(key[1:])]
        else:
            # Import here: document -> values -> index would otherwise
            # cycle at module import time.
            from repro.xmldb.index import structural_index

            pres = structural_index(doc).tag_pres.get(key, _EMPTY)
            entries = [(_element_text(doc, pre), pre) for pre in pres]
        if not entries:
            return None
        return ValueColumn(key, entries)

    def column(self, key: str) -> ValueColumn | None:
        """The column for ``key`` (built on first use, LRU-retained);
        None when no node with that name exists."""
        columns = self._columns
        with self._lock:
            if key in columns:
                columns.move_to_end(key)
                return columns[key]
        column = self._build(key)
        with self._lock:
            columns[key] = column
            cap = max(1, self.doc.memo_cache_cap)
            while len(columns) > cap:
                columns.popitem(last=False)
        return column

    def probe(self, key: str, op: str,
              value: object) -> Sequence[int] | None:
        """Sorted pres of ``key`` nodes satisfying ``op value``; an
        empty list when the key has no nodes, None when the probe is
        unsupported (the caller must fall back)."""
        column = self.column(key)
        if column is None:
            return _EMPTY
        return column.probe(op, value)

    def attribute_pres(self, name: str) -> Sequence[int]:
        """Sorted pres of every attribute named ``name`` (existence
        probes — no value column is materialised for these)."""
        return self._attribute_pres(name)

    def cached_columns(self) -> int:
        """How many columns the LRU currently retains (tests/metrics)."""
        return len(self._columns)


def _element_text(doc: "Document", pre: int) -> str:
    """String value of an element: concatenated descendant text."""
    kinds = doc.kinds
    values = doc.values
    end = pre + doc.sizes[pre]
    parts = [values[cursor]
             for cursor in range(pre + 1, end + 1)
             if kinds[cursor] == NodeKind.TEXT]
    if len(parts) == 1:
        return parts[0]
    return "".join(parts)


def node_string(doc: "Document", pre: int) -> str:
    """The XDM string value of the node at ``pre`` straight off the
    arrays (what atomization yields, without building a Node)."""
    kind = doc.kinds[pre]
    if kind in (NodeKind.ATTRIBUTE, NodeKind.TEXT, NodeKind.COMMENT,
                NodeKind.PROCESSING_INSTRUCTION):
        return doc.values[pre]
    return _element_text(doc, pre)


def value_index(doc: "Document") -> ValueIndex:
    """The document's value index, built on first use and rebuilt when
    the cache epoch moved (see ``Document.invalidate_caches``)."""
    index = doc._value_index
    if index is not None and index.epoch == doc.epoch:
        return index
    started = perf_counter()
    index = ValueIndex(doc)
    doc._value_index = index
    GLOBAL_REGISTRY.counter(
        "index_builds_total", "lazy index constructions",
        ("kind",)).labels("value").inc()
    GLOBAL_REGISTRY.counter(
        "index_build_seconds_total", "wall seconds spent building indexes",
        ("kind",)).labels("value").inc(perf_counter() - started)
    return index


def iter_leaf_values(doc: "Document") -> Iterator[tuple[str, str]]:
    """Yield ``(key, value)`` pairs for the histogram-worthy content of
    a document: every attribute (``@name`` keys) and every *leaf*
    element (no element children — the typed fields statistics care
    about; container elements would only smear the histograms).

    One O(nodes) pass; shared by the planner's statistics catalog so
    its per-tag value histograms and the evaluator's value index agree
    on what a node's comparable value is.
    """
    kinds = doc.kinds
    names = doc.names
    values = doc.values
    sizes = doc.sizes
    count = len(kinds)
    for pre in range(count):
        kind = kinds[pre]
        if kind == NodeKind.ATTRIBUTE:
            yield "@" + names[pre], values[pre]
        elif kind == NodeKind.ELEMENT:
            end = pre + sizes[pre]
            has_element_child = False
            parts: list[str] = []
            cursor = pre + 1
            while cursor <= end:
                child_kind = kinds[cursor]
                if child_kind == NodeKind.ELEMENT:
                    has_element_child = True
                    break
                if child_kind == NodeKind.TEXT:
                    parts.append(values[cursor])
                cursor += sizes[cursor] + 1
            if not has_element_child:
                yield names[pre], "".join(parts)
