"""XML storage substrate: a pre/size/level encoded node store.

This package implements the XML data model layer the paper's host
system (MonetDB/XQuery) provides natively: documents stored as arrays
in document order with O(1) node identity, document-order comparison
and ancestry tests, the 13 XPath axes, a small well-formedness parser,
a serialiser, XQuery ``deep-equal``, and the paper's runtime XML
projection (Algorithm 1).

Public entry points:

* :class:`~repro.xmldb.document.Document` — an immutable shredded
  document (or parentless fragment).
* :class:`~repro.xmldb.node.Node` — a lightweight node handle.
* :func:`~repro.xmldb.parser.parse_document` /
  :func:`~repro.xmldb.parser.parse_fragment` — text to store.
* :func:`~repro.xmldb.serializer.serialize` — store to text.
* :mod:`~repro.xmldb.axes` — axis navigation.
* :func:`~repro.xmldb.compare.deep_equal` — XQuery fn:deep-equal.
* :func:`~repro.xmldb.projection.project` — Algorithm 1.
* :class:`~repro.xmldb.columns.ColumnSet` /
  :mod:`~repro.xmldb.kernels` — the typed columnar core and its batch
  kernels.
* :func:`~repro.xmldb.pool.freeze_to` /
  :class:`~repro.xmldb.pool.ColumnStore` /
  :func:`~repro.xmldb.pool.open_document` — the mmap spill format and
  buffer pool (larger-than-memory serving).
"""

from repro.xmldb.node import Node, NodeKind
from repro.xmldb.columns import ColumnSet, NameTable
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.pool import (
    BufferPool, ColumnStore, freeze_to, open_document,
)
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.serializer import serialize, serialize_node
from repro.xmldb.compare import deep_equal, document_order_key, is_same_node
from repro.xmldb.projection import project, ProjectionResult
from repro.xmldb.values import ValueIndex, value_index

__all__ = [
    "Node",
    "NodeKind",
    "ColumnSet",
    "NameTable",
    "BufferPool",
    "ColumnStore",
    "freeze_to",
    "open_document",
    "Document",
    "DocumentBuilder",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_node",
    "deep_equal",
    "document_order_key",
    "is_same_node",
    "project",
    "ProjectionResult",
    "ValueIndex",
    "value_index",
]
