"""Runtime XML projection — Algorithm 1 of the paper (Section VI-B).

Given the *used* node set ``U`` and *returned* node set ``R`` (already
materialised by evaluating the relative projection paths against the
runtime parameter/result sequences), produce the projected document
``D'`` containing:

* every projection node,
* all descendants of *returned* nodes,
* all ancestors of projection nodes (so structural relationships and
  reverse axes keep working on the receiving peer),

and then trim the top of the tree down to the lowest common ancestor of
the projection nodes (the post-processing loop at lines 24-27 of
Algorithm 1).

The implementation walks the pre/size arrays rather than a pointer
tree, which makes the "skip this subtree" step (line 21) O(1) — the
property the paper says any reasonable XML store provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XmlError
from repro.xmldb.document import Document
from repro.xmldb.node import Node, NodeKind


@dataclass(frozen=True)
class ProjectionResult:
    """Outcome of projecting one document.

    ``doc`` is the projected fragment document; ``pre_map`` maps the
    pre rank of every kept node in the *source* document to its pre
    rank in ``doc`` (marshalling uses it to relocate parameter
    references); ``kept`` / ``total`` give the projection precision
    that Figure 10 reports.
    """

    doc: Document
    pre_map: dict[int, int] = field(repr=False)
    kept: int = 0
    total: int = 0


def project(used: list[Node], returned: list[Node],
            keep_attributes: bool = False) -> ProjectionResult | None:
    """Run Algorithm 1. Returns None when both input sets are empty.

    All nodes must belong to the same document. ``keep_attributes``
    additionally retains the attributes of kept *ancestor* elements
    (the schema-aware variant sketched at the end of Section VI-B);
    the default matches the paper's base algorithm.
    """
    projection_nodes = _merge_projection_nodes(used, returned)
    if not projection_nodes:
        return None
    source = projection_nodes[0].doc
    if any(node.doc is not source for node in projection_nodes):
        raise XmlError("projection nodes must share one document")

    returned_pres = {node.pre for node in returned}
    keep = [False] * len(source)

    for node in projection_nodes:
        keep[node.pre] = True
        if node.pre in returned_pres:
            for pre in range(node.pre + 1, node.pre + node.size + 1):
                keep[pre] = True
        parent = source.parents[node.pre]
        while parent >= 0 and not keep[parent]:
            keep[parent] = True
            if keep_attributes:
                _keep_attributes_of(source, parent, keep)
            parent = source.parents[parent]

    projection_pres = {node.pre for node in projection_nodes}
    new_root = _trim_to_lca(source, keep, projection_pres)
    return _materialize(source, keep, new_root)


def _merge_projection_nodes(used: list[Node], returned: list[Node]) -> list[Node]:
    """U ∪ R sorted on document order, duplicate-free (line 1)."""
    seen: set[tuple[int, int]] = set()
    merged: list[Node] = []
    for node in sorted([*used, *returned], key=lambda n: n.pre):
        key = (id(node.doc), node.pre)
        if key not in seen:
            seen.add(key)
            merged.append(node)
    return merged


def _keep_attributes_of(source: Document, element_pre: int,
                        keep: list[bool]) -> None:
    cursor = element_pre + 1
    end = element_pre + source.sizes[element_pre]
    while cursor <= end and source.kinds[cursor] == NodeKind.ATTRIBUTE \
            and source.parents[cursor] == element_pre:
        keep[cursor] = True
        cursor += 1


def _kept_children(source: Document, pre: int, keep: list[bool]) -> list[int]:
    children = []
    cursor = pre + 1
    end = pre + source.sizes[pre]
    while cursor <= end:
        if keep[cursor]:
            children.append(cursor)
        cursor += source.sizes[cursor] + 1
    return children


def _trim_to_lca(source: Document, keep: list[bool],
                 projection_pres: set[int]) -> int:
    """Post-processing of lines 24-27: descend to the LCA."""
    cur = 0
    while keep[cur] is False:
        # The top node may be unkept only for an empty projection,
        # which _merge_projection_nodes already excluded.
        raise XmlError("internal error: root not kept")  # pragma: no cover
    while cur not in projection_pres:
        children = _kept_children(source, cur, keep)
        non_attr = [c for c in children
                    if source.kinds[c] != NodeKind.ATTRIBUTE]
        if len(non_attr) != 1:
            break
        keep[cur] = False
        for child in children:  # drop attributes of the removed node too
            if source.kinds[child] == NodeKind.ATTRIBUTE:
                keep[child] = False
        cur = non_attr[0]
    # Never let the trimmed root be the document node: fragments start
    # at an element so they can be serialised into a message.
    if source.kinds[cur] == NodeKind.DOCUMENT:
        keep[cur] = False
        children = _kept_children(source, cur, keep)
        if len(children) == 1:
            cur = children[0]
        else:  # pragma: no cover - document node always has one element
            raise XmlError("cannot project a document with no root element")
    return cur


def _materialize(source: Document, keep: list[bool],
                 new_root: int) -> ProjectionResult:
    """Copy kept nodes (within the new root's subtree) into a new doc."""
    kinds: list[NodeKind] = []
    names: list[str] = []
    values: list[str] = []
    sizes: list[int] = []
    levels: list[int] = []
    parents: list[int] = []
    pre_map: dict[int, int] = {}

    end = new_root + source.sizes[new_root]
    for pre in range(new_root, end + 1):
        if not keep[pre]:
            continue
        new_pre = len(kinds)
        pre_map[pre] = new_pre
        kinds.append(source.kinds[pre])
        names.append(source.names[pre])
        values.append(source.values[pre])
        sizes.append(0)
        levels.append(0)
        src_parent = source.parents[pre]
        if pre == new_root:
            parents.append(-1)
            levels[new_pre] = 0
        else:
            # The nearest kept ancestor is the new parent (unkept
            # intermediate nodes cannot exist: we always keep full
            # ancestor chains of kept nodes).
            parents.append(pre_map[src_parent])
            levels[new_pre] = levels[pre_map[src_parent]] + 1

    # Recompute sizes: count descendants per node via the parent chain.
    for new_pre in range(len(kinds) - 1, 0, -1):
        parent = parents[new_pre]
        sizes[parent] += sizes[new_pre] + 1

    doc = Document(f"{source.uri}#projected", kinds, names, values,
                   sizes, levels, parents)
    return ProjectionResult(doc=doc, pre_map=pre_map,
                            kept=len(kinds), total=len(source))
