"""Structural indexes over the pre/size/level store.

A :class:`StructuralIndex` is built lazily, once, per
:class:`~repro.xmldb.document.Document` and answers the hot axis steps
as array range scans instead of tree walks — the same lever the
paper's host system (MonetDB/XQuery's Pathfinder "staircase join")
uses:

* **tag index** — element name → sorted pre array (names interned, so
  index keys share storage with the document's name column);
* **kind arrays** — sorted pre arrays per node kind (elements, texts,
  comments, all non-attribute nodes) plus a non-attribute *rank*
  prefix-count used for O(1) XRPC ``nodeid`` addressing;
* **path summary** — the distinct root-to-node tag paths with a
  sorted pre list per path, answering whole ``//a//b`` / ``child::a``
  chains from the document root with a tiny NFA over the path set and
  one merge of the matching pre lists.

Every scan yields pres in ascending order with no duplicates, i.e. the
result is *provably in document order* — the evaluator skips its
post-step sort for these results.

Indexes ride on the document object itself (documents are logically
immutable; a :meth:`Peer.store` swaps the whole object, so a stale
index can never be served) and additionally record the document's
``epoch``: code that mutates arrays in place must call
:meth:`Document.invalidate_caches`, and the accessor rebuilds on an
epoch mismatch.
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.obs.metrics import GLOBAL_REGISTRY
from repro.xmldb import kernels
from repro.xmldb.kernels import pre_array
from repro.xmldb.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xmldb.document import Document

_EMPTY = pre_array()

#: Axes answerable as index range scans (all forward, all yielding
#: document order). The evaluator falls back to the naive per-node
#: walk for every other axis.
INDEXED_AXES = frozenset({
    "self", "child", "attribute", "descendant", "descendant-or-self",
})

#: Node tests the scans understand (plus ``*`` and QNames).
_KIND_TESTS = frozenset({"node()", "text()", "comment()"})


def supported_test(test: str) -> bool:
    """True when ``test`` can be answered from the index arrays."""
    return not test.endswith("()") or test in _KIND_TESTS


class StructuralIndex:
    """All per-document index structures, built in one array pass."""

    __slots__ = ("doc", "epoch", "tag_pres", "element_pres",
                 "non_attr_pres", "text_pres", "comment_pres",
                 "non_attr_rank", "path_of", "path_parent", "path_tag",
                 "path_pres")

    def __init__(self, doc: "Document"):
        self.doc = doc
        self.epoch = doc.epoch
        count = doc.count

        tag_pres: dict[str, array] = {}
        element_pres = pre_array()
        non_attr_pres = pre_array()
        text_pres = pre_array()
        comment_pres = pre_array()
        # Zero-filled typed columns in one allocation apiece.
        non_attr_rank = pre_array(bytes(4 * count))
        path_of = pre_array(bytes(4 * count))
        path_key: dict[tuple[int, str], int] = {}
        path_parent: list[int] = []
        path_tag: list[str] = []
        path_pres: list[array] = []

        ATTRIBUTE = NodeKind.ATTRIBUTE
        ELEMENT = NodeKind.ELEMENT
        TEXT = NodeKind.TEXT
        COMMENT = NodeKind.COMMENT
        rank = 0
        # One zipped pass: column iterators stream page-by-page on a
        # pooled (spilled) document instead of random-accessing every
        # row, and skip per-index __getitem__ calls on arrays too.
        for pre, (kind, name, parent) in enumerate(
                zip(doc.kinds, doc.names, doc.parents)):
            if kind != ATTRIBUTE:
                rank += 1
                non_attr_pres.append(pre)
            non_attr_rank[pre] = rank
            if kind == ELEMENT:
                element_pres.append(pre)
                bucket = tag_pres.get(name)
                if bucket is None:
                    tag_pres[name] = bucket = pre_array()
                bucket.append(pre)
                parent_path = path_of[parent] if parent >= 0 else -1
                key = (parent_path, name)
                path_id = path_key.get(key)
                if path_id is None:
                    path_id = len(path_parent)
                    path_key[key] = path_id
                    path_parent.append(parent_path)
                    path_tag.append(name)
                    path_pres.append(pre_array())
                path_of[pre] = path_id
                path_pres[path_id].append(pre)
            else:
                path_of[pre] = -1
                if kind == TEXT:
                    text_pres.append(pre)
                elif kind == COMMENT:
                    comment_pres.append(pre)

        self.tag_pres = tag_pres
        self.element_pres = element_pres
        self.non_attr_pres = non_attr_pres
        self.text_pres = text_pres
        self.comment_pres = comment_pres
        self.non_attr_rank = non_attr_rank
        self.path_of = path_of
        self.path_parent = path_parent
        self.path_tag = path_tag
        self.path_pres = path_pres

    # -- test dispatch -------------------------------------------------------

    def _candidates(self, test: str) -> Sequence[int]:
        """Sorted pres of subtree-content nodes matching ``test`` (the
        candidate pool for child/descendant scans — never attributes)."""
        if test == "node()":
            return self.non_attr_pres
        if test == "*":
            return self.element_pres
        if test == "text()":
            return self.text_pres
        if test == "comment()":
            return self.comment_pres
        return self.tag_pres.get(test, _EMPTY)

    def matches(self, pre: int, test: str) -> bool:
        """``matches_node_test`` over the raw arrays (self axis)."""
        if test == "node()":
            return True
        kind = self.doc.kinds[pre]
        if test == "text()":
            return kind == NodeKind.TEXT
        if test == "comment()":
            return kind == NodeKind.COMMENT
        if kind != NodeKind.ELEMENT and kind != NodeKind.ATTRIBUTE:
            return False
        if test == "*":
            return True
        return self.doc.names[pre] == test

    # -- nodeid addressing ---------------------------------------------------

    def nodeid(self, root_pre: int, pre: int) -> int:
        """1-based ``descendant-or-self::node()`` rank of ``pre``
        within the subtree rooted at ``root_pre`` (attributes excluded)
        — the XRPC fragment ``nodeid`` in O(1)."""
        return self.non_attr_rank[pre] - self.non_attr_rank[root_pre] + 1

    # -- axis scans ------------------------------------------------------------

    def axis_scan(self, axis: str, test: str,
                  pres: Sequence[int]) -> Sequence[int]:
        """One set-at-a-time axis step over sorted, duplicate-free
        context pres. Returns sorted, duplicate-free result pres
        (typed columns from the batch kernels)."""
        if not pres:
            return _EMPTY
        if axis == "self":
            return pre_array(p for p in pres if self.matches(p, test))
        if axis == "attribute":
            return self._attribute_scan(test, pres)
        if axis == "child":
            return kernels.children_of(self._candidates(test), pres,
                                       self.doc.sizes, self.doc.parents)
        if axis == "descendant":
            return kernels.subtree_sweep(self._candidates(test), pres,
                                         self.doc.sizes)
        if axis == "descendant-or-self":
            selves = pre_array(p for p in pres if self.matches(p, test))
            below = kernels.subtree_sweep(self._candidates(test), pres,
                                          self.doc.sizes)
            return kernels.union_sorted(selves, below)
        raise ValueError(f"axis {axis!r} is not index-scannable")

    def _attribute_scan(self, test: str, pres: Sequence[int]) -> array:
        kinds = self.doc.kinds
        names = self.doc.names
        count = self.doc.count
        by_name = not test.endswith("()") and test != "*"
        if test == "text()" or test == "comment()":
            return _EMPTY
        out = pre_array()
        for owner in pres:
            if kinds[owner] != NodeKind.ELEMENT:
                continue
            cursor = owner + 1
            # Attributes are stored contiguously right after the owner.
            while cursor < count and kinds[cursor] == NodeKind.ATTRIBUTE:
                if not by_name or names[cursor] == test:
                    out.append(cursor)
                cursor += 1
        return out

    # -- path summary --------------------------------------------------------

    def match_chain(self, chain: Sequence[tuple[str, str]]) -> Sequence[int]:
        """All pres reachable from the tree root by ``chain`` — a
        sequence of predicate-free ``("child" | "descendant", name)``
        steps — via NFA simulation over the path summary.

        Anchoring follows the root node at ``pre == 0``: a document
        node anchors above the parentless paths, a fragment root
        element anchors *at* its own path (its tag is not consumed by
        the chain). Non-element fragment roots have no element paths
        and match nothing.
        """
        path_parent = self.path_parent
        path_tag = self.path_tag
        full = len(chain)
        anchored = self.doc.kinds[0] == NodeKind.ELEMENT
        root_path = self.path_of[0] if anchored else -1
        states: list[tuple[int, ...]] = [()] * len(path_parent)
        matched: list[int] = []
        for path_id in range(len(path_parent)):
            if anchored and path_id == root_path:
                states[path_id] = (0,)
                continue
            parent = path_parent[path_id]
            if parent < 0:
                base: tuple[int, ...] = () if anchored else (0,)
            else:
                base = states[parent]
            if not base:
                continue
            state = _advance(base, path_tag[path_id], chain)
            states[path_id] = state
            if state and state[-1] == full:
                matched.append(path_id)
        if not matched:
            return _EMPTY
        if len(matched) == 1:
            return self.path_pres[matched[0]]
        return kernels.merge_sorted([self.path_pres[path_id]
                                     for path_id in matched])


def _advance(states: tuple[int, ...], tag: str,
             chain: Sequence[tuple[str, str]]) -> tuple[int, ...]:
    """Consume one path tag: NFA transition over chain positions."""
    out: set[int] = set()
    full = len(chain)
    for position in states:
        if position >= full:
            continue
        axis, name = chain[position]
        if axis == "descendant":
            out.add(position)  # the tag is a skipped intermediate
        if name == "*" or name == tag:
            out.add(position + 1)
    return tuple(sorted(out))


def structural_index(doc: "Document") -> StructuralIndex:
    """The document's index, built on first use and rebuilt when the
    document's cache epoch moved (see ``Document.invalidate_caches``)."""
    index = doc._structural_index
    if index is not None and index.epoch == doc.epoch:
        return index
    started = perf_counter()
    index = StructuralIndex(doc)
    doc._structural_index = index
    GLOBAL_REGISTRY.counter(
        "index_builds_total", "lazy index constructions",
        ("kind",)).labels("structural").inc()
    GLOBAL_REGISTRY.counter(
        "index_build_seconds_total", "wall seconds spent building indexes",
        ("kind",)).labels("structural").inc(perf_counter() - started)
    return index
