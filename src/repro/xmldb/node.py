"""Node kinds and the lightweight :class:`Node` handle.

A node is identified by the :class:`~repro.xmldb.document.Document` it
lives in plus its preorder rank (``pre``). Handles are value objects:
two handles compare equal iff they denote the same node in the same
document — which is exactly XQuery's node identity (the ``is``
operator). Copying a subtree into a new document creates new nodes with
fresh identity, which is the root cause of the paper's Problems 1-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xmldb.document import Document


class NodeKind(IntEnum):
    """The node kinds of the XDM subset we support.

    ``DOCUMENT`` only ever appears at ``pre == 0``. Fragment documents
    (results of element construction, or shredded XRPC parameters) have
    an ``ELEMENT`` at ``pre == 0`` instead.
    """

    DOCUMENT = 0
    ELEMENT = 1
    ATTRIBUTE = 2
    TEXT = 3
    COMMENT = 4
    PROCESSING_INSTRUCTION = 5


@dataclass(frozen=True, slots=True)
class Node:
    """A handle on one node: a ``(document, pre)`` pair.

    All structural accessors are O(1) thanks to the pre/size/level
    encoding of the backing document.
    """

    doc: "Document"
    pre: int

    # -- identity and order ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.doc is other.doc and self.pre == other.pre

    def __hash__(self) -> int:
        return hash((id(self.doc), self.pre))

    def order_key(self) -> tuple[int, int]:
        """Total document-order key: (document sequence number, pre).

        Inter-document order is implementation-defined by XQuery but
        must be stable; we order documents by creation sequence.
        """
        return (self.doc.doc_seq, self.pre)

    def __lt__(self, other: "Node") -> bool:
        return self.order_key() < other.order_key()

    # -- field accessors ---------------------------------------------------

    @property
    def kind(self) -> NodeKind:
        # The kind column stores raw bytes; the handle re-wraps them in
        # the enum so ``node.kind.name`` etc. keep working. Hot paths
        # read ``doc.kinds[pre]`` directly and compare against the
        # IntEnum members as plain ints.
        return NodeKind(self.doc.kinds[self.pre])

    @property
    def name(self) -> str:
        """Element/attribute/PI name; empty string for other kinds."""
        return self.doc.names[self.pre]

    @property
    def value(self) -> str:
        """Attribute/text/comment/PI content; empty for elements."""
        return self.doc.values[self.pre]

    @property
    def size(self) -> int:
        """Number of nodes in this node's subtree, excluding itself.

        Attributes are stored inside their owner's subtree, so they
        count towards ``size`` even though they are not descendants in
        the XPath sense.
        """
        return self.doc.sizes[self.pre]

    @property
    def level(self) -> int:
        """Tree depth; the ``pre == 0`` node has level 0."""
        return self.doc.levels[self.pre]

    # -- O(1) structural predicates -----------------------------------------

    def parent(self) -> "Node | None":
        p = self.doc.parents[self.pre]
        if p < 0:
            return None
        return Node(self.doc, p)

    def is_ancestor_of(self, other: "Node") -> bool:
        """True iff ``self`` is a proper ancestor of ``other``.

        Uses the pre/size interval test; attribute nodes have no
        descendants so for them this is always False, while an
        attribute's owner *is* counted as its ancestor (XPath's
        parent-of-attribute relationship).
        """
        if self.doc is not other.doc:
            return False
        return self.pre < other.pre <= self.pre + self.size

    def is_descendant_of(self, other: "Node") -> bool:
        return other.is_ancestor_of(self)

    def root(self) -> "Node":
        """The root of the containing tree (fn:root semantics)."""
        return Node(self.doc, 0)

    # -- convenience ---------------------------------------------------------

    def string_value(self) -> str:
        """The XDM string value (concatenated descendant text)."""
        kind = self.kind
        if kind in (NodeKind.ATTRIBUTE, NodeKind.TEXT, NodeKind.COMMENT,
                    NodeKind.PROCESSING_INSTRUCTION):
            return self.value
        doc = self.doc
        kinds = doc.kinds
        values = doc.values
        return "".join(
            values[p] for p in range(self.pre + 1, self.pre + 1 + self.size)
            if kinds[p] == NodeKind.TEXT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = self.kind
        label = self.name if self.name else self.value[:20]
        return f"<Node {kind.name} {label!r} pre={self.pre} doc={self.doc.uri!r}>"
