"""The pre/size/level document store and its builder.

A :class:`Document` holds one XML tree shredded into parallel arrays in
document order (preorder). The encoding is the one used by
MonetDB/XQuery's Pathfinder compiler — the paper's host system — and
gives O(1) node identity, document-order comparison, and ancestry
tests, plus O(subtree) axis scans.

Attributes are stored as nodes immediately after their owner element
(before its first child) and are counted in the owner's ``size``; axis
implementations filter them out where XPath requires (child,
descendant, following, ...).

Documents are logically immutable once built. *Fragment* documents —
parentless trees produced by element construction or by shredding XRPC
message payloads — are ordinary documents whose ``pre == 0`` node is an
element rather than a document node.
"""

from __future__ import annotations

import itertools
from array import array
from sys import intern
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.errors import XmlError
from repro.xmldb.columns import KIND_TYPECODE, ColumnSet
from repro.xmldb.kernels import PRE_TYPECODE
from repro.xmldb.node import Node, NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from pathlib import Path

_doc_sequence = itertools.count()

#: Default bound for the per-document memo caches (serializer subtree
#: memo entries, value-index columns). Large enough that single-query
#: working sets never evict, small enough that a long-lived peer under
#: a multi-tenant workload stays bounded. Override per document via
#: ``Document.memo_cache_cap``.
DEFAULT_MEMO_CACHE_CAP = 1024


def fresh_doc_seq() -> int:
    """Allocate the next document sequence number (inter-document
    order tie-break). The cluster gather renumbers shard response
    fragments in shard order with this, so document order across
    shards is shard-major regardless of which scatter thread happened
    to parse its response first."""
    return next(_doc_sequence)


class Document:
    """One shredded XML tree (document or parentless fragment).

    Use :class:`DocumentBuilder` (or the parser / generator modules) to
    construct instances; the raw constructor trusts its arrays.
    """

    __slots__ = ("uri", "columns", "kinds", "names", "values", "sizes",
                 "levels", "parents", "count", "doc_seq", "epoch",
                 "memo_cache_cap", "_id_index", "_idref_index",
                 "_structural_index", "_value_index", "_ser_cache")

    def __init__(self, uri: str, kinds: Sequence[NodeKind],
                 names: Sequence[str], values: Sequence[str],
                 sizes: Sequence[int], levels: Sequence[int],
                 parents: Sequence[int],
                 columns: ColumnSet | None = None):
        if columns is None:
            columns = ColumnSet(kinds, names, values, sizes, levels,
                                parents)
        if not len(columns):
            raise XmlError("a document must contain at least one node")
        self.uri = uri
        # The six parallel columns are bound as plain attributes (same
        # access cost as before the columnar refactor); ``columns`` is
        # the physical handle (typed arrays, or pooled lazy columns
        # for a spilled document).
        self.columns = columns
        self.kinds = columns.kinds
        self.names = columns.names
        self.values = columns.values
        self.sizes = columns.sizes
        self.levels = columns.levels
        self.parents = columns.parents
        self.count = columns.count
        self.doc_seq = next(_doc_sequence)
        self.epoch = 0
        #: Bound on the unbounded-growth memo caches riding on this
        #: document (serializer subtree memo, value-index columns).
        self.memo_cache_cap = DEFAULT_MEMO_CACHE_CAP
        self._id_index: dict[str, int] | None = None
        self._idref_index: dict[str, list[int]] | None = None
        self._structural_index = None
        self._value_index = None
        self._ser_cache = None

    def invalidate_caches(self) -> None:
        """Drop every derived structure (structural index, value index,
        memoized serialization, ID indexes) and bump the cache epoch.

        Documents are logically immutable — ``Peer.store`` swaps whole
        ``Document`` objects, which invalidates implicitly — but any
        code that mutates the arrays in place must call this so a
        stale index or serialization is never served.
        """
        self.epoch += 1
        self._id_index = None
        self._idref_index = None
        self._structural_index = None
        self._value_index = None
        self._ser_cache = None

    @classmethod
    def from_columns(cls, uri: str, columns: ColumnSet) -> "Document":
        """Wrap an already-built :class:`ColumnSet` (spill reopen, the
        streaming generator) without re-coercing any column."""
        return cls(uri, (), (), (), (), (), (), columns=columns)

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def root(self) -> Node:
        return Node(self, 0)

    @property
    def is_fragment(self) -> bool:
        """True for parentless trees (no document node at the top)."""
        return self.kinds[0] != NodeKind.DOCUMENT

    def node(self, pre: int) -> Node:
        # ``count`` is bound once at construction: the bounds check
        # costs two compares, never a column ``len()`` (which walks
        # the page table on a pooled column).
        if not 0 <= pre < self.count:
            raise XmlError(f"pre rank {pre} out of range for {self.uri!r}")
        return Node(self, pre)

    def nodes(self) -> Iterator[Node]:
        """All nodes in document order (including attributes)."""
        for pre in range(self.count):
            yield Node(self, pre)

    # -- physical layout ------------------------------------------------------

    def column_byte_sizes(self) -> Mapping[str, int]:
        """Exact per-column physical bytes (see
        :meth:`ColumnSet.column_byte_sizes`)."""
        return self.columns.column_byte_sizes()

    def column_bytes(self) -> int:
        """Total exact columnar footprint in bytes — the figure the
        planner's statistics catalog records."""
        return self.columns.byte_size()

    def freeze_to(self, path: "str | Path") -> int:
        """Spill this document to the page-granular column format at
        ``path`` (see :mod:`repro.xmldb.pool`); returns the file size
        in bytes. Reopen with :func:`repro.xmldb.pool.ColumnStore.open`."""
        from repro.xmldb.pool import freeze_to

        return freeze_to(self, path)

    # -- ID/IDREF index (for fn:id / fn:idref) --------------------------------

    def _build_id_indexes(self) -> None:
        ids: dict[str, int] = {}
        idrefs: dict[str, list[int]] = {}
        for pre, kind in enumerate(self.kinds):
            if kind != NodeKind.ATTRIBUTE:
                continue
            name = self.names[pre]
            owner = self.parents[pre]
            if name in ("id", "xml:id"):
                ids.setdefault(self.values[pre], owner)
            elif name.endswith("idref") or name == "person" or name.startswith("ref"):
                # Schema-less heuristic mirroring the paper's remark that
                # without a DTD, all ID-typed attributes must be conserved.
                for token in self.values[pre].split():
                    idrefs.setdefault(token, []).append(owner)
        self._id_index = ids
        self._idref_index = idrefs

    def element_by_id(self, value: str) -> Node | None:
        """fn:id lookup: the element whose ID attribute equals ``value``."""
        if self._id_index is None:
            self._build_id_indexes()
        assert self._id_index is not None
        pre = self._id_index.get(value)
        return None if pre is None else Node(self, pre)

    def elements_by_idref(self, value: str) -> list[Node]:
        """fn:idref lookup: elements with an IDREF attribute equal to ``value``."""
        if self._idref_index is None:
            self._build_id_indexes()
        assert self._idref_index is not None
        return [Node(self, pre) for pre in self._idref_index.get(value, [])]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Document {self.uri!r} nodes={len(self.kinds)}>"


class DocumentBuilder:
    """Incremental builder producing a :class:`Document`.

    Call sequence: optionally :meth:`start_document`, then nested
    :meth:`start_element` / :meth:`attribute` / :meth:`text` /
    :meth:`comment` / :meth:`processing_instruction` /
    :meth:`end_element` calls, then :meth:`finish`.

    ``size`` values are back-patched when an element closes, so building
    is a single pass.
    """

    def __init__(self, uri: str = ""):
        self.uri = uri
        # Fixed-width columns accumulate straight into typed arrays —
        # one contiguous buffer per column, no per-node boxed ints.
        self._kinds = array(KIND_TYPECODE)
        self._names: list[str] = []
        self._values: list[str] = []
        self._sizes = array(PRE_TYPECODE)
        self._levels = array(PRE_TYPECODE)
        self._parents = array(PRE_TYPECODE)
        self._stack: list[int] = []  # pre ranks of open nodes
        self._has_content: list[bool] = []  # parallel to _stack
        self._finished = False

    # -- low-level append ------------------------------------------------------

    def _append(self, kind: NodeKind, name: str, value: str) -> int:
        pre = len(self._kinds)
        parent = self._stack[-1] if self._stack else -1
        self._kinds.append(kind)
        self._names.append(name)
        self._values.append(value)
        self._sizes.append(0)
        self._levels.append(len(self._stack))
        self._parents.append(parent)
        return pre

    # -- events ------------------------------------------------------------------

    def start_document(self) -> None:
        if self._kinds:
            raise XmlError("document node must be the first node")
        pre = self._append(NodeKind.DOCUMENT, "", "")
        self._stack.append(pre)
        self._has_content.append(False)

    def start_element(self, name: str) -> None:
        if self._has_content:
            self._has_content[-1] = True
        # Interned names make name tests identity comparisons and let
        # every document / tag-index key share one string per tag.
        pre = self._append(NodeKind.ELEMENT, intern(name), "")
        self._stack.append(pre)
        self._has_content.append(False)

    def attribute(self, name: str, value: str) -> None:
        if not self._stack or self._kinds[self._stack[-1]] != NodeKind.ELEMENT:
            raise XmlError("attribute outside an open element")
        if self._has_content[-1]:
            raise XmlError(f"attribute {name!r} after element content")
        self._append(NodeKind.ATTRIBUTE, intern(name), value)

    def text(self, content: str) -> None:
        if not content:
            return
        if self._has_content:
            self._has_content[-1] = True
        # Merge adjacent text nodes, as the XDM requires.
        last = len(self._kinds) - 1
        if (last >= 0 and self._kinds[last] == NodeKind.TEXT
                and self._parents[last] == (self._stack[-1] if self._stack else -1)):
            self._values[last] += content
            return
        self._append(NodeKind.TEXT, "", content)

    def comment(self, content: str) -> None:
        if self._has_content:
            self._has_content[-1] = True
        self._append(NodeKind.COMMENT, "", content)

    def processing_instruction(self, target: str, content: str) -> None:
        if self._has_content:
            self._has_content[-1] = True
        self._append(NodeKind.PROCESSING_INSTRUCTION, intern(target), content)

    def end_element(self) -> None:
        if not self._stack or self._kinds[self._stack[-1]] != NodeKind.ELEMENT:
            raise XmlError("end_element without matching start_element")
        pre = self._stack.pop()
        self._has_content.pop()
        self._sizes[pre] = len(self._kinds) - pre - 1

    def end_document(self) -> None:
        if len(self._stack) != 1 or self._kinds[self._stack[0]] != NodeKind.DOCUMENT:
            raise XmlError("unbalanced document")
        pre = self._stack.pop()
        self._has_content.pop()
        self._sizes[pre] = len(self._kinds) - pre - 1

    # -- subtree copy -------------------------------------------------------------

    def copy_subtree(self, node: Node) -> None:
        """Deep-copy ``node`` (and its subtree) as content here.

        This is the marshalling primitive: the copy gets fresh node
        identity, which is exactly the pass-by-value behaviour whose
        consequences the paper analyses.
        """
        src = node.doc
        if self._has_content and node.kind != NodeKind.ATTRIBUTE:
            self._has_content[-1] = True
        base_level = len(self._stack)
        start = node.pre
        end = node.pre + src.sizes[node.pre]
        src_level0 = src.levels[start]
        offset = len(self._kinds) - start
        parent_of_root = self._stack[-1] if self._stack else -1
        stop = end + 1
        # Kinds/names/values/sizes copy verbatim: whole-column slice
        # extends instead of per-node appends.
        self._kinds.extend(src.kinds[start:stop])
        self._names.extend(src.names[start:stop])
        self._values.extend(src.values[start:stop])
        self._sizes.extend(src.sizes[start:stop])
        shift = base_level - src_level0
        if shift == 0:
            self._levels.extend(src.levels[start:stop])
        else:
            self._levels.extend(level + shift
                                for level in src.levels[start:stop])
        self._parents.append(parent_of_root)
        self._parents.extend(parent + offset
                             for parent in src.parents[start + 1:stop])

    # -- completion ------------------------------------------------------------------

    def finish(self) -> Document:
        return Document.from_columns(self.uri, self.finish_columns())

    def finish_columns(self) -> ColumnSet:
        """The built tree as a bare :class:`ColumnSet` — the streaming
        generator path, which spills column sets without constructing
        a :class:`Document` (no doc-seq allocation, no cache slots)."""
        if self._stack:
            raise XmlError("finish() with unclosed elements")
        if self._finished:
            raise XmlError("builder already finished")
        self._finished = True
        return ColumnSet(self._kinds, self._names, self._values,
                         self._sizes, self._levels, self._parents)


def build_fragment_from_nodes(uri: str, content: Iterable[Node]) -> Document:
    """Copy a sequence of nodes into one fresh fragment document.

    Used by element construction and by message shredding. The nodes
    are wrapped under a synthetic element only when there is more than
    one top-level node; a single element/text input becomes the
    fragment root itself.
    """
    nodes = list(content)
    builder = DocumentBuilder(uri)
    if len(nodes) == 1 and nodes[0].kind == NodeKind.ELEMENT:
        builder.copy_subtree(nodes[0])
        return builder.finish()
    builder.start_element("xrpc:sequence")
    for node in nodes:
        builder.copy_subtree(node)
    builder.end_element()
    return builder.finish()
