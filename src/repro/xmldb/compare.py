"""Node identity, document order and XQuery fn:deep-equal.

``deep_equal`` is the paper's notion of query equivalence: two
decompositions of a query are equivalent when their results are
deep-equal for every database. All correctness tests in this repo
compare local against distributed execution with this function.
"""

from __future__ import annotations

from repro.xmldb.node import Node, NodeKind


def is_same_node(left: Node, right: Node) -> bool:
    """XQuery ``is``: identity, not structural equality."""
    return left.doc is right.doc and left.pre == right.pre


def document_order_key(node: Node) -> tuple[int, int]:
    """Sort key establishing a stable total document order."""
    return node.order_key()


def node_before(left: Node, right: Node) -> bool:
    """XQuery ``<<``."""
    return document_order_key(left) < document_order_key(right)


def node_after(left: Node, right: Node) -> bool:
    """XQuery ``>>``."""
    return document_order_key(left) > document_order_key(right)


def sort_document_order(nodes: list[Node]) -> list[Node]:
    """Sort into document order and remove duplicates (by identity).

    This is the mandatory post-processing of every XPath step result.
    Already-ordered input — one strictly ascending ``(doc_seq, pre)``
    run, which is what single-context forward-axis walks and all index
    range scans produce — is detected in one pass and returned as-is,
    skipping both the sort and the duplicate-tracking set.
    """
    if not isinstance(nodes, list):
        nodes = list(nodes)
    if _is_strictly_ascending(nodes):
        return nodes
    seen: set[tuple[int, int]] = set()
    out: list[Node] = []
    for node in sorted(nodes, key=document_order_key):
        key = (id(node.doc), node.pre)
        if key not in seen:
            seen.add(key)
            out.append(node)
    return out


def _is_strictly_ascending(nodes: list[Node]) -> bool:
    """One strictly ascending document-order run has no duplicates by
    construction (strict inequality is an identity tie-breaker)."""
    if len(nodes) < 2:
        return True
    previous = nodes[0]
    for node in nodes[1:]:
        if node.doc is previous.doc:
            if node.pre <= previous.pre:
                return False
        elif node.order_key() <= previous.order_key():
            return False
        previous = node
    return True


def deep_equal(left: Node, right: Node) -> bool:
    """Structural equality per XQuery fn:deep-equal (nodes only).

    Comments and processing instructions are ignored inside element
    content, per the spec. Attribute order is irrelevant.
    """
    lk, rk = left.kind, right.kind
    if lk != rk:
        return False
    if lk == NodeKind.TEXT or lk == NodeKind.COMMENT:
        return left.value == right.value
    if lk == NodeKind.ATTRIBUTE:
        return left.name == right.name and left.value == right.value
    if lk == NodeKind.PROCESSING_INSTRUCTION:
        return left.name == right.name and left.value == right.value
    if lk == NodeKind.ELEMENT and rk == NodeKind.ELEMENT:
        if left.name != right.name:
            return False
        left_attrs = {a.name: a.value for a in _attributes(left)}
        right_attrs = {a.name: a.value for a in _attributes(right)}
        if left_attrs != right_attrs:
            return False
    return _content_equal(left, right)


def _attributes(node: Node):
    from repro.xmldb import axes

    return axes.attribute(node)


def _comparable_children(node: Node) -> list[Node]:
    from repro.xmldb import axes

    return [c for c in axes.child(node)
            if c.kind in (NodeKind.ELEMENT, NodeKind.TEXT)]


def _content_equal(left: Node, right: Node) -> bool:
    left_children = _comparable_children(left)
    right_children = _comparable_children(right)
    if len(left_children) != len(right_children):
        return False
    return all(deep_equal(lc, rc)
               for lc, rc in zip(left_children, right_children))
