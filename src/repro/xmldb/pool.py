"""Page-granular column spill format and the mmap buffer pool.

This is the larger-than-memory half of the columnar core: a
:class:`~repro.xmldb.document.Document` can be *frozen* to a single
``XCOL1`` file (:func:`freeze_to`) and reopened
(:meth:`ColumnStore.open`) as a document whose columns are **lazy** —
backed by a read-only ``mmap`` of the file plus a small
:class:`BufferPool` of decoded pages. Every consumer (kernels,
structural/value index builders, the naive walker, the serializer)
speaks the plain sequence protocol, so a spilled document is
indistinguishable from an in-memory one except for its resident set:
only the pinned pages plus the pool budget are ever held decoded, and
evicted ranges are released back to the OS with
``madvise(MADV_DONTNEED)`` so a corpus several times larger than the
budget is served under a bounded RSS.

File layout (all integers little/native-endian — the header records
the byteorder and :meth:`ColumnStore.open` refuses a mismatch)::

    magic  b"XCOL1\\0\\0\\0"                              8 bytes
    header_len                                          u64
    header JSON  {uri, count, byteorder, names, columns} utf-8
    --- padding to the next 4096 boundary ---
    kinds          count bytes            array('B')
    names          count * 4 bytes        array('i') of name-ids
    sizes          count * 4 bytes        array('i')
    levels         count * 4 bytes        array('i')
    parents        count * 4 bytes        array('i')
    value_offsets  (count + 1) * 8 bytes  array('Q')
    value_blob     offsets[-1] bytes      utf-8, concatenated values
    (each section padded to the next 4096 boundary)

The name column is stored as dense ids against the header's name
table; ids are assigned in first-occurrence order
(:class:`~repro.xmldb.columns.NameTable`), so *freeze → open → freeze*
round-trips byte-identically — the equivalence the spill tests pin.

The :class:`BufferPool` is deliberately simple: an LRU of decoded
pages under a byte budget, with pin counts so a page being iterated
is never evicted mid-yield, and hit/miss/eviction counters for the
benchmarks and tests to assert against.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.errors import XmlError
from repro.xmldb.columns import (
    KIND_TYPECODE, OFFSET_TYPECODE, ColumnSet, NameTable,
)
from repro.xmldb.kernels import PRE_TYPECODE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xmldb.document import Document

#: File magic of the spill format, version 1.
MAGIC = b"XCOL1\x00\x00\x00"

#: Sections (and the header) start on this boundary, so page-aligned
#: ``madvise`` ranges map cleanly onto column prefixes.
PAGE_ALIGN = 4096

#: Items per decoded buffer-pool page. 4096 ints is 16 KiB per page
#: for the 32-bit columns — big enough to amortise the decode, small
#: enough that a few-hundred-KiB budget still holds useful pages.
POOL_PAGE_ITEMS = 4096

#: Default buffer-pool budget: 64 MiB of decoded pages.
DEFAULT_POOL_BYTES = 64 * 2**20

#: Fixed on-disk column order; offsets are derived from the lengths,
#: so the header only has to record the lengths.
_COLUMN_ORDER = ("kinds", "names", "sizes", "levels", "parents",
                 "value_offsets", "value_blob")

#: Rough per-decoded-string bookkeeping overhead (CPython ``str``
#: header) used for the pool's value-page byte accounting.
_STR_OVERHEAD = 56


def _align(offset: int) -> int:
    return (offset + PAGE_ALIGN - 1) // PAGE_ALIGN * PAGE_ALIGN


# ---------------------------------------------------------------------------
# Freezing (spill)
# ---------------------------------------------------------------------------


def freeze_to(doc: "Document", path: "str | Path") -> int:
    """Spill ``doc``'s columns to ``path`` in the XCOL1 format.

    Returns the file size in bytes. Works on in-memory and already
    pooled documents alike (columns are consumed through the sequence
    protocol, page-wise for pooled ones).
    """
    return freeze_columns(doc.columns, doc.uri, path)


def freeze_columns(columns: ColumnSet, uri: str,
                   path: "str | Path") -> int:
    """Spill a bare :class:`ColumnSet` (the streaming generator path —
    no :class:`Document` ever constructed)."""
    doc = columns
    table = NameTable()
    name_ids = array(PRE_TYPECODE, (table.id_of(name)
                                    for name in doc.names))
    offsets = array(OFFSET_TYPECODE, [0])
    chunks: list[bytes] = []
    total = 0
    for value in doc.values:
        raw = value.encode()
        total += len(raw)
        offsets.append(total)
        chunks.append(raw)
    sections: dict[str, bytes] = {
        "kinds": _section_bytes(doc.kinds, KIND_TYPECODE),
        "names": name_ids.tobytes(),
        "sizes": _section_bytes(doc.sizes, PRE_TYPECODE),
        "levels": _section_bytes(doc.levels, PRE_TYPECODE),
        "parents": _section_bytes(doc.parents, PRE_TYPECODE),
        "value_offsets": offsets.tobytes(),
        "value_blob": b"".join(chunks),
    }
    header = {
        "uri": uri,
        "count": doc.count,
        "byteorder": sys.byteorder,
        "names": table.names,
        "columns": {name: len(sections[name]) for name in _COLUMN_ORDER},
    }
    header_raw = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode()
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<Q", len(header_raw)))
        fh.write(header_raw)
        cursor = len(MAGIC) + 8 + len(header_raw)
        for name in _COLUMN_ORDER:
            start = _align(cursor)
            fh.write(b"\x00" * (start - cursor))
            fh.write(sections[name])
            cursor = start + len(sections[name])
        end = _align(cursor)
        fh.write(b"\x00" * (end - cursor))
    return end


def _section_bytes(column: Sequence, typecode: str) -> bytes:
    if isinstance(column, array) and column.typecode == typecode:
        return column.tobytes()
    return array(typecode, iter(column)).tobytes()


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


class _Page:
    """One decoded page: payload, its byte cost, a pin count, and the
    release hook run on eviction (``madvise`` of the backing range)."""

    __slots__ = ("data", "nbytes", "pins", "release")

    def __init__(self, data, nbytes: int, release: Callable[[], None]):
        self.data = data
        self.nbytes = nbytes
        self.pins = 0
        self.release = release


class BufferPool:
    """LRU cache of decoded column pages under a byte budget.

    Pages with a non-zero pin count are skipped by eviction (an
    iterator pins the page it is currently yielding from), so a
    pathological budget can transiently overshoot by the pinned set —
    correctness never depends on the budget.
    """

    __slots__ = ("budget_bytes", "hits", "misses", "evictions",
                 "cached_bytes", "_pages")

    def __init__(self, budget_bytes: int = DEFAULT_POOL_BYTES):
        self.budget_bytes = budget_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cached_bytes = 0
        self._pages: OrderedDict[tuple[int, int], _Page] = OrderedDict()

    def get(self, key: tuple[int, int],
            loader: Callable[[], _Page]) -> _Page:
        """The page under ``key``, decoding via ``loader`` on a miss
        (and evicting LRU unpinned pages back under budget)."""
        page = self._pages.get(key)
        if page is not None:
            self.hits += 1
            self._pages.move_to_end(key)
            return page
        self.misses += 1
        page = loader()
        self._pages[key] = page
        self.cached_bytes += page.nbytes
        if self.cached_bytes > self.budget_bytes:
            self._evict()
        return page

    def _evict(self) -> None:
        for key in list(self._pages):
            if self.cached_bytes <= self.budget_bytes:
                return
            page = self._pages[key]
            if page.pins:
                continue
            del self._pages[key]
            self.cached_bytes -= page.nbytes
            self.evictions += 1
            page.release()

    def drop_all(self) -> None:
        """Forget every cached page (store close)."""
        self._pages.clear()
        self.cached_bytes = 0

    def stats(self) -> Mapping[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "cached_bytes": self.cached_bytes,
                "budget_bytes": self.budget_bytes}


# ---------------------------------------------------------------------------
# Pooled lazy columns
# ---------------------------------------------------------------------------


class _PooledIntColumn:
    """A fixed-width column decoded page-wise from the store's mmap.

    Implements the sequence protocol (int / slice ``__getitem__``,
    ``__len__``, page-streaming ``__iter__``) so kernels and index
    builders treat it exactly like an in-memory ``array``.
    """

    __slots__ = ("_store", "_typecode", "_itemsize", "_offset", "count")

    def __init__(self, store: "ColumnStore", typecode: str,
                 offset: int, count: int):
        self._store = store
        self._typecode = typecode
        self._itemsize = array(typecode).itemsize
        self._offset = offset
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _page(self, page_no: int) -> _Page:
        def load() -> _Page:
            start = page_no * POOL_PAGE_ITEMS
            n = min(POOL_PAGE_ITEMS, self.count - start)
            lo = self._offset + start * self._itemsize
            nbytes = n * self._itemsize
            data = array(self._typecode)
            data.frombytes(self._store.mm[lo:lo + nbytes])
            return _Page(data, nbytes,
                         lambda: self._store.release(lo, nbytes))
        return self._store.pool.get((id(self), page_no), load)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._slice(index)
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(index)
        return self._page(index // POOL_PAGE_ITEMS) \
            .data[index % POOL_PAGE_ITEMS]

    def _slice(self, index: slice):
        start, stop, step = index.indices(self.count)
        out = array(self._typecode)
        if step != 1:
            out.extend(self[i] for i in range(start, stop, step))
            return out
        while start < stop:
            page = self._page(start // POOL_PAGE_ITEMS)
            base = start - start % POOL_PAGE_ITEMS
            hi = min(stop - base, len(page.data))
            out.extend(page.data[start - base:hi])
            start = base + hi
        return out

    def __iter__(self) -> Iterator[int]:
        for page_no in range((self.count + POOL_PAGE_ITEMS - 1)
                             // POOL_PAGE_ITEMS):
            page = self._page(page_no)
            page.pins += 1
            try:
                yield from page.data
            finally:
                page.pins -= 1


class _PooledNameColumn:
    """The name column: pooled id column + the header's name table.

    Interned table strings are shared across every row that carries
    the tag, exactly like the in-memory name list.
    """

    __slots__ = ("_ids", "_table", "count")

    def __init__(self, ids: _PooledIntColumn, table: list[str]):
        self._ids = ids
        self._table = table
        self.count = ids.count

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index):
        if isinstance(index, slice):
            table = self._table
            return [table[nid] for nid in self._ids[index]]
        return self._table[self._ids[index]]

    def __iter__(self) -> Iterator[str]:
        return map(self._table.__getitem__, iter(self._ids))


class _PooledValueColumn:
    """The value column: offsets + utf-8 blob, decoded page-wise.

    A decoded page is a list of strings; its pool cost is the encoded
    length plus a per-string header estimate, so the budget tracks
    real memory rather than row counts.
    """

    __slots__ = ("_store", "_offsets", "_blob_offset", "count")

    def __init__(self, store: "ColumnStore",
                 offsets: _PooledIntColumn, blob_offset: int, count: int):
        self._store = store
        self._offsets = offsets
        self._blob_offset = blob_offset
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _page(self, page_no: int) -> _Page:
        def load() -> _Page:
            start = page_no * POOL_PAGE_ITEMS
            n = min(POOL_PAGE_ITEMS, self.count - start)
            bounds = self._offsets[start:start + n + 1]
            base = bounds[0]
            lo = self._blob_offset + base
            span = bounds[-1] - base
            raw = self._store.mm[lo:lo + span]
            data = [raw[bounds[i] - base:bounds[i + 1] - base].decode()
                    for i in range(n)]
            nbytes = span + n * _STR_OVERHEAD
            return _Page(data, nbytes,
                         lambda: self._store.release(lo, span))
        return self._store.pool.get((id(self), page_no), load)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.count)
            return [self[i] for i in range(start, stop, step)]
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(index)
        return self._page(index // POOL_PAGE_ITEMS) \
            .data[index % POOL_PAGE_ITEMS]

    def __iter__(self) -> Iterator[str]:
        for page_no in range((self.count + POOL_PAGE_ITEMS - 1)
                             // POOL_PAGE_ITEMS):
            page = self._page(page_no)
            page.pins += 1
            try:
                yield from page.data
            finally:
                page.pins -= 1


class StoredColumnSet(ColumnSet):
    """A :class:`ColumnSet` over pooled lazy columns, keeping a handle
    on the backing store and answering physical sizing straight from
    the header directory (no column scans)."""

    __slots__ = ("store", "_byte_sizes")

    def __init__(self, store: "ColumnStore", kinds, names, values,
                 sizes, levels, parents,
                 byte_sizes: Mapping[str, int]):
        super().__init__(kinds, names, values, sizes, levels, parents)
        self.store = store
        self._byte_sizes = dict(byte_sizes)

    def column_byte_sizes(self) -> Mapping[str, int]:
        return dict(self._byte_sizes)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class ColumnStore:
    """A read-only mmap over one XCOL1 file plus its buffer pool.

    :meth:`open` parses the header, wires pooled lazy columns over the
    section ranges, and returns the store; :attr:`document` is the
    reopened :class:`~repro.xmldb.document.Document`. The store stays
    reachable from the document via ``doc.columns.store``.
    """

    __slots__ = ("path", "pool", "mm", "_file", "header", "document",
                 "_madvise_ok")

    @classmethod
    def open(cls, path: "str | Path",
             budget_bytes: int = DEFAULT_POOL_BYTES,
             pool: BufferPool | None = None) -> "ColumnStore":
        return cls(Path(path), pool or BufferPool(budget_bytes))

    def __init__(self, path: Path, pool: BufferPool):
        from repro.xmldb.document import Document

        self.path = path
        self.pool = pool
        self._file = path.open("rb")
        self.mm = mmap.mmap(self._file.fileno(), 0,
                            access=mmap.ACCESS_READ)
        self._madvise_ok = (hasattr(self.mm, "madvise")
                            and hasattr(mmap, "MADV_DONTNEED"))
        if self.mm[:len(MAGIC)] != MAGIC:
            raise XmlError(f"{path} is not an XCOL1 spill file")
        (header_len,) = struct.unpack_from("<Q", self.mm, len(MAGIC))
        header_start = len(MAGIC) + 8
        self.header = json.loads(
            self.mm[header_start:header_start + header_len].decode())
        if self.header["byteorder"] != sys.byteorder:
            raise XmlError(
                f"{path} was written on a {self.header['byteorder']}-endian "
                f"host; this host is {sys.byteorder}-endian")
        count = self.header["count"]
        offsets = self._section_offsets(header_start + header_len)
        table = [sys.intern(name) for name in self.header["names"]]
        name_ids = _PooledIntColumn(self, PRE_TYPECODE,
                                    offsets["names"], count)
        value_offsets = _PooledIntColumn(self, OFFSET_TYPECODE,
                                         offsets["value_offsets"],
                                         count + 1)
        columns = StoredColumnSet(
            self,
            _PooledIntColumn(self, KIND_TYPECODE, offsets["kinds"], count),
            _PooledNameColumn(name_ids, table),
            _PooledValueColumn(self, value_offsets,
                               offsets["value_blob"], count),
            _PooledIntColumn(self, PRE_TYPECODE, offsets["sizes"], count),
            _PooledIntColumn(self, PRE_TYPECODE, offsets["levels"], count),
            _PooledIntColumn(self, PRE_TYPECODE, offsets["parents"], count),
            byte_sizes=self._logical_byte_sizes(count),
        )
        self.document = Document.from_columns(self.header["uri"], columns)

    def _section_offsets(self, header_end: int) -> dict[str, int]:
        """Absolute file offsets, derived by aligning the header-listed
        lengths in the fixed column order (what :func:`freeze_to`
        wrote)."""
        lengths = self.header["columns"]
        offsets: dict[str, int] = {}
        cursor = header_end
        for name in _COLUMN_ORDER:
            cursor = _align(cursor)
            offsets[name] = cursor
            cursor += lengths[name]
        return offsets

    def _logical_byte_sizes(self, count: int) -> dict[str, int]:
        """The same figures :meth:`ColumnSet.column_byte_sizes` reports
        for the in-memory document, read off the header directory."""
        lengths = self.header["columns"]
        name_table_bytes = sum(len(name.encode())
                               for name in self.header["names"])
        return {
            "kinds": lengths["kinds"],
            "names": lengths["names"] + name_table_bytes,
            "values": lengths["value_offsets"] + lengths["value_blob"],
            "sizes": lengths["sizes"],
            "levels": lengths["levels"],
            "parents": lengths["parents"],
        }

    # -- page release --------------------------------------------------------

    def release(self, offset: int, length: int) -> None:
        """Hint the OS that the mmap range behind an evicted page is no
        longer needed (bounds the resident set). The range is shrunk to
        whole OS pages; a sub-page range is simply skipped."""
        if not self._madvise_ok or self.mm.closed:
            return
        lo = _align(offset)
        hi = (offset + length) // PAGE_ALIGN * PAGE_ALIGN
        if lo < hi:
            self.mm.madvise(mmap.MADV_DONTNEED, lo, hi - lo)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.pool.drop_all()
        if not self.mm.closed:
            self.mm.close()
        self._file.close()

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_document(path: "str | Path",
                  budget_bytes: int = DEFAULT_POOL_BYTES) -> "Document":
    """Convenience wrapper: the reopened document of
    ``ColumnStore.open(path, budget_bytes)`` (store reachable via
    ``doc.columns.store``)."""
    return ColumnStore.open(path, budget_bytes).document
