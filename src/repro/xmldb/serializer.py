"""Serialise nodes back to XML text.

Serialisation is the marshalling workhorse: pass-by-value copies a
parameter node by serialising its subtree into the message, and the
message byte counts that drive the paper's bandwidth experiments
(Figure 7) are the lengths of these strings.
"""

from __future__ import annotations

from repro.xmldb.document import Document
from repro.xmldb.node import Node, NodeKind


def escape_text(value: str) -> str:
    """Escape character data content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value (double-quote delimited)."""
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace('"', "&quot;"))


def serialize_node(node: Node) -> str:
    """Serialise one node (and its subtree) to a string.

    Attribute nodes serialise to their *value* (standalone attributes
    have no XML syntax; XRPC wraps them separately in the message
    layer).
    """
    out: list[str] = []
    _serialize_into(node, out)
    return "".join(out)


def serialize(doc: Document) -> str:
    """Serialise a whole document (or fragment) to a string."""
    return serialize_node(doc.root)


def _serialize_into(node: Node, out: list[str]) -> None:
    doc = node.doc
    kind = node.kind
    if kind == NodeKind.DOCUMENT:
        for child_pre in _child_pres(doc, node.pre):
            _serialize_into(Node(doc, child_pre), out)
        return
    if kind == NodeKind.TEXT:
        out.append(escape_text(node.value))
        return
    if kind == NodeKind.ATTRIBUTE:
        out.append(escape_attribute(node.value))
        return
    if kind == NodeKind.COMMENT:
        out.append(f"<!--{node.value}-->")
        return
    if kind == NodeKind.PROCESSING_INSTRUCTION:
        out.append(f"<?{node.name} {node.value}?>")
        return
    # Element.
    out.append(f"<{node.name}")
    content_pres: list[int] = []
    for child_pre in _child_pres(doc, node.pre, include_attributes=True):
        if doc.kinds[child_pre] == NodeKind.ATTRIBUTE:
            out.append(
                f' {doc.names[child_pre]}="'
                f'{escape_attribute(doc.values[child_pre])}"')
        else:
            content_pres.append(child_pre)
    if not content_pres:
        out.append("/>")
        return
    out.append(">")
    for child_pre in content_pres:
        _serialize_into(Node(doc, child_pre), out)
    out.append(f"</{node.name}>")


def _child_pres(doc: Document, pre: int, include_attributes: bool = False):
    """Yield pre ranks of the direct children of ``pre`` in order."""
    end = pre + doc.sizes[pre]
    cursor = pre + 1
    while cursor <= end:
        if include_attributes or doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            yield cursor
        cursor += doc.sizes[cursor] + 1
