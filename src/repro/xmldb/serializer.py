"""Serialise nodes back to XML text, with per-document memoization.

Serialisation is the marshalling workhorse: pass-by-value copies a
parameter node by serialising its subtree into the message, and the
message byte counts that drive the paper's bandwidth experiments
(Figure 7) are the lengths of these strings.

The serializer is *incremental* and *memoized*: the first full-document
serialisation records, for every node, the span its subtree occupies in
the text, so later subtree requests (bulk-RPC fragments, by-value
copies, shard bodies) are string slices instead of tree re-walks. The
spans also hand the planner's :class:`~repro.planner.stats.StatsCatalog`
exact per-subtree byte figures for free. Caches ride on the
:class:`~repro.xmldb.document.Document` object keyed by its cache
epoch — a ``Peer.store`` swaps the document object and any in-place
mutation must call ``Document.invalidate_caches``, so stale text is
never served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.xmldb.document import Document
from repro.xmldb.node import Node, NodeKind


def escape_text(value: str) -> str:
    """Escape character data content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value (double-quote delimited)."""
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace('"', "&quot;"))


class SerializedTree:
    """Memoized serialisation state of one document.

    ``full``/``starts``/``ends`` hold the whole-document text and the
    per-pre subtree spans (attribute spans cover the escaped value
    between its quotes, matching ``serialize_node`` on an attribute);
    ``memo`` caches subtree strings requested before (or independent
    of) a full serialisation, LRU-bounded by the document's
    ``memo_cache_cap`` so span-less fragment churn stays bounded.
    """

    __slots__ = ("epoch", "full", "starts", "ends", "memo",
                 "memo_lock", "byte_length")

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.full: str | None = None
        self.starts: list[int] | None = None
        self.ends: list[int] | None = None
        self.memo: OrderedDict[int, str] = OrderedDict()
        # Documents are shared across concurrent queries; the LRU's
        # structural mutations (move_to_end / eviction) need the lock.
        self.memo_lock = threading.Lock()
        self.byte_length: int | None = None


def _tree(doc: Document) -> SerializedTree:
    cache = doc._ser_cache
    if cache is None or cache.epoch != doc.epoch:
        cache = SerializedTree(doc.epoch)
        doc._ser_cache = cache
    return cache


def serialize(doc: Document) -> str:
    """Serialise a whole document (or fragment) to a string.

    The text and every node's span in it are memoized on the document;
    repeated calls (statistics, shipping, fragment slicing) are free.
    """
    cache = _tree(doc)
    if cache.full is None:
        _build_full(doc, cache)
    assert cache.full is not None
    return cache.full


def serialize_node(node: Node) -> str:
    """Serialise one node (and its subtree) to a string.

    Attribute nodes serialise to their *value* (standalone attributes
    have no XML syntax; XRPC wraps them separately in the message
    layer). Served as a slice of the memoized document text when one
    exists (slices are cheap enough not to be worth pinning a second
    copy of the document in the memo), from the subtree memo otherwise.
    """
    doc = node.doc
    pre = node.pre
    if pre == 0:
        return serialize(doc)
    cache = _tree(doc)
    if cache.full is not None:
        assert cache.starts is not None and cache.ends is not None
        return cache.full[cache.starts[pre]:cache.ends[pre]]
    with cache.memo_lock:
        cached = cache.memo.get(pre)
        if cached is not None:
            cache.memo.move_to_end(pre)
            return cached
    out: list[str] = []
    _serialize_into(node, out)
    text = "".join(out)
    with cache.memo_lock:
        cache.memo[pre] = text
        cap = max(1, doc.memo_cache_cap)
        while len(cache.memo) > cap:
            cache.memo.popitem(last=False)
    return text


def cached_serialization(doc: Document) -> str | None:
    """The memoized full text if a current one exists, else None —
    a lock-free fast path for callers that serialise under a lock."""
    cache = doc._ser_cache
    if cache is None or cache.epoch != doc.epoch:
        return None
    return cache.full


def serialized_byte_length(doc: Document) -> int:
    """UTF-8 length of the serialised document, memoized with it."""
    cache = _tree(doc)
    if cache.byte_length is None:
        cache.byte_length = len(serialize(doc).encode())
    return cache.byte_length


def subtree_spans(doc: Document) -> tuple[list[int], list[int]] | None:
    """Per-pre ``(starts, ends)`` character spans of the memoized full
    serialisation, or None when no full serialisation happened yet.
    ``ends[p] - starts[p]`` is the exact serialised subtree length —
    the statistics catalog reads these instead of re-walking."""
    cache = doc._ser_cache
    if cache is None or cache.epoch != doc.epoch or cache.full is None:
        return None
    assert cache.starts is not None and cache.ends is not None
    return cache.starts, cache.ends


# ---------------------------------------------------------------------------
# Full serialisation with span recording
# ---------------------------------------------------------------------------


def _build_full(doc: Document, cache: SerializedTree) -> None:
    kinds = doc.kinds
    names = doc.names
    values = doc.values
    count = len(kinds)
    parts: list[str] = []
    starts = [0] * count
    ends = [0] * count
    length = 0

    def emit(text: str) -> None:
        nonlocal length
        parts.append(text)
        length += len(text)

    def walk(pre: int) -> None:
        kind = kinds[pre]
        starts[pre] = length
        if kind == NodeKind.DOCUMENT:
            for child_pre in _child_pres(doc, pre):
                walk(child_pre)
        elif kind == NodeKind.TEXT:
            emit(escape_text(values[pre]))
        elif kind == NodeKind.ATTRIBUTE:
            # Standalone span: the escaped value only (no quotes), so
            # a slice equals serialize_node on the attribute.
            emit(escape_attribute(values[pre]))
        elif kind == NodeKind.COMMENT:
            emit(f"<!--{values[pre]}-->")
        elif kind == NodeKind.PROCESSING_INSTRUCTION:
            emit(f"<?{names[pre]} {values[pre]}?>")
        else:  # element
            name = names[pre]
            emit(f"<{name}")
            content_pres: list[int] = []
            for child_pre in _child_pres(doc, pre, include_attributes=True):
                if kinds[child_pre] == NodeKind.ATTRIBUTE:
                    emit(f" {names[child_pre]}=\"")
                    starts[child_pre] = length
                    emit(escape_attribute(values[child_pre]))
                    ends[child_pre] = length
                    emit('"')
                else:
                    content_pres.append(child_pre)
            if not content_pres:
                emit("/>")
            else:
                emit(">")
                for child_pre in content_pres:
                    walk(child_pre)
                emit(f"</{name}>")
        if kind != NodeKind.ATTRIBUTE:
            ends[pre] = length

    walk(0)
    cache.full = "".join(parts)
    cache.starts = starts
    cache.ends = ends


# ---------------------------------------------------------------------------
# Subtree walk (no full text available)
# ---------------------------------------------------------------------------


def _serialize_into(node: Node, out: list[str]) -> None:
    doc = node.doc
    kind = node.kind
    if kind == NodeKind.DOCUMENT:
        for child_pre in _child_pres(doc, node.pre):
            _serialize_into(Node(doc, child_pre), out)
        return
    if kind == NodeKind.TEXT:
        out.append(escape_text(node.value))
        return
    if kind == NodeKind.ATTRIBUTE:
        out.append(escape_attribute(node.value))
        return
    if kind == NodeKind.COMMENT:
        out.append(f"<!--{node.value}-->")
        return
    if kind == NodeKind.PROCESSING_INSTRUCTION:
        out.append(f"<?{node.name} {node.value}?>")
        return
    # Element.
    out.append(f"<{node.name}")
    content_pres: list[int] = []
    for child_pre in _child_pres(doc, node.pre, include_attributes=True):
        if doc.kinds[child_pre] == NodeKind.ATTRIBUTE:
            out.append(
                f' {doc.names[child_pre]}="'
                f'{escape_attribute(doc.values[child_pre])}"')
        else:
            content_pres.append(child_pre)
    if not content_pres:
        out.append("/>")
        return
    out.append(">")
    for child_pre in content_pres:
        _serialize_into(Node(doc, child_pre), out)
    out.append(f"</{node.name}>")


def _child_pres(doc: Document, pre: int, include_attributes: bool = False):
    """Yield pre ranks of the direct children of ``pre`` in order."""
    end = pre + doc.sizes[pre]
    cursor = pre + 1
    while cursor <= end:
        if include_attributes or doc.kinds[cursor] != NodeKind.ATTRIBUTE:
            yield cursor
        cursor += doc.sizes[cursor] + 1
