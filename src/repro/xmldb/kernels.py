"""Batch kernels over sorted, typed pre columns.

Every hot scan the structural/value execution engine performs reduces
to a handful of array-shaped primitives: bisect range scans over a
sorted pre column, subtree-interval sweeps (the staircase-join core),
child scans with a parent-pointer filter, k-way merges of sorted pre
lists, sorted-set algebra, and the document-order sort with its
already-sorted fast path. This module is their single home — the
bisect helpers that used to be copy-pasted between
:mod:`repro.xmldb.index` and :mod:`repro.xmldb.values` both now call
in here — and every kernel operates on a whole column per call instead
of per-node Python iteration.

Kernels accept any sorted integer sequence (``list``, stdlib
:class:`array.array`, a buffer-pool backed lazy column) and return
stdlib ``array('i')`` columns, so results chain into further kernels
without re-boxing every element as a Python object.

**Optional numpy acceleration.** When the feature flag is switched on
(:func:`set_accelerator` or the ``REPRO_COLUMN_ACCEL`` environment
variable, values ``python`` / ``numpy`` / ``auto``), kernels with a
profitable vector form (child scans' parent-pointer filter, gathers)
run on zero-copy numpy views of the stdlib arrays. numpy is never a
hard dependency: the default is the stdlib engine, ``auto`` degrades
to it silently, and requesting ``numpy`` without numpy installed is an
explicit error.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from heapq import merge as _heapq_merge
from itertools import pairwise
from typing import Iterable, Sequence

#: Typecode of every pre/size/level/parent column: 32-bit signed ints
#: (a document holds fewer than 2**31 nodes; ``parents`` needs -1).
PRE_TYPECODE = "i"

_EMPTY = array(PRE_TYPECODE)


def pre_array(values: Iterable[int] = ()) -> array:
    """A fresh typed pre column (``array('i')``) from ``values``."""
    return array(PRE_TYPECODE, values)


def as_pre_array(values: Sequence[int]) -> array:
    """``values`` itself when it already is a typed array (no copy),
    else a typed copy — the cheap normalisation kernels use."""
    if type(values) is array:
        return values
    return array(PRE_TYPECODE, values)


# ---------------------------------------------------------------------------
# Accelerator feature flag
# ---------------------------------------------------------------------------

_numpy = None
_accelerator = "python"


def set_accelerator(name: str) -> str:
    """Select the kernel engine: ``"python"`` (stdlib, the default),
    ``"numpy"`` (error when numpy is unavailable), or ``"auto"``
    (numpy when importable, stdlib otherwise). Returns the engine that
    is now active."""
    global _numpy, _accelerator
    if name not in ("python", "numpy", "auto"):
        raise ValueError(f"unknown column accelerator {name!r}")
    if name == "python":
        _numpy, _accelerator = None, "python"
        return _accelerator
    try:
        import numpy
    except ImportError:
        if name == "numpy":
            raise RuntimeError(
                "REPRO_COLUMN_ACCEL=numpy requested but numpy is not "
                "installed; the columnar engine never requires it — "
                "use 'python' or 'auto'") from None
        _numpy, _accelerator = None, "python"
        return _accelerator
    _numpy, _accelerator = numpy, "numpy"
    return _accelerator


def accelerator() -> str:
    """The active kernel engine (``"python"`` or ``"numpy"``)."""
    return _accelerator


def _np_view(column: array):
    """Zero-copy numpy view of a stdlib array column."""
    return _numpy.frombuffer(column, dtype=_numpy.int32)


set_accelerator(os.environ.get("REPRO_COLUMN_ACCEL", "python"))


# ---------------------------------------------------------------------------
# Range scans (the deduplicated bisect helpers)
# ---------------------------------------------------------------------------


def interval_bounds(sorted_pres: Sequence[int], low: int, high: int,
                    start: int = 0) -> tuple[int, int]:
    """Index bounds ``(lo, hi)`` of the items of ``sorted_pres`` in the
    half-open pre interval ``(low, high]`` — the subtree-interval shape
    every structural scan probes (a context node's subtree is
    ``(pre, pre + size]``). ``start`` resumes a scan past an earlier
    bound."""
    lo = bisect_right(sorted_pres, low, start)
    hi = bisect_right(sorted_pres, high, lo)
    return lo, hi


def equal_bounds(sorted_values: Sequence, value) -> tuple[int, int]:
    """Index bounds ``(lo, hi)`` of the run of entries equal to
    ``value`` in a value-sorted column — the value-probe shape
    (:mod:`repro.xmldb.values`); ``[:lo]`` / ``[hi:]`` are the strict
    less-than / greater-than complements."""
    lo = bisect_left(sorted_values, value)
    hi = bisect_right(sorted_values, value, lo)
    return lo, hi


def range_scan(sorted_pres: Sequence[int], low: int, high: int) -> array:
    """The items of ``sorted_pres`` in ``(low, high]`` as one typed
    column (a single bisect pair plus one slice copy)."""
    lo, hi = interval_bounds(sorted_pres, low, high)
    if lo >= hi:
        return pre_array()
    sliced = sorted_pres[lo:hi]
    return sliced if type(sliced) is array else pre_array(sliced)


def any_in_interval(sorted_pres: Sequence[int], low: int,
                    high: int) -> bool:
    """True when any item of ``sorted_pres`` falls in ``(low, high]``
    (containment tests — no slice is materialised)."""
    lo = bisect_right(sorted_pres, low)
    return lo < len(sorted_pres) and sorted_pres[lo] <= high


# ---------------------------------------------------------------------------
# Structural sweeps
# ---------------------------------------------------------------------------


def subtree_sweep(candidates: Sequence[int], contexts: Sequence[int],
                  sizes: Sequence[int]) -> array:
    """Descendant scan: all candidates inside any context's subtree
    interval, in document order, deduplicated.

    ``contexts`` must be sorted and duplicate-free; their subtree
    intervals are then nested or disjoint, so every context covered by
    an earlier sweep is skipped and the output needs no sort. One
    bisect pair + one batch slice-extend per *maximal* context.
    """
    out = pre_array()
    extend = out.extend
    covered = -1
    lo = 0
    for context in contexts:
        if context <= covered:
            continue
        # Contexts ascend and covered intervals never retreat, so the
        # candidate cursor only ever moves forward.
        end = context + sizes[context]
        lo = bisect_right(candidates, context, lo)
        hi = bisect_right(candidates, end, lo)
        if hi > lo:
            extend(candidates[lo:hi])
            lo = hi
        covered = end
    return out


def children_of(candidates: Sequence[int], contexts: Sequence[int],
                sizes: Sequence[int], parents: Sequence[int]) -> array:
    """Child scan: the candidates whose parent is a context node.

    For each context the candidate pool is narrowed to the subtree
    interval by bisect, then filtered by the parent-pointer column.
    Child runs of nested contexts interleave, so the output is sorted
    when the scan order broke; child sets of distinct parents are
    disjoint, so no dedup is ever needed.
    """
    if not candidates:
        return pre_array()
    if _numpy is not None and type(candidates) is array \
            and type(parents) is array:
        return _children_of_np(candidates, contexts, sizes, parents)
    out = pre_array()
    append = out.append
    unsorted = False
    last = -1
    for parent in contexts:
        size = sizes[parent]
        if size == 0:
            continue
        lo, hi = interval_bounds(candidates, parent, parent + size)
        for cursor in range(lo, hi):
            pre = candidates[cursor]
            if parents[pre] == parent:
                if pre < last:
                    unsorted = True
                last = pre
                append(pre)
    if unsorted:
        return pre_array(sorted(out))
    return out


def _children_of_np(candidates: array, contexts: Sequence[int],
                    sizes: Sequence[int], parents: array) -> array:
    """numpy engine for :func:`children_of`: the per-candidate parent
    filter becomes one vector compare per context."""
    np = _numpy
    cand = _np_view(candidates)
    parent_col = _np_view(parents)
    segments = []
    unsorted = False
    last = -1
    for parent in contexts:
        size = sizes[parent]
        if size == 0:
            continue
        lo, hi = interval_bounds(candidates, parent, parent + size)
        if lo >= hi:
            continue
        segment = cand[lo:hi]
        segment = segment[parent_col[segment] == parent]
        if len(segment):
            if segment[0] < last:
                unsorted = True
            last = int(segment[-1])
            segments.append(segment)
    if not segments:
        return pre_array()
    merged = np.concatenate(segments)
    if unsorted:
        merged = np.sort(merged)
    out = pre_array()
    out.frombytes(merged.astype(np.int32, copy=False).tobytes())
    return out


# ---------------------------------------------------------------------------
# Sorted-set algebra and merges
# ---------------------------------------------------------------------------


def merge_sorted(columns: Sequence[Sequence[int]]) -> array:
    """Gather-merge: k sorted duplicate-free columns into one sorted
    duplicate-free column (per-path pre lists, per-probe matches)."""
    live = [column for column in columns if column]
    if not live:
        return pre_array()
    if len(live) == 1:
        return as_pre_array(live[0])
    out = pre_array()
    append = out.append
    last = -1
    for pre in _heapq_merge(*live):
        if pre != last:
            append(pre)
            last = pre
    return out


def union_sorted(a: Sequence[int], b: Sequence[int]) -> array:
    """Sorted-set union of two sorted duplicate-free columns."""
    if not a:
        return as_pre_array(b)
    if not b:
        return as_pre_array(a)
    return merge_sorted((a, b))


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> array:
    """Sorted-set intersection of two sorted duplicate-free columns
    (bisect-driven: the smaller side probes the larger)."""
    if len(a) > len(b):
        a, b = b, a
    out = pre_array()
    append = out.append
    lo = 0
    top = len(b)
    for pre in a:
        lo = bisect_left(b, pre, lo)
        if lo >= top:
            break
        if b[lo] == pre:
            append(pre)
            lo += 1
    return out


def difference_sorted(a: Sequence[int], b: Sequence[int]) -> array:
    """Sorted-set difference ``a - b`` of sorted duplicate-free
    columns (the ``!=`` complement scans)."""
    if not b:
        return as_pre_array(a)
    out = pre_array()
    append = out.append
    lo = 0
    top = len(b)
    for pre in a:
        lo = bisect_left(b, pre, lo)
        if lo >= top or b[lo] != pre:
            append(pre)
    return out


# ---------------------------------------------------------------------------
# Order kernels
# ---------------------------------------------------------------------------


def is_strictly_sorted(pres: Sequence[int]) -> bool:
    """True when the column is strictly ascending (document order,
    duplicate-free) — the provably-sorted fast-path test."""
    return all(x < y for x, y in pairwise(pres))


def ensure_sorted(pres: Sequence[int]) -> Sequence[int]:
    """Document-order sort kernel: the input itself (no copy) when it
    is already strictly ascending, else a sorted duplicate-free typed
    copy."""
    if is_strictly_sorted(pres):
        return pres
    out = pre_array()
    append = out.append
    last = -1
    for pre in sorted(pres):
        if pre != last:
            append(pre)
            last = pre
    return out


def sorted_array(values: Iterable[int]) -> array:
    """A sorted typed column from arbitrary (unsorted, possibly lazy)
    values — the re-sort after a value-ordered slice."""
    return pre_array(sorted(values))


def gather(column: Sequence, pres: Sequence[int]) -> list:
    """Positional gather ``[column[p] for p in pres]`` as one batch
    call (vectorised under the numpy engine for typed columns)."""
    if _numpy is not None and type(column) is array:
        indexes = _np_view(pres) if type(pres) is array else list(pres)
        return _np_view(column)[indexes].tolist()
    return [column[pre] for pre in pres]
