"""The federation API: peers, transport wiring, and `run()`.

This is the top of the stack — the piece a user of the library touches:

>>> from repro.system import Federation
>>> from repro.decompose import Strategy
>>> fed = Federation()
>>> fed.add_peer("peer1").store("d.xml", "<a><b/></a>")
>>> fed.add_peer("local")
>>> result = fed.run('doc("xrpc://peer1/d.xml")/child::a/child::b',
...                  at="local", strategy=Strategy.BY_FRAGMENT)
"""

from repro.system.federation import Federation, Peer, RunResult

__all__ = ["Federation", "Peer", "RunResult"]
