"""Federated query execution over simulated peers.

:class:`Federation` owns the peers and the cost model; :meth:`run`
executes one query at an originating peer under a chosen strategy and
returns the result sequence together with the decomposition artifacts
and a full :class:`~repro.net.stats.RunStats` accounting — everything
the benchmark harness needs to regenerate Figures 7-9.

Transport realism: requests and responses are serialised to actual
SOAP-style XML text and re-parsed on the other side; document shipping
serialises the document at the owner and shreds it at the requester.
All byte counts are lengths of those texts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decompose import DecompositionResult, Strategy, decompose
from repro.errors import NetworkError, XQueryDynamicError
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.paths.analysis import PathSets, ProjectionSpec, analyze_module
from repro.xmldb.document import Document
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize
from repro.xquery.ast import Expr, Module, XRPCExpr, walk
from repro.xquery.context import CostCounter, DynamicContext, StaticContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty
from repro.xrpc.marshal import marshal_calls, unmarshal_result
from repro.xrpc.messages import RequestMessage, ResponseMessage
from repro.xrpc.peer import RequestHandler

XRPC_SCHEME = "xrpc://"


class Peer:
    """One peer: a named document space."""

    def __init__(self, name: str):
        self.name = name
        self.documents: dict[str, Document] = {}
        self._serialized: dict[str, str] = {}

    def store(self, local_name: str, content: str | Document) -> "Peer":
        """Register a document under a local name (chainable)."""
        if isinstance(content, Document):
            document = content
        else:
            document = parse_document(
                content, uri=f"{XRPC_SCHEME}{self.name}/{local_name}")
        self.documents[local_name] = document
        self._serialized.pop(local_name, None)
        return self

    def document(self, local_name: str) -> Document:
        try:
            return self.documents[local_name]
        except KeyError:
            raise NetworkError(
                f"peer {self.name!r} has no document {local_name!r}"
            ) from None

    def serialized(self, local_name: str) -> str:
        cached = self._serialized.get(local_name)
        if cached is None:
            cached = serialize(self.document(local_name))
            self._serialized[local_name] = cached
        return cached


@dataclass
class MessageLog:
    """One request/response exchange, for tests and examples."""

    dest: str
    calls: int
    request_bytes: int
    response_bytes: int
    request_xml: str = field(repr=False, default="")
    response_xml: str = field(repr=False, default="")


@dataclass
class RunResult:
    """Everything produced by one federated execution."""

    items: list
    stats: RunStats
    decomposition: DecompositionResult
    messages: list[MessageLog] = field(default_factory=list)

    @property
    def module(self) -> Module:
        return self.decomposition.module


class Federation:
    """A set of peers plus the simulated network between them."""

    def __init__(self, cost_model: CostModel | None = None,
                 static: StaticContext | None = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.static = static if static is not None else StaticContext()
        self.peers: dict[str, Peer] = {}

    def add_peer(self, name: str) -> Peer:
        if name in self.peers:
            raise NetworkError(f"peer {name!r} already exists")
        peer = Peer(name)
        self.peers[name] = peer
        return peer

    def peer(self, name: str) -> Peer:
        try:
            return self.peers[name]
        except KeyError:
            raise NetworkError(f"unknown peer {name!r}") from None

    # -- execution ---------------------------------------------------------

    def run(self, query: str, at: str,
            strategy: Strategy = Strategy.BY_PROJECTION,
            bulk_rpc: bool = True, code_motion: bool = True,
            let_sinking: bool = True,
            keep_message_xml: bool = False) -> RunResult:
        """Parse, decompose and execute ``query`` at peer ``at``."""
        module = parse_query(query)
        decomposition = decompose(module, strategy, local_host=at,
                                  code_motion=code_motion,
                                  let_sinking=let_sinking)
        return self.execute(decomposition, at, bulk_rpc=bulk_rpc,
                            keep_message_xml=keep_message_xml)

    def execute(self, decomposition: DecompositionResult, at: str,
                bulk_rpc: bool = True,
                keep_message_xml: bool = False) -> RunResult:
        """Execute an already-decomposed query at peer ``at``."""
        run = _Run(self, decomposition, at, bulk_rpc, keep_message_xml)
        return run.execute()


class _Run:
    """State for one federated execution."""

    def __init__(self, federation: Federation,
                 decomposition: DecompositionResult, origin: str,
                 bulk_rpc: bool, keep_message_xml: bool):
        self.federation = federation
        self.decomposition = decomposition
        self.origin = origin
        self.bulk_rpc = bulk_rpc
        self.keep_message_xml = keep_message_xml
        self.stats = RunStats()
        self.messages: list[MessageLog] = []
        self.local_counter = CostCounter()
        self.remote_counter = CostCounter()
        self._shipped_docs: dict[tuple[str, str], Document] = {}
        self.semantics = self._semantics(decomposition.strategy)
        self.projection_specs = self._projection_specs()

    @staticmethod
    def _semantics(strategy: Strategy) -> str:
        if strategy is Strategy.BY_PROJECTION:
            return "by-projection"
        if strategy is Strategy.BY_FRAGMENT:
            return "by-fragment"
        return "by-value"

    def _projection_specs(self) -> dict[int, ProjectionSpec]:
        """Specs keyed by id(xrpc.body), the handle the transport has."""
        if self.decomposition.strategy is not Strategy.BY_PROJECTION:
            return {}
        module = self.decomposition.module
        by_xrpc = analyze_module(module)
        out: dict[int, ProjectionSpec] = {}
        for decl_body in [f.body for f in module.functions] + [module.body]:
            for node in walk(decl_body):
                if isinstance(node, XRPCExpr):
                    spec = by_xrpc.get(id(node))
                    if spec is not None:
                        out[id(node.body)] = spec
        return out

    # -- document resolution (data shipping) -----------------------------------

    def _resolver(self, peer_name: str):
        def resolve(uri: str) -> Document:
            owner, local_name = self._locate(uri, peer_name)
            if owner == peer_name:
                return self.federation.peer(owner).document(local_name)
            return self._ship_document(owner, local_name, peer_name)
        return resolve

    def _locate(self, uri: str, requester: str) -> tuple[str, str]:
        if uri.startswith(XRPC_SCHEME):
            rest = uri[len(XRPC_SCHEME):]
            if "/" not in rest:
                raise XQueryDynamicError(f"malformed xrpc URI {uri!r}")
            owner, local_name = rest.split("/", 1)
            return owner, local_name
        return requester, uri

    def _ship_document(self, owner: str, local_name: str,
                       requester: str) -> Document:
        """Data shipping: fetch, transfer, and shred a whole document."""
        key = (requester, f"{owner}/{local_name}")
        cached = self._shipped_docs.get(key)
        if cached is not None:
            return cached
        text = self.federation.peer(owner).serialized(local_name)
        size = len(text.encode())
        model = self.federation.cost_model
        self.stats.record_document_shipped(size)
        self.stats.times.serialize += model.serialize_time(size)
        self.stats.times.network += model.network_time(size)
        self.stats.times.shred += model.shred_time(size)
        document = parse_document(
            text, uri=f"{XRPC_SCHEME}{owner}/{local_name}")
        self._shipped_docs[key] = document
        return document

    # -- XRPC transport ---------------------------------------------------------

    def _make_xrpc_execute(self, from_peer: str):
        def execute(dest: str, params: list[tuple[str, list]],
                    body: Expr) -> list:
            results = self._round_trip(from_peer, dest, [params], body)
            return results[0]
        return execute

    def _make_xrpc_execute_bulk(self, from_peer: str):
        if not self.bulk_rpc:
            return None

        def execute_bulk(dest: str, calls: list[list[tuple[str, list]]],
                         body: Expr) -> list[list]:
            if not calls:
                return []
            return self._round_trip(from_peer, dest, calls, body)
        return execute_bulk

    def _round_trip(self, from_peer: str, dest: str,
                    calls: list[list[tuple[str, list]]],
                    body: Expr) -> list[list]:
        """One network interaction: marshal, ship, execute, ship back."""
        dest_name = dest[len(XRPC_SCHEME):].split("/", 1)[0] \
            if dest.startswith(XRPC_SCHEME) else dest
        peer = self.federation.peer(dest_name)  # raises on unknown peer
        model = self.federation.cost_model

        spec = self.projection_specs.get(id(body))
        param_paths: dict[str, PathSets] | None = None
        used_paths = returned_paths = None
        if self.semantics == "by-projection" and spec is not None:
            param_paths = spec.param_paths
            used_paths = sorted(str(p) for p in spec.result_paths.used)
            returned_paths = sorted(
                str(p) for p in spec.result_paths.returned)

        bundle = marshal_calls(calls, self.semantics, param_paths)
        param_names = [name for name, _seq in calls[0]] if calls else []
        request = RequestMessage(
            query=pretty(body),
            param_names=param_names,
            calls=bundle.calls,
            fragments=bundle.fragments,
            static_attrs=self.federation.static.to_attributes(),
            used_paths=used_paths,
            returned_paths=returned_paths,
        )
        request_xml = request.to_xml()
        request_bytes = len(request_xml.encode())
        self.stats.record_message(request_bytes)
        self.stats.rpc_calls += len(calls)
        self.stats.times.serialize += model.serialize_time(request_bytes)
        self.stats.times.network += model.network_time(request_bytes)
        self.stats.times.serialize += model.deserialize_time(request_bytes)

        handler = RequestHandler(
            peer_name=peer.name,
            resolve_doc=self._resolver(peer.name),
            xrpc_execute=self._make_xrpc_execute(peer.name),
            semantics=self.semantics,
            counter=self.remote_counter,
        )
        response = handler.handle(RequestMessage.from_xml(request_xml))

        response_xml = response.to_xml()
        response_bytes = len(response_xml.encode())
        self.stats.record_message(response_bytes)
        self.stats.times.serialize += model.serialize_time(response_bytes)
        self.stats.times.network += model.network_time(response_bytes)
        self.stats.times.serialize += model.deserialize_time(response_bytes)

        self.messages.append(MessageLog(
            dest=peer.name, calls=len(calls),
            request_bytes=request_bytes, response_bytes=response_bytes,
            request_xml=request_xml if self.keep_message_xml else "",
            response_xml=response_xml if self.keep_message_xml else "",
        ))

        parsed = ResponseMessage.from_xml(response_xml)
        return unmarshal_result(parsed.results, parsed.fragments,
                                base_uri=f"{XRPC_SCHEME}{peer.name}/response")

    # -- top-level execution --------------------------------------------------------

    def execute(self) -> RunResult:
        module = self.decomposition.module
        evaluator = Evaluator(module, self.federation.static)
        env = DynamicContext(
            resolve_doc=self._resolver(self.origin),
            xrpc_execute=self._make_xrpc_execute(self.origin),
            xrpc_execute_bulk=self._make_xrpc_execute_bulk(self.origin),
            counter=self.local_counter,
        )
        items = evaluator.run(env)

        model = self.federation.cost_model
        self.stats.times.local_exec = model.exec_time(
            self.local_counter.ticks, self.local_counter.nodes_visited)
        self.stats.times.remote_exec = model.exec_time(
            self.remote_counter.ticks, self.remote_counter.nodes_visited)
        return RunResult(items=items, stats=self.stats,
                         decomposition=self.decomposition,
                         messages=self.messages)
