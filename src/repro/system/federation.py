"""Federated query execution over simulated peers.

:class:`Federation` owns the peers and the cost model; :meth:`run`
executes one query at an originating peer under a chosen strategy and
returns the result sequence together with the decomposition artifacts
and a full :class:`~repro.net.stats.RunStats` accounting — everything
the benchmark harness needs to regenerate Figures 7-9.

Transport realism: requests and responses are serialised to actual
SOAP-style XML text and re-parsed on the other side; document shipping
serialises the document at the owner and shreds it at the requester.
All byte counts are lengths of those texts. The wire itself lives in a
pluggable :class:`~repro.runtime.transport.Transport` (in-process
loopback by default); :class:`~repro.runtime.engine.FederationEngine`
runs many queries concurrently over one federation, so peers are
thread-safe and ``Peer.store`` notifies listeners (cache invalidation).

Host resolution is catalog-aware: a destination registered in an
attached :class:`~repro.cluster.catalog.ClusterCatalog` is a *virtual*
host naming a sharded collection, and both XRPC round trips and
data-shipping document fetches against it are routed through the
cluster's scatter-gather :class:`~repro.cluster.router.ClusterRouter`.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.cluster.catalog import ClusterCatalog, CollectionSpec
from repro.cluster.router import ClusterRouter
from repro.decompose import DecompositionResult, Strategy, strategy_label
from repro.errors import NetworkError, XQueryDynamicError
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.obs.explain import ActualsBook
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, bind_stats_span, child_span
from repro.planner.ir import PhysicalPlan
from repro.planner.planner import QueryPlanner
from repro.paths.analysis import PathSets, ProjectionSpec, analyze_module
from repro.runtime.batching import BulkBatcher, batch_key
from repro.runtime.cache import ResultCache, response_key
from repro.runtime.transport import LoopbackTransport, Transport
from repro.xmldb.document import Document
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import cached_serialization, serialize
from repro.xquery.ast import Expr, Module, XRPCExpr, walk
from repro.xquery.context import CostCounter, DynamicContext, StaticContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.pretty import pretty
from repro.xrpc.marshal import marshal_calls, unmarshal_result
from repro.xrpc.messages import RequestMessage, ResponseMessage
from repro.xrpc.peer import RequestHandler

XRPC_SCHEME = "xrpc://"


class Peer:
    """One peer: a named document space (safe to share across queries)."""

    def __init__(self, name: str):
        self.name = name
        self.documents: dict[str, Document] = {}
        self._lock = threading.Lock()
        self._serialize_lock = threading.Lock()
        self._store_listeners: list[Callable[[str, str], None]] = []

    def on_store(self, listener: Callable[[str, str], None]) -> None:
        """Register a ``(peer_name, local_name)`` callback fired after
        every :meth:`store` — the runtime cache invalidation hook."""
        with self._lock:
            self._store_listeners.append(listener)

    def remove_on_store(self, listener: Callable[[str, str], None]) -> None:
        """Unregister a :meth:`on_store` listener (no-op if absent)."""
        with self._lock:
            try:
                self._store_listeners.remove(listener)
            except ValueError:
                pass

    def store(self, local_name: str, content: str | Document) -> "Peer":
        """Register a document under a local name (chainable)."""
        if isinstance(content, Document):
            document = content
        else:
            document = parse_document(
                content, uri=f"{XRPC_SCHEME}{self.name}/{local_name}")
        with self._lock:
            self.documents[local_name] = document
            listeners = list(self._store_listeners)
        for listener in listeners:
            listener(self.name, local_name)
        return self

    def remove(self, local_name: str) -> bool:
        """Drop a document (migration retirement). Fires the same
        ``(peer_name, local_name)`` listeners as :meth:`store`, so the
        runtime caches and statistics invalidate identically. Returns
        False when the name was absent (idempotent retirement)."""
        with self._lock:
            present = self.documents.pop(local_name, None) is not None
            listeners = list(self._store_listeners) if present else []
        for listener in listeners:
            listener(self.name, local_name)
        return present

    def document(self, local_name: str) -> Document:
        try:
            return self.documents[local_name]
        except KeyError:
            raise NetworkError(
                f"peer {self.name!r} has no document {local_name!r}"
            ) from None

    def serialized(self, local_name: str) -> str:
        document = self.document(local_name)
        # The text is memoized on the document object itself (see
        # xmldb.serializer), so a store() — which swaps the object —
        # can never leave a stale write-back behind. Memoized reads
        # stay lock-free; the per-peer lock only stops concurrent
        # first-touch queries from redundantly serialising the same
        # (potentially large) document.
        cached = cached_serialization(document)
        if cached is not None:
            return cached
        with self._serialize_lock:
            return serialize(document)


@dataclass
class MessageLog:
    """One request/response exchange, for tests and examples."""

    dest: str
    calls: int
    request_bytes: int
    response_bytes: int
    request_xml: str = field(repr=False, default="")
    response_xml: str = field(repr=False, default="")


@dataclass
class RunResult:
    """Everything produced by one federated execution."""

    items: list
    stats: RunStats
    decomposition: DecompositionResult
    messages: list[MessageLog] = field(default_factory=list)
    #: The closed span tree of a ``trace=True`` run (None otherwise);
    #: export with :func:`repro.obs.dump_trace` /
    #: :func:`repro.obs.dump_chrome_trace`.
    trace: Span | None = None

    @property
    def module(self) -> Module:
        return self.decomposition.module

    @property
    def plan(self):
        """The :class:`~repro.net.stats.PlanReport` of this run."""
        return self.stats.plan


class Federation:
    """A set of peers plus the simulated network between them."""

    def __init__(self, cost_model: CostModel | None = None,
                 static: StaticContext | None = None,
                 transport: Transport | None = None,
                 catalog: ClusterCatalog | None = None,
                 planner: QueryPlanner | None = None,
                 metrics: MetricsRegistry | None = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.static = static if static is not None else StaticContext()
        # One registry per federation: the default transport's wire_*
        # series, the engine's cache_*/query_* series and the router's
        # scatter_* series all land in it. An injected transport keeps
        # its own registry, which becomes the federation's unless the
        # caller passed one explicitly.
        if metrics is not None:
            self.metrics = metrics
        elif transport is not None:
            self.metrics = transport.metrics
        else:
            self.metrics = MetricsRegistry()
        self.transport = (transport if transport is not None
                          else LoopbackTransport(self.cost_model,
                                                 metrics=self.metrics))
        self.peers: dict[str, Peer] = {}
        self.catalog = catalog
        self._planner = planner
        self._planner_lock = threading.Lock()
        #: The attached :class:`~repro.obs.fleet.FleetMonitor` (set by
        #: ``monitor.attach(federation)``; None ⇒ continuous
        #: observability off, at the cost of one attribute check per
        #: query).
        self.monitor = None
        #: The attached failure detector / repair engine (set by
        #: ``MembershipTracker.attach`` / ``RepairEngine.attach``;
        #: None ⇒ no self-healing, the pre-PR-9 behaviour).
        self.membership = None
        self.repair = None

    @property
    def planner(self) -> QueryPlanner:
        """The federation's cost-based planner (created lazily; every
        execution routes through it for plan lowering and feedback).
        Creation is locked: a racing double-construction would leak
        the loser's StatsCatalog listeners onto every peer."""
        if self._planner is None:
            with self._planner_lock:
                if self._planner is None:
                    self._planner = QueryPlanner(self)
        return self._planner

    def add_peer(self, name: str) -> Peer:
        if name in self.peers:
            raise NetworkError(f"peer {name!r} already exists")
        if self.catalog is not None and self.catalog.lookup(name) is not None:
            raise NetworkError(
                f"peer name {name!r} collides with a cluster collection")
        peer = Peer(name)
        self.peers[name] = peer
        return peer

    def peer(self, name: str) -> Peer:
        try:
            return self.peers[name]
        except KeyError:
            raise NetworkError(f"unknown peer {name!r}") from None

    def attach_catalog(self, catalog: ClusterCatalog) -> ClusterCatalog:
        """Install the cluster catalog: host names registered in it are
        resolved as sharded collections (scatter-gather) instead of
        peers from now on."""
        self.catalog = catalog
        if self.monitor is not None and catalog.events is None:
            # A monitor attached before the catalog existed still gets
            # the catalog's epoch-bump events.
            catalog.events = self.monitor.events
        return catalog

    def collection(self, host: str) -> CollectionSpec | None:
        """Catalog-aware host resolution: the collection registered
        under ``host``, or None when ``host`` is (or should be) an
        ordinary peer."""
        if self.catalog is None:
            return None
        return self.catalog.lookup(host)

    # -- execution ---------------------------------------------------------

    def run(self, query: str, at: str,
            strategy: Strategy | str = Strategy.BY_PROJECTION,
            bulk_rpc: bool = True, code_motion: bool = True,
            let_sinking: bool = True,
            keep_message_xml: bool = False,
            transport: Transport | None = None,
            result_cache: ResultCache | None = None,
            batcher: BulkBatcher | None = None,
            trace: bool = False) -> RunResult:
        """Parse, decompose and execute ``query`` at peer ``at``.

        ``strategy`` accepts the enum, a case-insensitive string alias
        (``"by-projection"``, ``"BY_FRAGMENT"``), or ``"auto"`` — which
        hands the choice to the cost-based :attr:`planner` (it may pick
        a *mixed* plan shipping some documents while decomposing
        others, and records its estimate in ``RunStats.plan``).

        ``trace=True`` records a per-query span tree (``query`` →
        ``plan`` / ``rpc`` / ``scatter`` / ``ship`` with component
        leaves) into ``RunResult.trace``; off by default and zero-cost
        when off.
        """
        choice = Strategy.coerce(strategy)
        tracer = Tracer() if trace else None
        root_ctx = (tracer.start("query", at=at,
                                 strategy=strategy_label(choice))
                    if tracer is not None else nullcontext())
        started = time.perf_counter()
        with root_ctx:
            # Fixed strategies go through the same planner entry point
            # as auto: the plan cache then amortises decomposition +
            # lowering across a multi-tenant sweep of identical queries.
            with child_span("plan"):
                try:
                    planned = self.planner.plan(query, at=at,
                                                strategy=choice,
                                                bulk_rpc=bulk_rpc,
                                                code_motion=code_motion,
                                                let_sinking=let_sinking,
                                                transport=transport)
                except Exception:
                    # Queries that die in parsing/planning are still
                    # part of the fleet's error stream (execution
                    # failures are recorded by execute() itself).
                    if self.monitor is not None:
                        self.monitor.record_query(
                            time.perf_counter() - started, ok=False)
                    raise
            result = self.execute(planned.decomposition, at,
                                  bulk_rpc=bulk_rpc,
                                  keep_message_xml=keep_message_xml,
                                  transport=transport,
                                  result_cache=result_cache,
                                  batcher=batcher, plan=planned.plan,
                                  report=planned.report,
                                  tracer=tracer)
        # The root span closed when the context exited; only a closed
        # tree folds into stable profiler stacks.
        if (self.monitor is not None and tracer is not None
                and tracer.root is not None):
            self.monitor.observe_trace(tracer.root)
        return result

    def execute(self, decomposition: DecompositionResult, at: str,
                bulk_rpc: bool = True,
                keep_message_xml: bool = False,
                transport: Transport | None = None,
                result_cache: ResultCache | None = None,
                batcher: BulkBatcher | None = None,
                plan: PhysicalPlan | None = None,
                report=None,
                tracer: Tracer | None = None,
                trace: bool = False) -> RunResult:
        """Execute an already-decomposed query at peer ``at``.

        ``transport`` defaults to the federation's (loopback);
        ``result_cache`` and ``batcher`` are injected by
        :class:`~repro.runtime.engine.FederationEngine` for cross-query
        reuse and coalescing, and stay off for standalone runs.

        ``plan`` is the planner's chosen physical plan (the auto
        path); when absent, the decomposition is lowered into its
        trivial fixed plan so every run carries an estimate, and the
        observed stats feed the planner's calibration either way.
        ``report`` is the :class:`~repro.net.stats.PlanReport` to
        record into the run's stats (defaults to the plan's own — the
        auto path passes a per-call copy so a plan-cache hit never
        mutates the report of a concurrently executing run).

        ``tracer`` is an already-started tracer (:meth:`run` passes its
        own); ``trace=True`` without one opens a fresh ``query`` root
        here, for callers executing pre-built decompositions.
        """
        if plan is None:
            plan = self.planner.lower_fixed(decomposition, at,
                                            bulk_rpc=bulk_rpc,
                                            transport=transport)
        root_ctx = nullcontext()
        owns_root = False
        if trace and tracer is None:
            tracer = Tracer()
            root_ctx = tracer.start("query", at=at)
            owns_root = True
        with root_ctx:
            run = _Run(self, decomposition, at, bulk_rpc,
                       keep_message_xml,
                       transport=transport, result_cache=result_cache,
                       batcher=batcher, plan=plan, tracer=tracer)
            started = time.perf_counter()
            try:
                result = run.execute()
            except Exception:
                if self.monitor is not None:
                    self.monitor.record_query(
                        time.perf_counter() - started, ok=False)
                raise
            wall_s = time.perf_counter() - started
            base_report = report if report is not None else plan.report
            if base_report is None:
                base_report = plan.build_report()
            result.stats.plan = replace(
                base_report,
                analysis=plan.build_analysis(run.actuals, result.stats,
                                             wall_s))
            self.planner.observe(plan, result)
            if self.monitor is not None:
                self.monitor.record_query(wall_s, ok=True)
            if tracer is not None and tracer.root is not None:
                root = tracer.root
                root.set(strategy=result.stats.plan.strategy,
                         total_bytes=result.stats.total_transferred_bytes,
                         rpc_calls=result.stats.rpc_calls,
                         cache_hits=result.stats.cache_hits)
                result.trace = root
        if owns_root and self.monitor is not None \
                and tracer.root is not None:
            # Standalone execute(trace=True): the root closed here.
            self.monitor.observe_trace(tracer.root)
        return result


class _Run:
    """State for one federated execution."""

    def __init__(self, federation: Federation,
                 decomposition: DecompositionResult, origin: str,
                 bulk_rpc: bool, keep_message_xml: bool,
                 transport: Transport | None = None,
                 result_cache: ResultCache | None = None,
                 batcher: BulkBatcher | None = None,
                 plan: PhysicalPlan | None = None,
                 tracer: Tracer | None = None):
        self.federation = federation
        self.decomposition = decomposition
        self.origin = origin
        self.bulk_rpc = bulk_rpc
        self.keep_message_xml = keep_message_xml
        self.transport = (transport if transport is not None
                          else federation.transport)
        self.result_cache = result_cache
        self.batcher = batcher
        self.plan = plan
        self.tracer = tracer
        self.stats = RunStats()
        if tracer is not None and tracer.root is not None:
            # Charges against the run's stats land on the query root
            # until a narrower span (rpc/ship) rebinds them.
            self.stats.span = tracer.root
        self.messages: list[MessageLog] = []
        self.local_counter = CostCounter()
        self.remote_counter = CostCounter()
        self._shipped_docs: dict[tuple[str, str], Document] = {}
        #: Per-operator actuals for explain-analyze (always recorded —
        #: one timestamped dict update per round trip / ship).
        self.actuals = ActualsBook()
        #: Rewritten shard-body ids → the logical call site id the plan
        #: knows (registered by the router for the scatter's duration).
        self.site_alias: dict[int, int] = {}
        # Message semantics come from the plan: uniform for a fixed
        # strategy, per call site for a planner-built mixed plan. The
        # ``site_semantics`` dict additionally carries the cluster
        # router's shard-body aliases for the duration of a scatter.
        self.semantics = (plan.default_semantics if plan is not None
                          else decomposition.strategy.semantics)
        self.site_semantics: dict[int, str] = (
            dict(plan.site_semantics) if plan is not None else {})
        self.projection_specs = self._projection_specs()

    def semantics_for(self, body_id: int) -> str:
        """The message semantics of one call site (``id(xrpc.body)``)."""
        return self.site_semantics.get(body_id, self.semantics)

    def _projection_specs(self) -> dict[int, ProjectionSpec]:
        """Specs keyed by id(xrpc.body), the handle the transport has.

        The plan already carries the analysis (computed once during
        lowering, over this very module object, so the id() keys
        match); re-analysis happens only for the plan-less fallback.
        """
        if self.plan is not None:
            return dict(self.plan.projection_specs)
        uses_projection = (
            self.semantics == "by-projection"
            or any(semantics == "by-projection"
                   for semantics in self.site_semantics.values()))
        if not uses_projection:
            return {}
        module = self.decomposition.module
        by_xrpc = analyze_module(module)
        out: dict[int, ProjectionSpec] = {}
        for decl_body in [f.body for f in module.functions] + [module.body]:
            for node in walk(decl_body):
                if isinstance(node, XRPCExpr):
                    spec = by_xrpc.get(id(node))
                    if spec is not None:
                        out[id(node.body)] = spec
        return out

    # -- document resolution (data shipping) -----------------------------------

    def _resolver(self, peer_name: str, stats: RunStats | None = None):
        """Document resolution at ``peer_name``; ``stats`` overrides the
        accounting target so nested shipping triggered inside a scatter
        worker charges that shard call's private RunStats."""
        def resolve(uri: str) -> Document:
            owner, local_name = self._locate(uri, peer_name)
            if owner == peer_name:
                return self.federation.peer(owner).document(local_name)
            return self._ship_document(owner, local_name, peer_name,
                                       stats=stats)
        return resolve

    def _locate(self, uri: str, requester: str) -> tuple[str, str]:
        if uri.startswith(XRPC_SCHEME):
            rest = uri[len(XRPC_SCHEME):]
            if "/" not in rest:
                raise XQueryDynamicError(f"malformed xrpc URI {uri!r}")
            owner, local_name = rest.split("/", 1)
            return owner, local_name
        return requester, uri

    def _ship_document(self, owner: str, local_name: str,
                       requester: str,
                       stats: RunStats | None = None) -> Document:
        """Data shipping: fetch, transfer, and shred a whole document."""
        if stats is None:
            stats = self.stats
        spec = self.federation.collection(owner)
        if spec is not None:
            return self._ship_collection(spec, local_name, requester,
                                         stats)
        key = (requester, f"{owner}/{local_name}")
        cached = self._shipped_docs.get(key)
        if cached is not None:
            return cached
        wall0 = time.perf_counter()
        cache_epoch = None
        if self.result_cache is not None:
            cache_epoch = self.result_cache.epoch()
            entry = self.result_cache.lookup_document(requester, owner,
                                                      local_name)
            if entry is not None:
                document, size = entry
                stats.cache_hits += 1
                stats.cache_saved_bytes += size
                self._shipped_docs[key] = document
                self.actuals.record_ship(
                    owner, local_name, bytes=0,
                    wall_s=time.perf_counter() - wall0, cache_hits=1)
                return document
        sim0 = stats.times.total
        with child_span("ship", owner=owner, doc=local_name,
                        to=requester) as ship_span, \
                bind_stats_span(stats, ship_span):
            text = self.transport.fetch_document(
                self.federation.peer(owner), local_name, stats)
            document = parse_document(
                text, uri=f"{XRPC_SCHEME}{owner}/{local_name}")
            size = len(text.encode())
            if ship_span is not None:
                ship_span.set(bytes=size)
        self.actuals.record_ship(owner, local_name, bytes=size,
                                 sim_s=stats.times.total - sim0,
                                 wall_s=time.perf_counter() - wall0)
        self._shipped_docs[key] = document
        if self.result_cache is not None:
            self.result_cache.store_document(requester, owner, local_name,
                                             document, size,
                                             epoch=cache_epoch)
        return document

    def _ship_collection(self, spec: CollectionSpec, local_name: str,
                         requester: str, stats: RunStats) -> Document:
        """Data shipping over a sharded collection: ship every shard
        from a live replica (failing over on wire faults) and
        reassemble the logical document. Cache entries are keyed by the
        catalog's membership epoch so a repartition invalidates them."""
        catalog = self.federation.catalog
        assert catalog is not None
        epoch = catalog.epoch()
        key = (requester, f"{spec.name}/{local_name}@e{epoch}")
        cached = self._shipped_docs.get(key)
        if cached is not None:
            return cached
        wall0 = time.perf_counter()
        cache_epoch = None
        cache_name = None
        if self.result_cache is not None:
            cache_epoch = self.result_cache.epoch()
            # The invalidation epoch is part of the name: peer stores
            # can't target the collection scope (invalidate_peer keys
            # on physical peer names), so any store anywhere must make
            # merged-document entries unreachable — a shard re-store
            # would otherwise serve a stale merge.
            cache_name = f"{local_name}@e{epoch}.i{cache_epoch}"
            entry = self.result_cache.lookup_document(requester, spec.name,
                                                      cache_name)
            if entry is not None:
                document, size = entry
                stats.cache_hits += 1
                stats.cache_saved_bytes += size
                self._shipped_docs[key] = document
                self.actuals.record_ship(
                    spec.name, local_name, bytes=0,
                    wall_s=time.perf_counter() - wall0, cache_hits=1)
                return document
        router = ClusterRouter(self, catalog)
        sim0 = stats.times.total
        with child_span("ship", owner=spec.name, doc=local_name,
                        to=requester,
                        shards=len(spec.shards)) as ship_span:
            document, size = router.fetch_collection_document(
                spec, local_name, requester, stats=stats,
                parent_span=ship_span)
            if ship_span is not None:
                ship_span.set(bytes=size)
        self.actuals.record_ship(spec.name, local_name, bytes=size,
                                 sim_s=stats.times.total - sim0,
                                 wall_s=time.perf_counter() - wall0)
        self._shipped_docs[key] = document
        if self.result_cache is not None and cache_name is not None:
            self.result_cache.store_document(requester, spec.name,
                                             cache_name, document, size,
                                             epoch=cache_epoch)
        return document

    # -- XRPC transport ---------------------------------------------------------

    def _make_xrpc_execute(self, from_peer: str,
                           stats: RunStats | None = None,
                           counter: CostCounter | None = None):
        """Nested ``execute at`` from ``from_peer``; ``stats`` /
        ``counter`` carry a scatter worker's private accounting into
        any remote work its shard body triggers."""
        def execute(dest: str, params: list[tuple[str, list]],
                    body: Expr) -> list:
            results = self._round_trip(from_peer, dest, [params], body,
                                       stats=stats, remote_counter=counter)
            return results[0]
        return execute

    def _make_xrpc_execute_bulk(self, from_peer: str):
        if not self.bulk_rpc:
            return None

        def execute_bulk(dest: str, calls: list[list[tuple[str, list]]],
                         body: Expr) -> list[list]:
            if not calls:
                return []
            return self._round_trip(from_peer, dest, calls, body)
        return execute_bulk

    def _round_trip(self, from_peer: str, dest: str,
                    calls: list[list[tuple[str, list]]],
                    body: Expr,
                    cache_scope: str | None = None,
                    shard_epoch: int | None = None,
                    stats: RunStats | None = None,
                    remote_counter: CostCounter | None = None) -> list[list]:
        """One network interaction: marshal, ship, execute, ship back.

        The wire itself is the transport's job; this method builds the
        request, consults the shared result cache, and hands mergeable
        round trips to the cross-query batcher.

        A destination registered in the cluster catalog is a *logical*
        call site: the router scatters it into one round trip per shard
        (re-entering this method with the physical replica as ``dest``)
        and gathers the results. The keyword arguments exist for those
        re-entrant shard calls: ``cache_scope``/``shard_epoch`` key the
        response cache by shard identity + membership epoch instead of
        the replica that happened to serve it, and ``stats`` /
        ``remote_counter`` give each concurrent shard call private
        accounting (merged deterministically after the gather).
        """
        dest_name = dest[len(XRPC_SCHEME):].split("/", 1)[0] \
            if dest.startswith(XRPC_SCHEME) else dest
        if stats is None:
            stats = self.stats
        if remote_counter is None:
            remote_counter = self.remote_counter
        spec = self.federation.collection(dest_name)
        if spec is not None:
            router = ClusterRouter(self, self.federation.catalog)
            return router.scatter(from_peer, spec, calls, body,
                                  stats=stats, counter=remote_counter)
        peer = self.federation.peer(dest_name)  # raises on unknown peer
        model = self.federation.cost_model

        semantics = self.semantics_for(id(body))
        spec = self.projection_specs.get(id(body))
        param_paths: dict[str, PathSets] | None = None
        used_paths = returned_paths = None
        if semantics == "by-projection" and spec is not None:
            param_paths = spec.param_paths
            used_paths = sorted(str(p) for p in spec.result_paths.used)
            returned_paths = sorted(
                str(p) for p in spec.result_paths.returned)

        # Explain-analyze attribution: shard-rewritten bodies alias
        # back to the logical call site the plan priced; sim seconds
        # are inclusive deltas, mirroring how the estimator prices.
        site_id = self.site_alias.get(id(body), id(body))
        wall0 = time.perf_counter()
        sim0 = stats.times.total
        bytes0 = stats.message_bytes + stats.document_bytes

        with child_span("rpc", dest=dest_name) as rpc_span, \
                bind_stats_span(stats, rpc_span):
            if rpc_span is not None:
                rpc_span.set(semantics=semantics, calls=len(calls))
                if used_paths is not None:
                    rpc_span.set(used_paths=len(used_paths),
                                 returned=len(returned_paths or ()))

            query_text = pretty(body)
            param_names = [name for name, _seq in calls[0]] if calls else []
            static_attrs = self.federation.static.to_attributes()

            def build_request(raw_calls: list[list[tuple[str, list]]]
                              ) -> RequestMessage:
                bundle = marshal_calls(raw_calls, semantics, param_paths)
                return RequestMessage(
                    query=query_text,
                    param_names=param_names,
                    calls=bundle.calls,
                    fragments=bundle.fragments,
                    static_attrs=static_attrs,
                    used_paths=used_paths,
                    returned_paths=returned_paths,
                )

            request = build_request(calls)
            request_xml = request.to_xml()
            request_bytes = len(request_xml.encode())
            base_uri = f"{XRPC_SCHEME}{peer.name}/response"

            cache_key = cache_epoch = None
            if self.result_cache is not None:
                cache_epoch = self.result_cache.epoch()
                cache_key = response_key(cache_scope or dest_name,
                                         semantics, request_xml,
                                         used_paths, returned_paths,
                                         shard_epoch=shard_epoch)
                hit = self.result_cache.lookup_response(cache_key,
                                                        request_bytes)
                if hit is not None:
                    # Served from the shared cache: nothing on the
                    # wire; the cached text is still shredded locally
                    # into fresh fragment documents, so node identity
                    # stays per-query.
                    stats.cache_hits += 1
                    stats.cache_saved_bytes += (request_bytes
                                                + len(hit.encode()))
                    deserialize_s = model.deserialize_time(
                        len(hit.encode()))
                    stats.times.serialize += deserialize_s
                    stats.charge_span("serialize", deserialize_s)
                    if rpc_span is not None:
                        rpc_span.set(cache="hit",
                                     saved_bytes=request_bytes
                                     + len(hit.encode()))
                    self.actuals.record_site(
                        site_id, sim_s=stats.times.total - sim0,
                        wall_s=time.perf_counter() - wall0,
                        cache_hits=len(calls))
                    parsed = ResponseMessage.from_xml(hit)
                    return unmarshal_result(parsed.results,
                                            parsed.fragments,
                                            base_uri=base_uri)

            def make_handler() -> RequestHandler:
                return RequestHandler(
                    peer_name=peer.name,
                    resolve_doc=self._resolver(peer.name, stats=stats),
                    xrpc_execute=self._make_xrpc_execute(
                        peer.name, stats=stats, counter=remote_counter),
                    semantics=semantics,
                    counter=remote_counter,
                )

            if self.batcher is not None:
                key = batch_key(dest_name, query_text, param_names,
                                semantics, static_attrs,
                                used_paths, returned_paths)

                def merged_exchange(
                        merged_calls: list[list[tuple[str, list]]]
                        ) -> ResponseMessage:
                    # Only the batch leader lands here; the merged wire
                    # exchange is charged to no single query (each
                    # participant accounts for its private messages
                    # below), while the transport's wire counters
                    # record the truth. The throwaway RunStats carries
                    # no span either, so traced runs never double-count
                    # the merged exchange. Known accounting skew:
                    # nested work the merged evaluation triggers
                    # (document shipping, recursive round trips) runs
                    # through the leader's resolver and counters, so
                    # under coalescing the leader's RunStats
                    # over-report and riders' under-report that share.
                    if len(merged_calls) == len(calls):
                        # No riders joined: batch.calls is exactly our
                        # own call list, so reuse the built request.
                        merged_request, merged_xml = request, request_xml
                    else:
                        merged_request, merged_xml = (
                            build_request(merged_calls), None)
                    exchange = self.transport.exchange(
                        peer, merged_request, make_handler().handle,
                        RunStats(), request_xml=merged_xml)
                    return exchange.response, exchange.response_xml

                response_xml = self.batcher.execute(key, calls,
                                                    merged_exchange)
                self.transport.charge_message(stats, request_bytes)
                response_bytes = len(response_xml.encode())
                self.transport.charge_message(stats, response_bytes)
                parsed = ResponseMessage.from_xml(response_xml)
            else:
                exchange = self.transport.exchange(peer, request,
                                                   make_handler().handle,
                                                   stats,
                                                   request_xml=request_xml)
                response_xml = exchange.response_xml
                response_bytes = exchange.response_bytes
                parsed = exchange.response

            stats.rpc_calls += len(calls)
            if rpc_span is not None:
                rpc_span.set(cache="miss" if cache_key is not None
                             else "off",
                             request_bytes=request_bytes,
                             response_bytes=response_bytes)
            self.actuals.record_site(
                site_id,
                bytes=(stats.message_bytes + stats.document_bytes
                       - bytes0),
                calls=len(calls),
                sim_s=stats.times.total - sim0,
                wall_s=time.perf_counter() - wall0)
            self.messages.append(MessageLog(
                dest=peer.name, calls=len(calls),
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                request_xml=request_xml if self.keep_message_xml else "",
                response_xml=response_xml if self.keep_message_xml else "",
            ))

            if self.result_cache is not None and cache_key is not None:
                self.result_cache.store_response(cache_key, response_xml,
                                                 epoch=cache_epoch)
            return unmarshal_result(parsed.results, parsed.fragments,
                                    base_uri=base_uri)

    # -- top-level execution --------------------------------------------------------

    def execute(self) -> RunResult:
        module = self.decomposition.module
        evaluator = Evaluator(module, self.federation.static)
        env = DynamicContext(
            resolve_doc=self._resolver(self.origin),
            xrpc_execute=self._make_xrpc_execute(self.origin),
            xrpc_execute_bulk=self._make_xrpc_execute_bulk(self.origin),
            counter=self.local_counter,
        )
        items = evaluator.run(env)

        model = self.federation.cost_model
        local_s = model.exec_time(
            self.local_counter.ticks, self.local_counter.nodes_visited)
        remote_s = model.exec_time(
            self.remote_counter.ticks, self.remote_counter.nodes_visited)
        self.stats.times.local_exec = local_s
        self.stats.times.remote_exec = remote_s
        # Execution time is computed once from the run-wide counters,
        # so the component leaves land on the query root (the wire
        # components were charged per rpc/ship span as they happened).
        self.stats.charge_span("local_exec", local_s)
        self.stats.charge_span("remote_exec", remote_s)
        self.actuals.local.sim_s += local_s
        return RunResult(items=items, stats=self.stats,
                         decomposition=self.decomposition,
                         messages=self.messages)
