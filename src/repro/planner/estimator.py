"""Lowering a decomposition into a priced :class:`PhysicalPlan`.

The estimator walks the rewritten module once, doing two jobs at the
same altitude the evaluator will work at:

* **volume estimation** — an abstract interpretation where the value
  of an expression is a ``(items, bytes)`` volume, resolved against
  the :class:`~repro.planner.stats.StatsCatalog` tag histograms when a
  path is rooted in a known document (so ``person`` counts and subtree
  bytes are real numbers, not guesses) and falling back to damped
  defaults when not;
* **operator emission** — every ``execute at`` becomes an
  :class:`~repro.planner.ir.XrpcCall` (wrapped in ``BulkBatch`` /
  ``ScatterGather`` as applicable) and every data-shipped ``doc()``
  reference a :class:`~repro.planner.ir.ShipDocument`, each priced
  into a :class:`~repro.net.estimate.CostVector` with the same cost
  model arithmetic the transport charges at run time.

Unknowable quantities (predicate selectivity, projection compression)
start at calibrated defaults and are corrected per peer by the
:class:`~repro.planner.feedback.CalibrationBook` after every run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.cluster.gather import gather_plan
from repro.cluster.router import split_xrpc_uri
from repro.decompose import DecompositionResult
from repro.paths.analysis import (
    TRANSPARENT_BUILTINS, VALUE_BUILTINS, PathSets, analyze_module,
)
from repro.planner.feedback import CalibrationBook
from repro.planner.ir import (
    BulkBatch, LocalEval, PhysicalPlan, ScatterGather, ShipDocument,
    XrpcCall,
)
from repro.planner.stats import DocumentStats, StatsCatalog
from repro.xquery.ast import (
    VALUE_COMPARISONS, ArithmeticExpr, ComparisonExpr, ConstructorExpr,
    ContextItemExpr, EmptySequence, Expr, ForExpr, FunCall, IfExpr,
    LetExpr, Literal, LogicalExpr, NodeSetExpr, OrderByExpr, PathExpr,
    QuantifiedExpr, RangeExpr, SequenceExpr, TypeswitchExpr, UnaryExpr,
    VarRef, XRPCExpr, walk,
)
from repro.xquery.predicates import (
    FLIPPED_OPS, conjunction_members, literal_probe,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation

XRPC_SCHEME = "xrpc://"

# -- calibrated defaults -----------------------------------------------------

#: SOAP envelope + header bytes per request / response message.
REQUEST_ENVELOPE_BYTES = 430.0
RESPONSE_ENVELOPE_BYTES = 260.0
#: Marshalling wrapper per sequence item in a message payload.
PER_ITEM_OVERHEAD_BYTES = 25.0
#: A by-fragment/by-projection call references fragments per call.
FRAGMENT_REF_BYTES = 20.0
#: One serialised projection path in a request header.
PATH_OVERHEAD_BYTES = 30.0
#: Selectivity of one predicate / conditional filter when the value
#: histograms have nothing sharper (see ``_Lowerer._predicate_selectivity``
#: / ``_condition_selectivity`` for the measured path).
FILTER_SELECTIVITY = 0.5
#: Fraction of a subtree's bytes that survive atomisation.
TEXT_FRACTION = 0.35
#: Byte shrink per path step when no histogram is available.
STEP_BYTES_FACTOR = 0.6
#: Response/request compression from runtime projection when the
#: projection paths give nothing sharper.
PROJECTION_FACTOR = 0.35
#: Bytes assumed for a document we have no statistics for.
DEFAULT_DOC_BYTES = 4096.0
#: Evaluator work per element touched (ticks / axis visits),
#: calibrated against the compiled set-at-a-time engine (index probes
#: and hash joins tick far less than the per-node walker they
#: replaced).
EXEC_TICKS_PER_ELEMENT = 0.05
EXEC_VISITS_PER_ELEMENT = 0.25


@dataclass(frozen=True)
class _Vol:
    """Abstract value: an estimated sequence volume."""

    items: float = 0.0
    bytes: float = 0.0
    stats: DocumentStats | None = None   # source document, when known
    tag: str | None = None               # element name of the items

    def scaled(self, factor: float) -> "_Vol":
        return replace(self, items=self.items * factor,
                       bytes=self.bytes * factor)

    def per_item(self) -> "_Vol":
        if self.items <= 1.0:
            return self
        return replace(self, items=1.0, bytes=self.bytes / self.items)


_EMPTY = _Vol()
_BOOLEAN = _Vol(items=1.0, bytes=8.0)


def _combine(volumes: list[_Vol]) -> _Vol:
    items = sum(v.items for v in volumes)
    total = sum(v.bytes for v in volumes)
    stats = next((v.stats for v in volumes if v.stats is not None), None)
    tags = {v.tag for v in volumes if v.tag is not None}
    tag = tags.pop() if len(tags) == 1 else None
    return _Vol(items=items, bytes=total, stats=stats, tag=tag)


class PlanEstimator:
    """Lower decompositions into priced physical plans."""

    def __init__(self, federation: "Federation",
                 stats_catalog: StatsCatalog,
                 calibration: CalibrationBook):
        self.federation = federation
        self.stats = stats_catalog
        self.calibration = calibration
        self.model = federation.cost_model

    def lower(self, decomposition: DecompositionResult, origin: str,
              bulk_rpc: bool = True, label: str | None = None,
              transport=None) -> PhysicalPlan:
        """Lower one decomposition into a priced plan. ``transport``
        is the wire the run will actually use (an engine may run on a
        private one); it supplies the live replica-load signal."""
        lowerer = _Lowerer(self, decomposition, origin, bulk_rpc,
                           transport=transport)
        plan = lowerer.run()
        if label is not None:
            plan.label = label
        return plan

    # -- shared pricing helpers ---------------------------------------------

    def document_stats(self, host: str, local_name: str,
                       with_values: bool = False) -> DocumentStats | None:
        return self.stats.document_stats(host, local_name,
                                         with_values=with_values)

    def exec_seconds(self, elements: float, origin: str) -> float:
        model = self.model
        per_element = (EXEC_TICKS_PER_ELEMENT * model.tick_s
                       + EXEC_VISITS_PER_ELEMENT * model.node_visit_s)
        return (elements * per_element
                * self.calibration.factor("exec", origin))

    def projection_factor(self, paths: PathSets | None) -> float:
        """How much of a fragment survives runtime projection."""
        if paths is None or (not paths.used and not paths.returned):
            return 1.0
        if any(not path.steps for path in paths.returned):
            return 1.0          # the whole context node is returned
        if not paths.returned:
            return PROJECTION_FACTOR * 0.5   # only used nodes survive
        return PROJECTION_FACTOR

    def scatter_queue_seconds(self, replica_peers: tuple[str, ...],
                              transport=None) -> float:
        """Queueing pressure from live replica load: scattering onto
        busy replicas waits behind their in-flight exchanges.
        ``transport`` is the wire the run will use (defaults to the
        federation's shared one)."""
        if transport is None:
            transport = self.federation.transport
        loads = transport.peer_loads()
        if not replica_peers:
            return 0.0
        in_flight = sum(loads.get(peer, (0, 0))[0] for peer in replica_peers)
        return (in_flight / len(replica_peers)) * self.model.latency_s


class _Lowerer:
    """One lowering pass: volume interpretation + operator emission."""

    def __init__(self, estimator: PlanEstimator,
                 decomposition: DecompositionResult, origin: str,
                 bulk_rpc: bool, transport=None):
        self.estimator = estimator
        self.federation = estimator.federation
        self.calibration = estimator.calibration
        self.decomposition = decomposition
        self.origin = origin
        self.bulk_rpc = bulk_rpc
        self.transport = transport
        self.plan = PhysicalPlan(
            label=decomposition.strategy.value,
            strategy=decomposition.strategy,
            decomposition=decomposition,
            origin=origin,
            model=estimator.model,
        )
        # Value histograms cost an extra statistics pass per document;
        # only queries that actually compare values pay it.
        self.want_values = any(
            isinstance(node, ComparisonExpr)
            and node.op in VALUE_COMPARISONS
            for node in self._module_exprs())
        self.ops: list = []
        self._shipped: set[tuple[str, str, str]] = set()
        #: Elements touched per execution host (exec estimation).
        self._touched: dict[str, float] = {}
        self._inlining: list[tuple[str, int]] = []
        # Projection path analysis is only paid when a site will use it
        # (the engine's by-value/by-fragment hot paths skip it); the
        # body-keyed copy on the plan is what the run layer consumes,
        # so the analysis happens once per plan, not once per run.
        self._projection_specs: dict[int, object] = {}
        if decomposition.strategy.uses_projection and any(
                isinstance(node, XRPCExpr)
                for node in self._module_exprs()):
            self._projection_specs = analyze_module(decomposition.module)
            for node in self._module_exprs():
                if isinstance(node, XRPCExpr):
                    spec = self._projection_specs.get(id(node))
                    if spec is not None:
                        self.plan.projection_specs[id(node.body)] = spec

    def _module_exprs(self):
        module = self.decomposition.module
        for decl in module.functions:
            yield from walk(decl.body)
        yield from walk(module.body)

    # -- entry --------------------------------------------------------------

    def run(self) -> PhysicalPlan:
        module = self.decomposition.module
        result = self.visit(module.body, {}, self.origin, 1.0)
        local = LocalEval(at=self.origin)
        local.vector.local_exec_s = self.estimator.exec_seconds(
            self._touched.get(self.origin, 0.0)
            + result.items * 2.0, self.origin)
        self.ops.insert(0, local)
        self.plan.ops = self.ops
        return self.plan.finish()

    # -- abstract interpretation --------------------------------------------

    def visit(self, expr: Expr, env: dict[str, _Vol], host: str,
              multiplicity: float) -> _Vol:
        if isinstance(expr, Literal):
            return _Vol(items=1.0, bytes=float(len(str(expr.value))))
        if isinstance(expr, EmptySequence):
            return _EMPTY
        if isinstance(expr, VarRef):
            return env.get(expr.name, _EMPTY)
        if isinstance(expr, ContextItemExpr):
            return env.get(".", _EMPTY)
        if isinstance(expr, SequenceExpr):
            return _combine([self.visit(item, env, host, multiplicity)
                             for item in expr.items])
        if isinstance(expr, LetExpr):
            value = self.visit(expr.value, env, host, multiplicity)
            return self.visit(expr.body, {**env, expr.var: value},
                              host, multiplicity)
        if isinstance(expr, ForExpr):
            seq = self.visit(expr.seq, env, host, multiplicity)
            iterations = max(seq.items, 1.0)
            body_env = {**env, expr.var: seq.per_item()}
            if expr.pos_var is not None:
                body_env[expr.pos_var] = _BOOLEAN
            body = self.visit(expr.body, body_env, host,
                              multiplicity * iterations)
            return body.scaled(iterations)
        if isinstance(expr, IfExpr):
            self.visit(expr.cond, env, host, multiplicity)
            selectivity = self._condition_selectivity(expr.cond, env)
            if selectivity is None:
                selectivity = FILTER_SELECTIVITY
            then = self.visit(expr.then_branch, env, host,
                              multiplicity * selectivity)
            other = self.visit(expr.else_branch, env, host,
                               multiplicity * (1 - selectivity))
            return _combine([then.scaled(selectivity),
                             other.scaled(1 - selectivity)])
        if isinstance(expr, QuantifiedExpr):
            seq = self.visit(expr.seq, env, host, multiplicity)
            self.visit(expr.cond, {**env, expr.var: seq.per_item()},
                       host, multiplicity * max(seq.items, 1.0))
            return _BOOLEAN
        if isinstance(expr, OrderByExpr):
            seq = self.visit(expr.seq, env, host, multiplicity)
            inner = {**env, expr.var: seq.per_item()}
            for spec in expr.specs:
                self.visit(spec.key, inner, host,
                           multiplicity * max(seq.items, 1.0))
            body = self.visit(expr.body, inner, host,
                              multiplicity * max(seq.items, 1.0))
            return body.scaled(max(seq.items, 1.0))
        if isinstance(expr, TypeswitchExpr):
            operand = self.visit(expr.operand, env, host, multiplicity)
            branches = []
            for case in expr.cases:
                case_env = ({**env, case.var: operand}
                            if case.var else env)
                branches.append(self.visit(case.body, case_env, host,
                                           multiplicity))
            default_env = ({**env, expr.default_var: operand}
                           if expr.default_var else env)
            branches.append(self.visit(expr.default_body, default_env,
                                       host, multiplicity))
            share = 1.0 / len(branches)
            return _combine([b.scaled(share) for b in branches])
        if isinstance(expr, (ComparisonExpr, ArithmeticExpr, LogicalExpr)):
            self.visit(expr.left, env, host, multiplicity)
            self.visit(expr.right, env, host, multiplicity)
            return _BOOLEAN
        if isinstance(expr, UnaryExpr):
            self.visit(expr.operand, env, host, multiplicity)
            return _BOOLEAN
        if isinstance(expr, RangeExpr):
            self.visit(expr.start, env, host, multiplicity)
            self.visit(expr.end, env, host, multiplicity)
            return _Vol(items=8.0, bytes=24.0)
        if isinstance(expr, NodeSetExpr):
            return _combine([self.visit(expr.left, env, host, multiplicity),
                             self.visit(expr.right, env, host,
                                        multiplicity)])
        if isinstance(expr, PathExpr):
            return self._visit_path(expr, env, host, multiplicity)
        if isinstance(expr, ConstructorExpr):
            if expr.name_expr is not None:
                self.visit(expr.name_expr, env, host, multiplicity)
            content = (_EMPTY if expr.content is None
                       else self.visit(expr.content, env, host,
                                       multiplicity))
            overhead = 2.0 * len(expr.name or "e") + 5.0
            return _Vol(items=1.0, bytes=content.bytes + overhead)
        if isinstance(expr, FunCall):
            return self._visit_funcall(expr, env, host, multiplicity)
        if isinstance(expr, XRPCExpr):
            return self._visit_xrpc(expr, env, host, multiplicity)
        # Unknown expression kind: recurse generically.
        return _combine([self.visit(child, env, host, multiplicity)
                         for child in expr.child_exprs()])

    # -- paths --------------------------------------------------------------

    def _visit_path(self, expr: PathExpr, env: dict[str, _Vol], host: str,
                    multiplicity: float) -> _Vol:
        current = self.visit(expr.input, env, host, multiplicity)
        for step in expr.steps:
            current = self._apply_step(current, step.axis, step.test)
            for predicate in step.predicates:
                self.visit(predicate, {**env, ".": current.per_item()},
                           host, multiplicity * max(current.items, 1.0))
                current = current.scaled(
                    self._predicate_selectivity(predicate, current))
        return current

    def _predicate_selectivity(self, predicate: Expr,
                               current: _Vol) -> float:
        """Measured selectivity of one step predicate, read off the
        source document's value histograms; the calibrated default
        when the shape or the histograms give nothing sharper."""
        stats = current.stats
        if stats is None or stats.values is None:
            return FILTER_SELECTIVITY
        selectivity: float | None = None
        for conjunct in conjunction_members(predicate):
            probe = literal_probe(conjunct)
            if probe is None:
                probe = self._self_probe(conjunct, current)
            if probe is None:
                continue
            key, op, value = probe
            histogram = stats.values.get(key)
            if histogram is None:
                continue
            fraction = histogram.selectivity(op, value)
            if fraction is None:
                continue
            selectivity = (fraction if selectivity is None
                           else selectivity * fraction)
        return FILTER_SELECTIVITY if selectivity is None else selectivity

    @staticmethod
    def _self_probe(conjunct: Expr,
                    current: _Vol) -> tuple[str, str, object] | None:
        """``. op literal`` against the step's own tag histogram."""
        if current.tag is None or not isinstance(conjunct,
                                                 ComparisonExpr) \
                or conjunct.op not in VALUE_COMPARISONS:
            return None
        for side, other, op in ((conjunct.left, conjunct.right,
                                 conjunct.op),
                                (conjunct.right, conjunct.left,
                                 FLIPPED_OPS[conjunct.op])):
            if isinstance(side, ContextItemExpr) \
                    and isinstance(other, Literal) \
                    and isinstance(other.value, (str, int, float)) \
                    and not isinstance(other.value, bool):
                return (current.tag, op, other.value)
        return None

    def _condition_selectivity(self, cond: Expr,
                               env: dict[str, _Vol]) -> float | None:
        """Measured selectivity of an ``if`` condition: comparisons of
        ``$var/...path`` sides against literals (histogram lookups) or
        against another sequence (equality semijoin: ``|right| /
        distinct(left)``). None when nothing is recognised — the
        caller falls back to the calibrated default.
        """
        if isinstance(cond, LogicalExpr):
            left = self._condition_selectivity(cond.left, env)
            right = self._condition_selectivity(cond.right, env)
            if left is None and right is None:
                return None
            left = FILTER_SELECTIVITY if left is None else left
            right = FILTER_SELECTIVITY if right is None else right
            if cond.op == "and":
                return left * right
            return 1.0 - (1.0 - left) * (1.0 - right)
        if not isinstance(cond, ComparisonExpr) \
                or cond.op not in VALUE_COMPARISONS:
            return None
        left = self._histogram_of_side(cond.left, env)
        right = self._histogram_of_side(cond.right, env)
        if left is not None:
            histogram, _vol = left
            if isinstance(cond.right, Literal):
                value = cond.right.value
                if not isinstance(value, bool) \
                        and isinstance(value, (str, int, float)):
                    return histogram.selectivity(cond.op, value)
                return None
            if right is not None and cond.op == "=":
                # Value-equality semijoin: each left item survives with
                # probability |right values| / |distinct left values|.
                _right_hist, right_vol = right
                return min(1.0, max(right_vol.items, 1.0)
                           / max(histogram.distinct, 1))
            return None
        if right is not None and isinstance(cond.left, Literal):
            histogram, _vol = right
            value = cond.left.value
            if not isinstance(value, bool) \
                    and isinstance(value, (str, int, float)):
                return histogram.selectivity(FLIPPED_OPS[cond.op], value)
        return None

    def _histogram_of_side(self, side: Expr, env: dict[str, _Vol]):
        """``(histogram, bound _Vol)`` when ``side`` is a relative path
        from an environment variable whose source document carries
        value histograms for the path's last named step."""
        if not (isinstance(side, PathExpr)
                and isinstance(side.input, VarRef)
                and side.steps):
            return None
        volume = env.get(side.input.name)
        if volume is None or volume.stats is None \
                or volume.stats.values is None:
            return None
        last = side.steps[-1]
        if last.test == "*" or last.test.endswith("()"):
            return None
        key = ("@" + last.test if last.axis == "attribute"
               else last.test)
        histogram = volume.stats.values.get(key)
        if histogram is None:
            return None
        return (histogram, volume)

    def _apply_step(self, current: _Vol, axis: str, test: str) -> _Vol:
        stats = current.stats
        if stats is None:
            if axis == "attribute":
                return _Vol(items=current.items,
                            bytes=current.items * 8.0)
            if test == "text()":
                return _Vol(items=current.items,
                            bytes=current.bytes * TEXT_FRACTION)
            return _Vol(items=current.items,
                        bytes=current.bytes * STEP_BYTES_FACTOR)
        # Scale the whole-document histogram by how much of the source
        # tag's population the incoming sequence still covers.
        fraction = 1.0
        if current.tag is not None:
            source = stats.tag(current.tag)
            if source is not None and source.count > 0:
                fraction = min(current.items / source.count, 1.0)
        if axis == "attribute":
            key = "@" + test if test not in ("node()", "*") else None
            if key is not None:
                stat = stats.tag(key)
                if stat is None:
                    return _Vol(stats=stats)
                return _Vol(items=stat.count * fraction,
                            bytes=stat.subtree_bytes * fraction
                            + stat.count * fraction * 4.0,
                            stats=stats, tag=key)
            return _Vol(items=current.items * 2.0,
                        bytes=current.items * 16.0, stats=stats)
        if test == "text()":
            stat = stats.tag("#text")
            if stat is None:
                return _Vol(stats=stats)
            return _Vol(items=stat.count * fraction,
                        bytes=stat.subtree_bytes * fraction, stats=stats)
        if test in ("node()", "*"):
            return _Vol(items=stats.elements * fraction,
                        bytes=current.bytes, stats=stats)
        if axis in ("parent", "ancestor", "ancestor-or-self", "root()"):
            return _Vol(items=current.items,
                        bytes=stats.serialized_bytes * fraction,
                        stats=stats)
        stat = stats.tag(test)
        if stat is None:
            return _Vol(stats=stats)
        return _Vol(items=stat.count * fraction,
                    bytes=stat.subtree_bytes * fraction,
                    stats=stats, tag=test)

    # -- function calls -----------------------------------------------------

    def _visit_funcall(self, expr: FunCall, env: dict[str, _Vol],
                       host: str, multiplicity: float) -> _Vol:
        name, arity = expr.name, len(expr.args)
        module = self.decomposition.module
        decl = module.function(name, arity)
        if decl is not None and (name, arity) not in self._inlining:
            args = [self.visit(arg, env, host, multiplicity)
                    for arg in expr.args]
            body_env = {param.name: volume
                        for param, volume in zip(decl.params, args)}
            self._inlining.append((name, arity))
            try:
                return self.visit(decl.body, body_env, host, multiplicity)
            finally:
                self._inlining.pop()

        if name in ("doc", "fn:doc", "collection"):
            return self._visit_doc(expr, env, host, multiplicity)
        if name == "root" and arity == 1:
            inner = self.visit(expr.args[0], env, host, multiplicity)
            if inner.stats is not None:
                return _Vol(items=inner.items,
                            bytes=inner.stats.serialized_bytes,
                            stats=inner.stats)
            return inner
        if name in ("id", "idref") and arity == 2:
            self.visit(expr.args[0], env, host, multiplicity)
            inner = self.visit(expr.args[1], env, host, multiplicity)
            avg = (inner.stats.avg_element_bytes
                   if inner.stats is not None else 64.0)
            return _Vol(items=inner.items, bytes=inner.items * avg,
                        stats=inner.stats)
        if name in TRANSPARENT_BUILTINS:
            return _combine([self.visit(arg, env, host, multiplicity)
                             for arg in expr.args])
        if name in ("count", "sum", "avg", "max", "min", "empty",
                    "exists", "string-length", "number", "not",
                    "boolean"):
            for arg in expr.args:
                self.visit(arg, env, host, multiplicity)
            return _BOOLEAN
        if name in VALUE_BUILTINS:
            volumes = [self.visit(arg, env, host, multiplicity)
                       for arg in expr.args]
            combined = _combine(volumes)
            if combined.tag is not None and combined.tag.startswith("@"):
                return combined      # attribute values: already text
            return replace(combined, bytes=combined.bytes * TEXT_FRACTION)
        return _combine([self.visit(arg, env, host, multiplicity)
                         for arg in expr.args])

    # -- documents (data shipping) ------------------------------------------

    def _visit_doc(self, expr: FunCall, env: dict[str, _Vol], host: str,
                   multiplicity: float) -> _Vol:
        for arg in expr.args:
            self.visit(arg, env, host, multiplicity)
        if len(expr.args) != 1 or not isinstance(expr.args[0], Literal) \
                or not isinstance(expr.args[0].value, str):
            return _Vol(items=1.0, bytes=DEFAULT_DOC_BYTES)
        uri = expr.args[0].value
        parts = split_xrpc_uri(uri)
        if parts is None:
            owner, local_name = host, uri     # host-relative document
        else:
            owner, local_name = parts
        stats = self.estimator.document_stats(
            owner, local_name, with_values=self.want_values)
        if owner != host:
            self._emit_ship(owner, local_name, host, stats)
        self._touch(host, stats, multiplicity)
        if stats is None:
            return _Vol(items=1.0, bytes=DEFAULT_DOC_BYTES)
        return _Vol(items=1.0, bytes=float(stats.serialized_bytes),
                    stats=stats)

    def _touch(self, host: str, stats: DocumentStats | None,
               multiplicity: float) -> None:
        elements = stats.elements if stats is not None else 64.0
        self._touched[host] = (self._touched.get(host, 0.0)
                               + elements * max(multiplicity, 1.0))

    def _emit_ship(self, owner: str, local_name: str, to: str,
                   stats: DocumentStats | None) -> None:
        key = (owner, local_name, to)
        if key in self._shipped:
            return
        self._shipped.add(key)
        size = (stats.serialized_bytes if stats is not None
                else DEFAULT_DOC_BYTES)
        size *= self.calibration.factor("doc", owner)
        spec = self.federation.collection(owner)
        shards = spec.shard_count if spec is not None else 0
        op = ShipDocument(owner=owner, local_name=local_name, to=to,
                          document_bytes=int(size), shards=shards)
        op.vector.document_bytes = size
        op.vector.messages = float(shards if shards else 1)
        exec_s = self.estimator.exec_seconds(
            (stats.elements if stats is not None else 64.0) * 0.2,
            self.origin)
        if to == self.origin:
            op.vector.local_exec_s = exec_s
        else:
            op.vector.remote_exec_s = exec_s
        if spec is not None:
            op.vector.queue_s = self.estimator.scatter_queue_seconds(
                spec.replica_peers, transport=self.transport)
        self.ops.append(op)

    # -- call sites ---------------------------------------------------------

    def _visit_xrpc(self, expr: XRPCExpr, env: dict[str, _Vol], host: str,
                    multiplicity: float) -> _Vol:
        if isinstance(expr.dest, Literal) and isinstance(expr.dest.value,
                                                         str):
            dest = expr.dest.value
            if dest.startswith(XRPC_SCHEME):
                dest = dest[len(XRPC_SCHEME):].split("/", 1)[0]
        else:
            self.visit(expr.dest, env, host, multiplicity)
            dest = host                      # dynamic dest: assume local
        semantics = self.plan.semantics_for(id(expr.body))
        self.plan.site_semantics[id(expr.body)] = semantics
        spec = self._projection_specs.get(id(expr))

        param_volumes: dict[str, _Vol] = {}
        for param in expr.params:
            param_volumes[param.name] = self.visit(param.value, env, host,
                                                   multiplicity)

        collection = self.federation.collection(dest)
        if collection is not None and gather_plan(
                expr.body, collection.name) is None:
            # Not scatter-safe: the router falls back to evaluating at
            # the originator over the merged collection document.
            stats = self.estimator.document_stats(
                collection.name, collection.document,
                with_values=self.want_values)
            self._emit_ship(collection.name, collection.document, host,
                            stats)
            self._touch(host, stats, multiplicity)
            body_env = {name: volume
                        for name, volume in param_volumes.items()}
            return self.visit(expr.body, body_env, host, multiplicity)

        calls = max(multiplicity, 1.0)
        remote_host = dest
        body_env = {name: volume for name, volume in param_volumes.items()}
        response = self.visit(expr.body, body_env, remote_host, calls)
        response = response.per_item() if calls > 1 else response

        # Request payload per the site's message semantics.
        param_bytes = sum(v.bytes for v in param_volumes.values())
        param_items = sum(v.items for v in param_volumes.values())
        path_count = 0
        if semantics == "by-projection" and spec is not None:
            factors = [self.estimator.projection_factor(paths)
                       for paths in spec.param_paths.values()]
            if factors:
                param_bytes *= max(factors)
            for paths in spec.param_paths.values():
                path_count += len(paths.used) + len(paths.returned)
            path_count += (len(spec.result_paths.used)
                           + len(spec.result_paths.returned))
        if semantics == "by-value":
            payload = calls * (param_bytes
                               + param_items * PER_ITEM_OVERHEAD_BYTES)
        else:
            # Fragments ship once per message; calls carry references.
            payload = (param_bytes
                       + param_items * PER_ITEM_OVERHEAD_BYTES
                       + calls * param_items * FRAGMENT_REF_BYTES)
        request_bytes = (REQUEST_ENVELOPE_BYTES
                         + path_count * PATH_OVERHEAD_BYTES + payload)

        response_factor = 1.0
        if semantics == "by-projection":
            response_factor = self.estimator.projection_factor(
                spec.result_paths if spec is not None else None)
        response_bytes = (RESPONSE_ENVELOPE_BYTES
                          + calls * (response.bytes * response_factor
                                     + response.items
                                     * PER_ITEM_OVERHEAD_BYTES))

        msg_factor = self.calibration.factor("msg", dest, semantics)
        request_bytes *= msg_factor
        response_bytes *= msg_factor

        bulk = self.bulk_rpc or calls <= 1.0
        messages = 2.0 if bulk else 2.0 * calls

        call = XrpcCall(dest=dest, semantics=semantics,
                        site_id=id(expr.body), calls=calls,
                        request_bytes=request_bytes,
                        response_bytes=response_bytes)
        call.vector.message_bytes = request_bytes + response_bytes
        call.vector.messages = messages
        call.vector.remote_exec_s = self.estimator.exec_seconds(
            self._touched.pop(remote_host, 0.0), self.origin) \
            if remote_host != self.origin else 0.0

        op: object = call
        if collection is not None:
            shards = collection.shard_count
            call.vector.messages *= shards
            call.vector.message_bytes += request_bytes * (shards - 1)
            call.vector.message_bytes += (RESPONSE_ENVELOPE_BYTES
                                          * (shards - 1))
            call.vector.queue_s = self.estimator.scatter_queue_seconds(
                collection.replica_peers, transport=self.transport)
            op = ScatterGather(collection=collection.name, shards=shards,
                               call=call)
        elif bulk and calls > 1.0:
            op = BulkBatch(call=call)
        self.ops.append(op)

        # The caller sees the unprojected result volume (projection
        # drops what the caller provably never touches).
        return replace(response.scaled(calls), stats=None)
