"""Per-peer document statistics feeding the cost-based planner.

A :class:`DocumentStats` summarises one stored document: its exact
serialised size, node counts, and a per-tag histogram carrying, for
every element name, how many instances exist and how many serialised
bytes their subtrees cover. Attribute values are tracked under
``@name`` keys and text nodes under ``#text``, so the estimator can
price projections ("only ``person/@id`` comes back") and atomisations
("``data($x)`` keeps the text") without touching the documents again.

Alongside the byte histograms, a document's *value histograms*
(:class:`ValueHistogram`, one per leaf-element tag and ``@attr`` key)
summarise the actual content: total and distinct value counts for
string equality, and an equi-width bucket histogram over the
numeric-coercible values for range comparisons — the numbers behind
the estimator's measured predicate selectivities (``age < 40`` prices
at the observed ~0.42, not a guessed 0.5). They are computed only when
a query needs them (``with_values=True``); ``values_version()`` counts
upgrades, and is woven into the plan-cache key so a plan priced before
histograms existed is re-planned once they do.

The :class:`StatsCatalog` computes stats lazily per ``(host, name)``
and invalidates them through the same ``Peer.on_store`` hook the
runtime's result cache uses; a *collection* host (cluster catalog
virtual name) aggregates its shard fragments' stats. ``version()``
bumps on every invalidation — it is part of the planner's plan-cache
key, so a re-stored document can never be planned against stale
statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from math import isnan
from typing import TYPE_CHECKING, Mapping

from repro.xmldb.node import NodeKind
from repro.xmldb.serializer import serialized_byte_length, subtree_spans
from repro.xmldb.values import coerce_number, iter_leaf_values

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation
    from repro.xmldb.document import Document


@dataclass(frozen=True)
class TagStat:
    """One histogram bucket: instances of a tag and the serialised
    bytes their subtrees cover (for ``@attr`` buckets, the value
    bytes; for ``#text``, the character data bytes)."""

    count: int = 0
    subtree_bytes: int = 0

    @property
    def avg_bytes(self) -> float:
        return self.subtree_bytes / self.count if self.count else 0.0

    def merged(self, other: "TagStat") -> "TagStat":
        return TagStat(self.count + other.count,
                       self.subtree_bytes + other.subtree_bytes)


#: Equi-width bucket count of the numeric value histograms.
VALUE_BUCKETS = 8

#: Selectivity estimates never reach exactly 0 or 1: a histogram is a
#: sample of one document state, not a proof about future parameters.
MIN_SELECTIVITY = 0.001


@dataclass(frozen=True)
class ValueHistogram:
    """Content summary of one value key (leaf-element tag or
    ``@attr``): the predicate-selectivity side of the statistics.

    ``count``
        values observed for this key (one per node).
    ``distinct``
        distinct *string* values — the denominator of string-equality
        selectivity (``@id = $x`` keeps ~``|$x| / distinct`` of the
        candidates).
    ``numeric_count``
        how many of the values coerce to a double (NaN excluded); the
        share of nodes a numeric range comparison can select at all.
    ``numeric_min`` / ``numeric_max``
        range of the coercible values (None when ``numeric_count`` is
        zero).
    ``buckets``
        :data:`VALUE_BUCKETS` equi-width counts over
        ``[numeric_min, numeric_max]``; range selectivity reads the
        cumulative fraction with linear interpolation inside the
        boundary bucket.
    """

    count: int
    distinct: int
    numeric_count: int = 0
    numeric_min: float | None = None
    numeric_max: float | None = None
    buckets: tuple[int, ...] = ()

    def selectivity(self, op: str, value: object) -> float | None:
        """Estimated fraction of this key's nodes whose value satisfies
        ``node-value op value``; None when the histogram has nothing to
        say (range comparison against a string — collation order is
        not summarised)."""
        if self.count <= 0:
            return None
        if op == "=":
            eq = 1.0 / max(self.distinct, 1)
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                eq *= self.numeric_count / self.count
            return _clamp(eq)
        if op == "!=":
            inner = self.selectivity("=", value)
            return None if inner is None else _clamp(1.0 - inner)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None                      # string range: no ordering stats
        if self.numeric_count == 0 or self.numeric_min is None \
                or self.numeric_max is None:
            return _clamp(0.0)
        probe = float(value)
        if isnan(probe):
            return _clamp(0.0)
        if op == "<":
            matching = self._cumulative_below(probe, inclusive=False)
        elif op == "<=":
            matching = self._cumulative_below(probe, inclusive=True)
        elif op == ">":
            matching = self.numeric_count - self._cumulative_below(
                probe, inclusive=True)
        else:  # ">="
            matching = self.numeric_count - self._cumulative_below(
                probe, inclusive=False)
        return _clamp(matching / self.count)

    def _cumulative_below(self, value: float, inclusive: bool) -> float:
        """Estimated number of numeric values ``<`` (or ``<=``)
        ``value``, by bucket interpolation."""
        low, high = self.numeric_min, self.numeric_max
        assert low is not None and high is not None
        if value < low or (value == low and not inclusive):
            return 0.0
        if value > high or (value == high and inclusive):
            return float(self.numeric_count)
        if high == low:
            # Single-point distribution; value == low here.
            return float(self.numeric_count) if inclusive else 0.0
        width = (high - low) / len(self.buckets)
        position = (value - low) / width
        full = int(position)
        total = float(sum(self.buckets[:full]))
        if full < len(self.buckets):
            total += self.buckets[full] * (position - full)
        return total

    def merged(self, other: "ValueHistogram") -> "ValueHistogram":
        """Aggregate two shard histograms: counts add, distincts add
        (capped by count — disjoint for partitioned keys like ids,
        an overestimate for low-cardinality keys), numeric buckets are
        re-binned into the combined range assuming uniformity inside
        each source bucket."""
        count = self.count + other.count
        distinct = min(self.distinct + other.distinct, count)
        mins = [m for m in (self.numeric_min, other.numeric_min)
                if m is not None]
        maxs = [m for m in (self.numeric_max, other.numeric_max)
                if m is not None]
        if not mins:
            return ValueHistogram(count=count, distinct=distinct)
        low, high = min(mins), max(maxs)
        buckets = [0.0] * VALUE_BUCKETS
        for part in (self, other):
            _rebin(part, low, high, buckets)
        return ValueHistogram(
            count=count, distinct=distinct,
            numeric_count=self.numeric_count + other.numeric_count,
            numeric_min=low, numeric_max=high,
            buckets=tuple(int(round(b)) for b in buckets))


def _clamp(fraction: float) -> float:
    return min(1.0 - MIN_SELECTIVITY,
               max(MIN_SELECTIVITY, fraction))


def _rebin(part: "ValueHistogram", low: float, high: float,
           target: list[float]) -> None:
    if part.numeric_count == 0 or part.numeric_min is None \
            or part.numeric_max is None or not part.buckets:
        return
    span = high - low
    if span <= 0.0:
        target[0] += part.numeric_count
        return
    src_width = (part.numeric_max - part.numeric_min) / len(part.buckets)
    bucket_count = len(target)
    for index, count in enumerate(part.buckets):
        if count == 0:
            continue
        start = part.numeric_min + index * src_width
        end = start + (src_width if src_width > 0 else 0.0)
        if end <= start:
            slot = min(int((start - low) / span * bucket_count),
                       bucket_count - 1)
            target[slot] += count
            continue
        # Spread the bucket uniformly over the slots it overlaps.
        first = max(0, min(int((start - low) / span * bucket_count),
                           bucket_count - 1))
        last = max(0, min(int((end - low) / span * bucket_count),
                          bucket_count - 1))
        share = count / (last - first + 1)
        for slot in range(first, last + 1):
            target[slot] += share


def build_value_histograms(document: "Document"
                           ) -> dict[str, ValueHistogram]:
    """One pass over the document's attributes and leaf elements (see
    :func:`repro.xmldb.values.iter_leaf_values`), producing the
    per-key :class:`ValueHistogram` table."""
    raw: dict[str, list[str]] = {}
    for key, value in iter_leaf_values(document):
        raw.setdefault(key, []).append(value)
    out: dict[str, ValueHistogram] = {}
    for key, values in raw.items():
        numbers = [number for value in values
                   if not isnan(number := coerce_number(value))]
        if numbers:
            low, high = min(numbers), max(numbers)
            buckets = [0] * VALUE_BUCKETS
            span = high - low
            for number in numbers:
                if span <= 0.0:
                    buckets[0] += 1
                else:
                    slot = min(int((number - low) / span * VALUE_BUCKETS),
                               VALUE_BUCKETS - 1)
                    buckets[slot] += 1
            out[key] = ValueHistogram(
                count=len(values), distinct=len(set(values)),
                numeric_count=len(numbers), numeric_min=low,
                numeric_max=high, buckets=tuple(buckets))
        else:
            out[key] = ValueHistogram(count=len(values),
                                      distinct=len(set(values)))
    return out


@dataclass(frozen=True)
class DocumentStats:
    """Summary of one document (or an aggregated sharded collection).

    ``values`` is the per-key value-histogram table (see
    :class:`ValueHistogram`) when the stats were computed
    ``with_values``; None means value statistics were never requested
    for this document — the estimator then prices predicates with the
    calibrated default selectivity.
    """

    uri: str
    serialized_bytes: int        # exact length of the serialised text
    nodes: int                   # all stored nodes (incl. attributes)
    elements: int                # element nodes only
    tags: Mapping[str, TagStat]  # name / "@name" / "#text" buckets
    values: Mapping[str, ValueHistogram] | None = None
    #: Exact physical bytes of the document's typed columns (the spill
    #: format's sizes — see ``ColumnSet.column_byte_sizes``); sums over
    #: shards for a collection view.
    column_bytes: int = 0

    def tag(self, name: str) -> TagStat | None:
        return self.tags.get(name)

    def value_histogram(self, key: str) -> ValueHistogram | None:
        """The value histogram for ``key`` (tag or ``@attr``), when
        value statistics were computed."""
        return None if self.values is None else self.values.get(key)

    @property
    def avg_element_bytes(self) -> float:
        return (self.serialized_bytes / self.elements
                if self.elements else 0.0)


def compute_document_stats(document: "Document", uri: str,
                           serialized_bytes: int | None = None,
                           with_values: bool = False) -> DocumentStats:
    """One O(nodes) pass over the pre/size arrays (two with
    ``with_values`` — the second builds the value-histogram table).

    When the document carries a memoized serialisation (see
    :func:`repro.xmldb.serializer.subtree_spans`), element subtree
    byte figures are *exact* — read off the recorded spans instead of
    approximated; the catalog path always hits this because it
    serialises the document (memoized) for the exact total first.
    Without spans, per-node markup bytes are approximated (tags,
    attribute syntax, text lengths) and then scaled so their total
    matches the exact serialised length when the caller provides it —
    subtree byte figures stay mutually consistent and sum to the true
    wire size either way.
    """
    kinds = document.kinds
    names = document.names
    values = document.values
    sizes = document.sizes
    count = len(kinds)

    spans = subtree_spans(document)
    if spans is not None:
        starts, ends = spans
        total_chars = ends[0] - starts[0]
        elements = sum(1 for kind in kinds if kind == NodeKind.ELEMENT)
        approx_total = total_chars
        scale = 1.0
        if serialized_bytes is not None and total_chars > 0:
            # Spans are character offsets; rescale to the UTF-8 total.
            scale = serialized_bytes / total_chars

        def element_subtree(pre: int) -> int:
            return ends[pre] - starts[pre]
    else:
        own = [0] * count
        elements = 0
        for pre in range(count):
            kind = kinds[pre]
            if kind == NodeKind.ELEMENT:
                # <name>...</name> or <name/>
                own[pre] = 2 * len(names[pre]) + 5
                elements += 1
            elif kind == NodeKind.ATTRIBUTE:
                own[pre] = len(names[pre]) + len(values[pre]) + 4  # name="v"
            elif kind == NodeKind.TEXT:
                own[pre] = len(values[pre])
            elif kind == NodeKind.COMMENT:
                own[pre] = len(values[pre]) + 7                    # <!-- -->
            elif kind == NodeKind.PROCESSING_INSTRUCTION:
                own[pre] = len(names[pre]) + len(values[pre]) + 5  # <? ?>
        approx_total = sum(own)
        scale = 1.0
        if serialized_bytes is not None and approx_total > 0:
            scale = serialized_bytes / approx_total

        prefix = [0] * (count + 1)
        for pre in range(count):
            prefix[pre + 1] = prefix[pre] + own[pre]

        def element_subtree(pre: int) -> int:
            return prefix[pre + sizes[pre] + 1] - prefix[pre]

    counts: dict[str, int] = {}
    byte_totals: dict[str, int] = {}
    for pre in range(count):
        kind = kinds[pre]
        if kind == NodeKind.ELEMENT:
            key = names[pre]
            subtree = element_subtree(pre)
        elif kind == NodeKind.ATTRIBUTE:
            key = "@" + names[pre]
            subtree = len(values[pre])
        elif kind == NodeKind.TEXT:
            key = "#text"
            subtree = len(values[pre])
        else:
            continue
        counts[key] = counts.get(key, 0) + 1
        byte_totals[key] = byte_totals.get(key, 0) + subtree

    tags = {
        key: TagStat(counts[key], int(byte_totals[key] * scale))
        for key in counts
    }
    total = (serialized_bytes if serialized_bytes is not None
             else approx_total)
    values = build_value_histograms(document) if with_values else None
    return DocumentStats(uri=uri, serialized_bytes=total, nodes=count,
                         elements=elements, tags=tags, values=values,
                         column_bytes=document.column_bytes())


def merge_document_stats(parts: list[DocumentStats],
                         uri: str) -> DocumentStats:
    """Aggregate shard-fragment stats into one logical collection view
    (value histograms merge too, when every part carries them)."""
    tags: dict[str, TagStat] = {}
    for part in parts:
        for name, stat in part.tags.items():
            existing = tags.get(name)
            tags[name] = stat if existing is None else existing.merged(stat)
    values: dict[str, ValueHistogram] | None = None
    if parts and all(part.values is not None for part in parts):
        values = {}
        for part in parts:
            assert part.values is not None
            for key, histogram in part.values.items():
                existing_hist = values.get(key)
                values[key] = (histogram if existing_hist is None
                               else existing_hist.merged(histogram))
    return DocumentStats(
        uri=uri,
        serialized_bytes=sum(p.serialized_bytes for p in parts),
        nodes=sum(p.nodes for p in parts),
        elements=sum(p.elements for p in parts),
        tags=tags,
        values=values,
        column_bytes=sum(p.column_bytes for p in parts),
    )


class StatsCatalog:
    """Lazily computed, store-invalidated document statistics.

    Thread-safe; shared by one federation's planner across all
    concurrent queries. ``version()`` is woven into the plan-cache key.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, str], DocumentStats] = {}
        self._collection_keys: set[tuple[str, str]] = set()
        self._version = 0
        self._values_version = 0
        self._federation: "Federation | None" = None
        self._attached: set[str] = set()

    # -- lifecycle ----------------------------------------------------------

    def attach(self, federation: "Federation") -> None:
        """Register invalidation listeners on every peer (idempotent;
        call again after adding peers, as the planner does)."""
        self._federation = federation
        for name, peer in list(federation.peers.items()):
            with self._lock:
                if name in self._attached:
                    continue
                self._attached.add(name)
            peer.on_store(self._invalidate)

    def version(self) -> int:
        """Bumped by every invalidation (a stored document, anywhere)."""
        with self._lock:
            return self._version

    def values_version(self) -> int:
        """Bumped whenever a document's value histograms become newly
        available (a ``with_values`` request upgrading a value-less
        entry). Part of the plan-cache key: a plan priced with default
        selectivities before histograms were built must be re-planned
        once they exist."""
        with self._lock:
            return self._values_version

    def _invalidate(self, peer_name: str, local_name: str) -> None:
        with self._lock:
            stale = [key for key in self._stats
                     if key[0] == peer_name or key in self._collection_keys]
            for key in stale:
                self._stats.pop(key, None)
                self._collection_keys.discard(key)
            self._version += 1

    # -- lookups ------------------------------------------------------------

    def document_stats(self, host: str, local_name: str,
                       with_values: bool = False) -> DocumentStats | None:
        """Stats for ``host/local_name``; None when the document (or
        the host) does not exist. ``host`` may be a cluster collection
        virtual name, in which case shard-fragment stats are merged.

        ``with_values`` additionally demands the value-histogram table;
        a cached value-less entry is upgraded in place (and
        ``values_version`` bumped) rather than served as-is.
        """
        key = (host, local_name)
        with self._lock:
            cached = self._stats.get(key)
        if cached is not None and (not with_values
                                   or cached.values is not None):
            return cached
        federation = self._federation
        if federation is None:
            return None
        spec = federation.collection(host)
        if spec is not None:
            stats = self._collection_stats(federation, spec, local_name,
                                           with_values)
            is_collection = True
        else:
            stats = self._peer_stats(federation, host, local_name,
                                     with_values)
            is_collection = False
        if stats is None:
            return None
        with self._lock:
            previous = self._stats.get(key)
            if previous is not None and (not with_values
                                         or previous.values is not None):
                return previous          # racing compute finished first
            self._stats[key] = stats
            if is_collection:
                self._collection_keys.add(key)
            if with_values:
                self._values_version += 1
            return stats

    def _peer_stats(self, federation: "Federation", host: str,
                    local_name: str,
                    with_values: bool = False) -> DocumentStats | None:
        peer = federation.peers.get(host)
        if peer is None:
            return None
        document = peer.documents.get(local_name)
        if document is None:
            return None
        # Serialising (memoized on the document) records the per-node
        # spans compute_document_stats reads: byte statistics come free
        # from the serializer cache instead of a second walk, and the
        # UTF-8 length is memoized alongside the text.
        peer.serialized(local_name)
        return compute_document_stats(
            document, uri=f"xrpc://{host}/{local_name}",
            serialized_bytes=serialized_byte_length(document),
            with_values=with_values)

    def _collection_stats(self, federation: "Federation", spec,
                          local_name: str,
                          with_values: bool = False) -> DocumentStats | None:
        if local_name != spec.document:
            return None
        parts: list[DocumentStats] = []
        for shard in spec.shards:
            part = None
            for replica in shard.replicas:
                part = self._peer_stats(federation, replica,
                                        shard.local_name, with_values)
                if part is not None:
                    break
            if part is None:
                return None
            parts.append(part)
        return merge_document_stats(
            parts, uri=f"xrpc://{spec.name}/{local_name}")

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "version": self._version,
                "values_version": self._values_version,
                "documents": {
                    f"{host}/{name}": {
                        "serialized_bytes": stats.serialized_bytes,
                        "column_bytes": stats.column_bytes,
                        "elements": stats.elements,
                        "nodes": stats.nodes,
                    }
                    for (host, name), stats in sorted(self._stats.items())
                },
            }
