"""Per-peer document statistics feeding the cost-based planner.

A :class:`DocumentStats` summarises one stored document: its exact
serialised size, node counts, and a per-tag histogram carrying, for
every element name, how many instances exist and how many serialised
bytes their subtrees cover. Attribute values are tracked under
``@name`` keys and text nodes under ``#text``, so the estimator can
price projections ("only ``person/@id`` comes back") and atomisations
("``data($x)`` keeps the text") without touching the documents again.

The :class:`StatsCatalog` computes stats lazily per ``(host, name)``
and invalidates them through the same ``Peer.on_store`` hook the
runtime's result cache uses; a *collection* host (cluster catalog
virtual name) aggregates its shard fragments' stats. ``version()``
bumps on every invalidation — it is part of the planner's plan-cache
key, so a re-stored document can never be planned against stale
statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.xmldb.node import NodeKind
from repro.xmldb.serializer import serialized_byte_length, subtree_spans

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation
    from repro.xmldb.document import Document


@dataclass(frozen=True)
class TagStat:
    """One histogram bucket: instances of a tag and the serialised
    bytes their subtrees cover (for ``@attr`` buckets, the value
    bytes; for ``#text``, the character data bytes)."""

    count: int = 0
    subtree_bytes: int = 0

    @property
    def avg_bytes(self) -> float:
        return self.subtree_bytes / self.count if self.count else 0.0

    def merged(self, other: "TagStat") -> "TagStat":
        return TagStat(self.count + other.count,
                       self.subtree_bytes + other.subtree_bytes)


@dataclass(frozen=True)
class DocumentStats:
    """Summary of one document (or an aggregated sharded collection)."""

    uri: str
    serialized_bytes: int        # exact length of the serialised text
    nodes: int                   # all stored nodes (incl. attributes)
    elements: int                # element nodes only
    tags: Mapping[str, TagStat]  # name / "@name" / "#text" buckets

    def tag(self, name: str) -> TagStat | None:
        return self.tags.get(name)

    @property
    def avg_element_bytes(self) -> float:
        return (self.serialized_bytes / self.elements
                if self.elements else 0.0)


def compute_document_stats(document: "Document", uri: str,
                           serialized_bytes: int | None = None
                           ) -> DocumentStats:
    """One O(nodes) pass over the pre/size arrays.

    When the document carries a memoized serialisation (see
    :func:`repro.xmldb.serializer.subtree_spans`), element subtree
    byte figures are *exact* — read off the recorded spans instead of
    approximated; the catalog path always hits this because it
    serialises the document (memoized) for the exact total first.
    Without spans, per-node markup bytes are approximated (tags,
    attribute syntax, text lengths) and then scaled so their total
    matches the exact serialised length when the caller provides it —
    subtree byte figures stay mutually consistent and sum to the true
    wire size either way.
    """
    kinds = document.kinds
    names = document.names
    values = document.values
    sizes = document.sizes
    count = len(kinds)

    spans = subtree_spans(document)
    if spans is not None:
        starts, ends = spans
        total_chars = ends[0] - starts[0]
        elements = sum(1 for kind in kinds if kind == NodeKind.ELEMENT)
        approx_total = total_chars
        scale = 1.0
        if serialized_bytes is not None and total_chars > 0:
            # Spans are character offsets; rescale to the UTF-8 total.
            scale = serialized_bytes / total_chars

        def element_subtree(pre: int) -> int:
            return ends[pre] - starts[pre]
    else:
        own = [0] * count
        elements = 0
        for pre in range(count):
            kind = kinds[pre]
            if kind == NodeKind.ELEMENT:
                # <name>...</name> or <name/>
                own[pre] = 2 * len(names[pre]) + 5
                elements += 1
            elif kind == NodeKind.ATTRIBUTE:
                own[pre] = len(names[pre]) + len(values[pre]) + 4  # name="v"
            elif kind == NodeKind.TEXT:
                own[pre] = len(values[pre])
            elif kind == NodeKind.COMMENT:
                own[pre] = len(values[pre]) + 7                    # <!-- -->
            elif kind == NodeKind.PROCESSING_INSTRUCTION:
                own[pre] = len(names[pre]) + len(values[pre]) + 5  # <? ?>
        approx_total = sum(own)
        scale = 1.0
        if serialized_bytes is not None and approx_total > 0:
            scale = serialized_bytes / approx_total

        prefix = [0] * (count + 1)
        for pre in range(count):
            prefix[pre + 1] = prefix[pre] + own[pre]

        def element_subtree(pre: int) -> int:
            return prefix[pre + sizes[pre] + 1] - prefix[pre]

    counts: dict[str, int] = {}
    byte_totals: dict[str, int] = {}
    for pre in range(count):
        kind = kinds[pre]
        if kind == NodeKind.ELEMENT:
            key = names[pre]
            subtree = element_subtree(pre)
        elif kind == NodeKind.ATTRIBUTE:
            key = "@" + names[pre]
            subtree = len(values[pre])
        elif kind == NodeKind.TEXT:
            key = "#text"
            subtree = len(values[pre])
        else:
            continue
        counts[key] = counts.get(key, 0) + 1
        byte_totals[key] = byte_totals.get(key, 0) + subtree

    tags = {
        key: TagStat(counts[key], int(byte_totals[key] * scale))
        for key in counts
    }
    total = (serialized_bytes if serialized_bytes is not None
             else approx_total)
    return DocumentStats(uri=uri, serialized_bytes=total, nodes=count,
                         elements=elements, tags=tags)


def merge_document_stats(parts: list[DocumentStats],
                         uri: str) -> DocumentStats:
    """Aggregate shard-fragment stats into one logical collection view."""
    tags: dict[str, TagStat] = {}
    for part in parts:
        for name, stat in part.tags.items():
            existing = tags.get(name)
            tags[name] = stat if existing is None else existing.merged(stat)
    return DocumentStats(
        uri=uri,
        serialized_bytes=sum(p.serialized_bytes for p in parts),
        nodes=sum(p.nodes for p in parts),
        elements=sum(p.elements for p in parts),
        tags=tags,
    )


class StatsCatalog:
    """Lazily computed, store-invalidated document statistics.

    Thread-safe; shared by one federation's planner across all
    concurrent queries. ``version()`` is woven into the plan-cache key.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, str], DocumentStats] = {}
        self._collection_keys: set[tuple[str, str]] = set()
        self._version = 0
        self._federation: "Federation | None" = None
        self._attached: set[str] = set()

    # -- lifecycle ----------------------------------------------------------

    def attach(self, federation: "Federation") -> None:
        """Register invalidation listeners on every peer (idempotent;
        call again after adding peers, as the planner does)."""
        self._federation = federation
        for name, peer in list(federation.peers.items()):
            with self._lock:
                if name in self._attached:
                    continue
                self._attached.add(name)
            peer.on_store(self._invalidate)

    def version(self) -> int:
        """Bumped by every invalidation (a stored document, anywhere)."""
        with self._lock:
            return self._version

    def _invalidate(self, peer_name: str, local_name: str) -> None:
        with self._lock:
            stale = [key for key in self._stats
                     if key[0] == peer_name or key in self._collection_keys]
            for key in stale:
                self._stats.pop(key, None)
                self._collection_keys.discard(key)
            self._version += 1

    # -- lookups ------------------------------------------------------------

    def document_stats(self, host: str,
                       local_name: str) -> DocumentStats | None:
        """Stats for ``host/local_name``; None when the document (or
        the host) does not exist. ``host`` may be a cluster collection
        virtual name, in which case shard-fragment stats are merged."""
        key = (host, local_name)
        with self._lock:
            cached = self._stats.get(key)
        if cached is not None:
            return cached
        federation = self._federation
        if federation is None:
            return None
        spec = federation.collection(host)
        if spec is not None:
            stats = self._collection_stats(federation, spec, local_name)
            is_collection = True
        else:
            stats = self._peer_stats(federation, host, local_name)
            is_collection = False
        if stats is None:
            return None
        with self._lock:
            self._stats.setdefault(key, stats)
            if is_collection:
                self._collection_keys.add(key)
            return self._stats[key]

    def _peer_stats(self, federation: "Federation", host: str,
                    local_name: str) -> DocumentStats | None:
        peer = federation.peers.get(host)
        if peer is None:
            return None
        document = peer.documents.get(local_name)
        if document is None:
            return None
        # Serialising (memoized on the document) records the per-node
        # spans compute_document_stats reads: byte statistics come free
        # from the serializer cache instead of a second walk, and the
        # UTF-8 length is memoized alongside the text.
        peer.serialized(local_name)
        return compute_document_stats(
            document, uri=f"xrpc://{host}/{local_name}",
            serialized_bytes=serialized_byte_length(document))

    def _collection_stats(self, federation: "Federation", spec,
                          local_name: str) -> DocumentStats | None:
        if local_name != spec.document:
            return None
        parts: list[DocumentStats] = []
        for shard in spec.shards:
            part = None
            for replica in shard.replicas:
                part = self._peer_stats(federation, replica,
                                        shard.local_name)
                if part is not None:
                    break
            if part is None:
                return None
            parts.append(part)
        return merge_document_stats(
            parts, uri=f"xrpc://{spec.name}/{local_name}")

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "version": self._version,
                "documents": {
                    f"{host}/{name}": {
                        "serialized_bytes": stats.serialized_bytes,
                        "elements": stats.elements,
                        "nodes": stats.nodes,
                    }
                    for (host, name), stats in sorted(self._stats.items())
                },
            }
