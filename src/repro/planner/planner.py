"""Candidate enumeration, the plan cache, and the pick.

``Federation.run(strategy="auto")`` lands here. The planner:

1. runs the decomposition *analysis* once per strategy
   (:func:`~repro.decompose.prepare`), giving every strategy's
   candidate insertion points;
2. realises one executable candidate per fixed strategy **plus one per
   proper subset of insertion points** — dropping a point means its
   document data-ships instead, so the candidate space contains mixed
   plans that ship one tiny document while projecting another;
3. prices every candidate with the
   :class:`~repro.planner.estimator.PlanEstimator` and picks the
   cheapest (deterministic tie-break: enumeration order, which ranks
   the paper's strategies data-shipping → by-value → by-fragment →
   by-projection → mixed);
4. caches the pick keyed by (query digest, origin, run options,
   cluster-catalog epoch, statistics version, calibration generation)
   — any of those moving replans;
5. after the run, feeds observed bytes/seconds back into the
   :class:`~repro.planner.feedback.CalibrationBook`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.decompose import (
    DecompositionResult, Strategy, decompose, prepare, realize,
)
from repro.net.stats import PlanReport
from repro.obs.trace import child_span
from repro.planner.estimator import PlanEstimator
from repro.planner.feedback import CalibrationBook
from repro.planner.ir import BulkBatch, PhysicalPlan, ScatterGather, XrpcCall
from repro.planner.stats import StatsCatalog
from repro.xquery.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation, RunResult

#: Site-subset enumeration is exponential; beyond this many insertion
#: points only the all-points candidate is priced per strategy.
MAX_SUBSET_POINTS = 4

#: Enumeration order = tie-break order (cheapest wins; on a dead tie
#: the paper's simpler strategy does).
_DECOMPOSING = (Strategy.BY_VALUE, Strategy.BY_FRAGMENT,
                Strategy.BY_PROJECTION)


@dataclass
class PlannedQuery:
    """The planner's answer for one query: what to execute and why.

    ``report`` is this call's own (immutable) record — cache hits get
    a fresh ``from_cache=True`` copy rather than mutating the shared
    cached plan, which another thread may be executing right now.
    """

    decomposition: DecompositionResult
    plan: PhysicalPlan
    report: "PlanReport"
    from_cache: bool = False


class QueryPlanner:
    """Cost-based strategy selection for one federation."""

    def __init__(self, federation: "Federation",
                 stats_catalog: StatsCatalog | None = None,
                 calibration: CalibrationBook | None = None,
                 cache_size: int = 128):
        self.federation = federation
        self.stats = stats_catalog if stats_catalog is not None \
            else StatsCatalog()
        self.calibration = calibration if calibration is not None \
            else CalibrationBook()
        self.stats.attach(federation)
        self.estimator = PlanEstimator(federation, self.stats,
                                       self.calibration)
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, PlannedQuery] = OrderedDict()
        self._lock = threading.Lock()
        self._plans_enumerated = 0
        self._cache_hits = 0

    # -- planning -----------------------------------------------------------

    def plan(self, query: str, at: str,
             strategy: "Strategy | str" = "auto",
             bulk_rpc: bool = True, code_motion: bool = True,
             let_sinking: bool = True,
             transport=None) -> PlannedQuery:
        """Choose (or recall) the physical plan for ``query``
        originating at ``at``.

        ``strategy="auto"`` enumerates and picks the cheapest
        candidate; a fixed strategy yields its single lowered plan.
        Both are cached under the same keys, so a multi-tenant sweep
        of identical fixed-strategy queries pays decomposition and
        lowering once, not per run. ``transport`` (the run's, when it
        differs from the federation's) supplies the live replica-load
        signal for scatter queue pricing.
        """
        self.stats.attach(self.federation)
        choice = Strategy.coerce(strategy)
        label = choice.value if isinstance(choice, Strategy) else choice
        key = self._cache_key(query, at, label, bulk_rpc, code_motion,
                              let_sinking)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._cache_hits += 1
        if hit is not None:
            return PlannedQuery(hit.decomposition, hit.plan,
                                report=replace(hit.report,
                                               from_cache=True),
                                from_cache=True)

        if isinstance(choice, Strategy):
            with child_span("decompose", strategy=label):
                decomposition = decompose(parse_query(query), choice,
                                          local_host=at,
                                          code_motion=code_motion,
                                          let_sinking=let_sinking)
            chosen = self.estimator.lower(decomposition, at,
                                          bulk_rpc=bulk_rpc,
                                          transport=transport)
            report = chosen.build_report()
            with self._lock:
                self._plans_enumerated += 1
        else:
            with child_span("enumerate") as enumerate_span:
                candidates = self._enumerate(query, at, bulk_rpc,
                                             code_motion, let_sinking,
                                             transport)
                if enumerate_span is not None:
                    enumerate_span.set(candidates=len(candidates))
            ranked = sorted(
                enumerate(candidates),
                key=lambda pair: (pair[1].estimated_s, pair[0]))
            chosen = ranked[0][1]
            report = chosen.build_report(candidates=tuple(
                (plan.label, plan.estimated_s) for _index, plan in ranked))
        planned = PlannedQuery(chosen.decomposition, chosen, report=report)
        # Re-key after lowering: pricing may have built value
        # histograms (values_version moved), and this plan *did* see
        # them — storing under the post-planning key lets the next run
        # hit, while plans priced before histograms existed stay
        # unreachable and are re-planned.
        key = self._cache_key(query, at, label, bulk_rpc, code_motion,
                              let_sinking)
        with self._lock:
            self._cache[key] = planned
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return planned

    def lower_fixed(self, decomposition: DecompositionResult, at: str,
                    bulk_rpc: bool = True,
                    transport=None) -> PhysicalPlan:
        """The trivial single-candidate plan for an already-decomposed
        query (every run gets a plan report, auto or not). Uncached:
        callers with query text should go through :meth:`plan`."""
        self.stats.attach(self.federation)
        plan = self.estimator.lower(decomposition, at, bulk_rpc=bulk_rpc,
                                    transport=transport)
        plan.build_report()
        return plan

    def _enumerate(self, query: str, at: str, bulk_rpc: bool,
                   code_motion: bool, let_sinking: bool,
                   transport=None) -> list[PhysicalPlan]:
        module = parse_query(query)
        candidates: list[PhysicalPlan] = []

        shipping = prepare(module, Strategy.DATA_SHIPPING, local_host=at,
                           let_sinking=let_sinking)
        candidates.append(self.estimator.lower(
            realize(shipping, code_motion=code_motion), at,
            bulk_rpc=bulk_rpc, transport=transport))

        for strategy in _DECOMPOSING:
            prep = prepare(module, strategy, local_host=at,
                           let_sinking=let_sinking)
            full = realize(prep, code_motion=code_motion)
            candidates.append(self.estimator.lower(
                full, at, bulk_rpc=bulk_rpc, label=strategy.value,
                transport=transport))
            points = prep.plans
            if not 2 <= len(points) <= MAX_SUBSET_POINTS:
                continue
            # Mixed plans: every proper non-empty subset of the
            # strategy's insertion points; a dropped point's document
            # data-ships instead of decomposing.
            for mask in range(1, (1 << len(points)) - 1):
                subset = [point for index, point in enumerate(points)
                          if mask & (1 << index)]
                dropped = sorted({point.host
                                  for index, point in enumerate(points)
                                  if not mask & (1 << index)})
                mixed = realize(prep, include=subset,
                                code_motion=code_motion)
                label = f"{strategy.value}+ship[{','.join(dropped)}]"
                candidates.append(self.estimator.lower(
                    mixed, at, bulk_rpc=bulk_rpc, label=label,
                    transport=transport))
        with self._lock:
            self._plans_enumerated += len(candidates)
        return candidates

    def _cache_key(self, query: str, at: str, label: str, bulk_rpc: bool,
                   code_motion: bool, let_sinking: bool) -> tuple:
        digest = hashlib.sha256(query.encode()).hexdigest()
        catalog = self.federation.catalog
        epoch = catalog.epoch() if catalog is not None else -1
        # values_version tracks value-histogram *availability*: a plan
        # priced with default selectivities before any histogram was
        # built must not be replayed once histograms exist.
        return (digest, at, label, bulk_rpc, code_motion, let_sinking,
                epoch, self.stats.version(), self.stats.values_version(),
                self.calibration.generation())

    # -- adaptive feedback --------------------------------------------------

    def observe(self, plan: PhysicalPlan, result: "RunResult") -> None:
        """Compare ``plan``'s estimates with the observed
        :class:`~repro.net.stats.RunStats` and nudge the calibration
        factors. Runs served (partly) from the result cache are
        skipped — their wire truth is not the plan's doing."""
        stats = result.stats
        if stats.cache_hits > 0:
            return
        monitor = getattr(self.federation, "monitor", None)
        generation_before = (self.calibration.generation()
                             if monitor is not None else 0)

        # Message bytes, per destination: MessageLog carries the
        # observed per-peer truth; collection sites also answer for
        # their replica peers.
        est_by_dest: dict[str, tuple[float, str]] = {}

        def note(call: XrpcCall) -> None:
            total = call.request_bytes + call.response_bytes
            previous = est_by_dest.get(call.dest)
            combined = total + (previous[0] if previous else 0.0)
            est_by_dest[call.dest] = (combined, call.semantics)
            spec = self.federation.collection(call.dest)
            if spec is not None:
                for replica in spec.replica_peers:
                    est_by_dest.setdefault(
                        replica, (combined / max(spec.shard_count, 1),
                                  call.semantics))

        for op in plan.ops:
            if isinstance(op, XrpcCall):
                note(op)
            elif isinstance(op, (BulkBatch, ScatterGather)):
                note(op.call)

        observed_by_dest: dict[str, int] = {}
        for message in result.messages:
            observed_by_dest[message.dest] = (
                observed_by_dest.get(message.dest, 0)
                + message.request_bytes + message.response_bytes)
        for dest, observed in observed_by_dest.items():
            entry = est_by_dest.get(dest)
            if entry is None:
                continue
            estimated, semantics = entry
            self.calibration.observe("msg", dest, semantics,
                                     estimated, float(observed))

        # Shipped document bytes: RunStats only has the total, so the
        # observed/estimated ratio is apportioned uniformly across the
        # plan's ship operators — each owner still gets its own factor
        # (multi-owner plans, e.g. the Figure 7-9 semijoin, included).
        est_docs = sum(op.vector.document_bytes for op in plan.ops)
        if est_docs > 0.0 and stats.document_bytes > 0:
            ratio = stats.document_bytes / est_docs
            for op in plan.ops:
                if getattr(op, "owner", None) is None:
                    continue
                share = op.vector.document_bytes
                if share > 0.0:
                    self.calibration.observe("doc", op.owner, "",
                                             share, share * ratio)

        # Execution seconds, attributed to the originator.
        est_exec = (plan.vector.local_exec_s + plan.vector.remote_exec_s)
        observed_exec = stats.times.local_exec + stats.times.remote_exec
        self.calibration.observe("exec", plan.origin, "",
                                 est_exec, observed_exec)

        if monitor is not None:
            generation = self.calibration.generation()
            if generation != generation_before:
                # A factor drifted past the bump threshold: cached
                # plans priced under the old factors are now stale.
                monitor.events.emit(
                    "calibration_bump",
                    f"calibration generation -> {generation} "
                    f"(plan cache keys rotate)",
                    severity="info", generation=generation)

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "cached_plans": len(self._cache),
                "cache_hits": self._cache_hits,
                "plans_enumerated": self._plans_enumerated,
                "calibration": self.calibration.snapshot(),
                "stats": self.stats.snapshot(),
            }
