"""The physical-plan IR: typed operators the planner prices and the
execution layer consults.

A :class:`PhysicalPlan` is the lowered form of one
:class:`~repro.decompose.DecompositionResult`: every remote
interaction the rewritten module will perform becomes a typed operator
— :class:`XrpcCall` for a decomposed call site (wrapped in
:class:`BulkBatch` when Bulk RPC coalesces its per-binding calls, or
:class:`ScatterGather` when the destination is a sharded collection),
:class:`ShipDocument` for a ``doc()`` reference that data-ships, and
:class:`LocalEval` for the work left at the originator. Each operator
carries the :class:`~repro.net.estimate.CostVector` the estimator
predicted for it; the plan's total prices the candidate.

The run layer reads two things from a plan: the per-site message
semantics (``semantics_for``) — which is what lets one mixed plan ship
a tiny document while projecting a big one — and the
:class:`~repro.net.stats.PlanReport` recorded into ``RunStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decompose import DecompositionResult, Strategy
from repro.net.costmodel import CostModel
from repro.net.estimate import CostVector
from repro.net.stats import PlanReport, RunStats
from repro.obs.explain import ActualsBook, OpAnalysis, PlanAnalysis


def _fmt_bytes(value: float) -> str:
    return f"{value / 1024:.1f}KB" if value >= 1024 else f"{value:.0f}B"


@dataclass
class LocalEval:
    """Evaluation at the originating peer (always present)."""

    at: str
    vector: CostVector = field(default_factory=CostVector)

    def describe(self) -> str:
        return (f"local-eval at {self.at} "
                f"(~{self.vector.local_exec_s * 1e3:.2f}ms exec)")


@dataclass
class ShipDocument:
    """Data shipping: serialise ``owner/local_name`` and shred it at
    ``to`` (the originator, or a remote peer whose shipped body opens
    the document)."""

    owner: str
    local_name: str
    to: str
    document_bytes: int
    shards: int = 0                 # >0 when owner is a sharded collection
    vector: CostVector = field(default_factory=CostVector)

    def describe(self) -> str:
        shards = f" x{self.shards} shards" if self.shards else ""
        return (f"ship-document {self.owner}/{self.local_name} -> "
                f"{self.to}{shards} (~{_fmt_bytes(self.document_bytes)})")


@dataclass
class XrpcCall:
    """One decomposed call site: an XRPC round trip to ``dest`` under
    ``semantics``, with ``calls`` function applications expected."""

    dest: str
    semantics: str
    site_id: int                    # id(xrpc.body): the run-layer key
    calls: float = 1.0
    request_bytes: float = 0.0
    response_bytes: float = 0.0
    vector: CostVector = field(default_factory=CostVector)

    def describe(self) -> str:
        return (f"xrpc-call {self.semantics} -> {self.dest} "
                f"(~{self.calls:.0f} calls, req ~"
                f"{_fmt_bytes(self.request_bytes)}, resp ~"
                f"{_fmt_bytes(self.response_bytes)})")


@dataclass
class BulkBatch:
    """Bulk RPC: the wrapped site's per-binding calls coalesce into a
    single message pair (Section V)."""

    call: XrpcCall

    @property
    def vector(self) -> CostVector:
        return self.call.vector

    def describe(self) -> str:
        return f"bulk-batch [{self.call.describe()}]"


@dataclass
class ScatterGather:
    """The wrapped call site's destination is a sharded collection:
    one round trip per shard, least-loaded replica each."""

    collection: str
    shards: int
    call: XrpcCall

    @property
    def vector(self) -> CostVector:
        return self.call.vector

    def describe(self) -> str:
        return (f"scatter-gather {self.collection} x{self.shards} "
                f"[{self.call.describe()}]")


PlanOp = "LocalEval | ShipDocument | XrpcCall | BulkBatch | ScatterGather"


@dataclass
class PhysicalPlan:
    """One executable candidate: a decomposition plus its priced ops."""

    label: str
    strategy: Strategy
    decomposition: DecompositionResult
    origin: str
    ops: list = field(default_factory=list)
    #: Per-site message semantics, keyed by ``id(xrpc.body)`` — the
    #: handle :class:`~repro.system.federation._Run` has on the wire.
    site_semantics: dict[int, str] = field(default_factory=dict)
    #: Projection specs keyed by ``id(xrpc.body)``, computed once
    #: during lowering (when some site uses by-projection) and reused
    #: by the run layer instead of re-analysing the module per run.
    projection_specs: dict[int, object] = field(default_factory=dict)
    vector: CostVector = field(default_factory=CostVector)
    model: CostModel = field(default_factory=CostModel)
    report: PlanReport | None = None

    @property
    def default_semantics(self) -> str:
        return self.strategy.semantics

    def semantics_for(self, site_id: int) -> str:
        return self.site_semantics.get(site_id, self.default_semantics)

    @property
    def estimated_s(self) -> float:
        return self.vector.total_s(self.model)

    @property
    def estimated_bytes(self) -> int:
        return int(self.vector.wire_bytes)

    def finish(self) -> "PhysicalPlan":
        """Sum the operator vectors into the plan total (call after
        lowering; idempotent via recompute)."""
        total = CostVector()
        for op in self.ops:
            total.add(op.vector)
        self.vector = total
        return self

    def explain(self) -> str:
        """Operator-level rendering for docs, examples and reports."""
        times = self.vector.time(self.model)
        lines = [
            f"plan {self.label}: est {times.total * 1e3:.2f}ms, "
            f"~{_fmt_bytes(self.vector.wire_bytes)} on the wire"
        ]
        for index, op in enumerate(self.ops, start=1):
            op_s = op.vector.total_s(self.model)
            lines.append(f"  {index}. {op.describe()} "
                         f"[est {op_s * 1e3:.2f}ms]")
        return "\n".join(lines)

    def build_report(self, candidates: tuple[tuple[str, float], ...] = (),
                     from_cache: bool = False) -> PlanReport:
        """Attach (and return) the :class:`PlanReport` recorded into
        every run's ``RunStats``."""
        if not candidates:
            candidates = ((self.label, self.estimated_s),)
        self.report = PlanReport(
            strategy=self.label,
            estimated_s=self.estimated_s,
            estimated_bytes=self.estimated_bytes,
            from_cache=from_cache,
            candidates=candidates,
            explain_text=self.explain(),
        )
        return self.report

    def build_analysis(self, actuals: ActualsBook, stats: RunStats,
                       wall_s: float) -> PlanAnalysis:
        """The explain-analyze rows: each operator's estimate next to
        what the run's :class:`~repro.obs.explain.ActualsBook` recorded
        for it (scatter shards alias back to their logical site, so a
        ScatterGather row sums its per-shard round trips)."""
        rows: list[OpAnalysis] = []
        for op in self.ops:
            est_s = op.vector.total_s(self.model)
            est_bytes = op.vector.wire_bytes
            if isinstance(op, LocalEval):
                actual = actuals.local
                est_calls = 0.0
            elif isinstance(op, ShipDocument):
                actual = actuals.ship(op.owner, op.local_name)
                est_calls = float(op.shards or 1)
            else:  # XrpcCall, possibly wrapped in BulkBatch/ScatterGather
                call = op if isinstance(op, XrpcCall) else op.call
                actual = actuals.site(call.site_id)
                est_calls = call.calls
            if actual is None:
                rows.append(OpAnalysis(describe=op.describe(), est_s=est_s,
                                       est_bytes=est_bytes,
                                       est_calls=est_calls))
            else:
                rows.append(OpAnalysis(
                    describe=op.describe(), est_s=est_s,
                    est_bytes=est_bytes, est_calls=est_calls,
                    actual_s=actual.sim_s, actual_bytes=actual.bytes,
                    actual_calls=actual.calls,
                    actual_wall_s=actual.wall_s,
                    cache_hits=actual.cache_hits))
        return PlanAnalysis(
            label=self.label,
            rows=tuple(rows),
            est_total_s=self.estimated_s,
            est_total_bytes=float(self.estimated_bytes),
            actual_total_s=stats.times.total,
            actual_total_bytes=stats.total_transferred_bytes,
            wall_s=wall_s,
        )
