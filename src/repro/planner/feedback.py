"""Adaptive calibration: estimated-vs-observed feedback factors.

Static estimation cannot know a predicate's selectivity or how well a
projection compresses a particular document; the paper's cost flips
(Figures 7-9) hinge on exactly those quantities. The
:class:`CalibrationBook` closes the loop: after every run the planner
divides the observed :class:`~repro.net.stats.RunStats` quantities by
the plan's estimates and nudges per-peer multiplicative factors toward
the truth (geometric damping, so one outlier run cannot whipsaw the
planner). Repeated workloads therefore converge on the genuinely best
strategy even when the first pick was wrong.

Factors are keyed ``(kind, peer, semantics)``:

* ``("msg", dest, semantics)`` — message bytes for call sites at
  ``dest`` under one message semantics;
* ``("doc", owner, "")`` — shipped document bytes from ``owner``;
* ``("exec", origin, "")`` — execution seconds for queries
  originating at ``origin``.

``generation()`` bumps only when some factor has drifted beyond a
hysteresis band since the last bump — it is part of the plan-cache
key, so small wobbles keep cached plans hot while a real mis-estimate
forces a replan.
"""

from __future__ import annotations

import math
import threading

Key = tuple[str, str, str]

#: Damping exponent: factor *= (observed/estimated) ** ALPHA.
ALPHA = 0.5
#: Factors are clamped into [1/LIMIT, LIMIT].
LIMIT = 64.0
#: A factor drifting by more than this ratio since the last generation
#: bump invalidates cached plans.
DRIFT = 1.25


class CalibrationBook:
    """Thread-safe per-peer calibration factors (default 1.0)."""

    def __init__(self, alpha: float = ALPHA, limit: float = LIMIT,
                 drift: float = DRIFT):
        self.alpha = alpha
        self.limit = limit
        self.drift = drift
        self._lock = threading.Lock()
        self._factors: dict[Key, float] = {}
        self._marks: dict[Key, float] = {}   # value at last generation bump
        self._generation = 0
        self._observations = 0

    def factor(self, kind: str, peer: str, semantics: str = "") -> float:
        with self._lock:
            return self._factors.get((kind, peer, semantics), 1.0)

    def generation(self) -> int:
        with self._lock:
            return self._generation

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def observe(self, kind: str, peer: str, semantics: str,
                estimated: float, observed: float) -> None:
        """Nudge one factor toward ``observed / estimated``."""
        if estimated <= 0.0 or observed <= 0.0:
            return
        ratio = observed / estimated
        with self._lock:
            key = (kind, peer, semantics)
            current = self._factors.get(key, 1.0)
            updated = current * math.pow(ratio, self.alpha)
            updated = min(max(updated, 1.0 / self.limit), self.limit)
            self._factors[key] = updated
            self._observations += 1
            mark = self._marks.get(key, 1.0)
            drifted = (updated / mark if updated >= mark
                       else mark / updated)
            if drifted > self.drift:
                self._generation += 1
                self._marks[key] = updated

    def snapshot(self) -> dict[str, float]:
        """Factors keyed ``"kind:peer:semantics"`` (for tests, examples
        and ``BENCH_planner.json``)."""
        with self._lock:
            return {
                ":".join(part for part in key): round(value, 6)
                for key, value in sorted(self._factors.items())
            }
