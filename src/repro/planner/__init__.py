"""The cost-based federated query planner.

The seed made the caller pick one of the paper's four execution
strategies per query; this package closes the loop the ROADMAP calls
for: it *enumerates* physical plans (one per strategy, plus mixed
plans that ship some documents while decomposing others), *prices*
them with the calibrated cost model against live document statistics
and cluster topology, and *adapts* by comparing every run's estimate
with its observed :class:`~repro.net.stats.RunStats`.

Modules:

* :mod:`repro.planner.stats` — per-peer document statistics
  (:class:`StatsCatalog`), invalidated by ``Peer.on_store``;
* :mod:`repro.planner.ir` — the typed physical-plan IR
  (:class:`PhysicalPlan` and its operators);
* :mod:`repro.planner.estimator` — lowering a decomposition into a
  priced plan (:class:`PlanEstimator`);
* :mod:`repro.planner.feedback` — per-peer calibration factors
  (:class:`CalibrationBook`);
* :mod:`repro.planner.planner` — candidate enumeration, the plan
  cache, and the pick (:class:`QueryPlanner`).
"""

from repro.planner.estimator import PlanEstimator
from repro.planner.feedback import CalibrationBook
from repro.planner.ir import (
    BulkBatch, LocalEval, PhysicalPlan, ScatterGather, ShipDocument,
    XrpcCall,
)
from repro.planner.planner import PlannedQuery, QueryPlanner
from repro.planner.stats import DocumentStats, StatsCatalog, TagStat

__all__ = [
    "BulkBatch", "CalibrationBook", "DocumentStats", "LocalEval",
    "PhysicalPlan", "PlanEstimator", "PlannedQuery", "QueryPlanner",
    "ScatterGather", "ShipDocument", "StatsCatalog", "TagStat", "XrpcCall",
]
