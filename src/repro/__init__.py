"""repro — Efficient Distribution of Full-Fledged XQuery (ICDE 2009).

A from-scratch reproduction of Zhang, Tang & Boncz's XRPC query
decomposition system: an XQuery engine over a pre/size/level XML store,
the d-graph decomposition framework with the conservative (pass-by-
value), pass-by-fragment and pass-by-projection strategies, runtime XML
projection, and a simulated peer network with byte/time accounting.

Quickstart::

    from repro import Federation, Strategy

    fed = Federation()
    fed.add_peer("peer1").store("d.xml", "<people><p>Ann</p></people>")
    fed.add_peer("local")
    result = fed.run('doc("xrpc://peer1/d.xml")/child::people/child::p',
                     at="local", strategy=Strategy.BY_FRAGMENT)
    print(result.stats.summary())
"""

from repro.cluster import (ClusterCatalog, CollectionSpec,
                           create_sharded_collection)
from repro.decompose import AUTO, Strategy, decompose
from repro.net.costmodel import CostModel
from repro.net.estimate import CostVector
from repro.net.stats import PlanReport, RunStats, TimeBreakdown
from repro.obs import (MetricsRegistry, Span, Tracer, dump_chrome_trace,
                       dump_trace, render_tree)
from repro.planner import (CalibrationBook, PhysicalPlan, QueryPlanner,
                           StatsCatalog)
from repro.runtime import (FederationEngine, LoopbackTransport, ResultCache,
                           SimulatedTransport)
from repro.system.federation import Federation, Peer, RunResult
from repro.xmldb import Document, Node, parse_document, parse_fragment
from repro.xquery import Evaluator, parse_query, pretty
from repro.xquery.xdm import sequences_deep_equal, serialize_sequence

__version__ = "1.0.0"

__all__ = [
    "Federation", "Peer", "RunResult",
    "ClusterCatalog", "CollectionSpec", "create_sharded_collection",
    "AUTO", "Strategy", "decompose",
    "CostModel", "CostVector", "PlanReport", "RunStats", "TimeBreakdown",
    "MetricsRegistry", "Span", "Tracer",
    "dump_trace", "dump_chrome_trace", "render_tree",
    "CalibrationBook", "PhysicalPlan", "QueryPlanner", "StatsCatalog",
    "FederationEngine", "ResultCache",
    "LoopbackTransport", "SimulatedTransport",
    "Document", "Node", "parse_document", "parse_fragment",
    "Evaluator", "parse_query", "pretty",
    "sequences_deep_equal", "serialize_sequence",
    "__version__",
]
