"""Load-aware rebalancing: scoring peers and shards, planning moves.

PR 9's repair loop restores *replication*; this module restores
*balance*. It closes the remaining half of the elastic-operations
story: a hot shard can split while serving traffic, a loaded peer can
shed replicas onto a cooler one, and a peer can drain to empty for a
planned decommission — all behind the catalog's epoch machinery, so
in-flight scatters only ever see the old or the new placement.

Two pieces live here:

- :class:`LoadScorer` — **the** load-aware scoring function, shared by
  the repair engine's target selection and the rebalancer's planning.
  It folds every real signal the cluster already emits into one
  :class:`PeerScore` per peer: fragment bytes from the planner's
  :class:`~repro.planner.stats.StatsCatalog` (serialized-size exact,
  memoized), live in-flight exchanges and cumulative served bytes from
  the transport, the fleet monitor's :class:`HealthTracker` standing,
  and the catalog's down/draining marks. ``rank()`` orders placement
  candidates coolest-first.

- :class:`Rebalancer` — the control loop. ``plan()`` reads the
  router's per-shard serve counters (``scatter_shard_serves_total``,
  labeled by shard *local name* so identity survives split
  renumbering) as heat deltas since the previous planning pass and
  emits migration plans: :class:`SplitPlan` when one shard absorbs
  more than ``hot_share`` of a collection's traffic, :class:`MovePlan`
  when the hottest peer carries more than ``spread_factor`` times the
  mean load. ``drain()``/``undrain()`` run planned decommissions.
  Execution is delegated to
  :class:`~repro.cluster.migrate.MigrationExecutor`, which owns the
  staged copy → verify → cutover → retire protocol and its
  rollback/retry discipline.

Everything is deterministic given a deterministic workload: scoring
reads point-in-time snapshots, ties break on names, and the chaos
harness's ``chaos_split``/``chaos_move`` picks use cumulative heat so
a replayed schedule reshapes the cluster identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cluster.catalog import ClusterCatalog, ClusterError
from repro.cluster.membership import ALIVE, DEAD, EVICTED

__all__ = [
    "PeerScore", "LoadScorer", "MovePlan", "SplitPlan", "DrainPlan",
    "Rebalancer",
]

#: One in-flight exchange weighs like this many resident fragment
#: bytes — it represents work actively squatting on the peer now,
#: which matters more than cold data at rest.
INFLIGHT_BYTES_WEIGHT = 65536
#: Cumulative served wire bytes are the long-run traffic signal; they
#: grow without bound, so they enter the score damped.
SERVED_BYTES_WEIGHT = 0.25


@dataclass(frozen=True)
class PeerScore:
    """One peer's standing in the placement order."""

    peer: str
    alive: bool          # usable and membership-ALIVE
    draining: bool       # marked for decommission: never a target
    healthy: bool        # fleet-monitor health standing (True if none)
    fragments: int       # shard replicas placed on this peer
    fragment_bytes: int  # serialized bytes of those fragments
    in_flight: int       # live exchanges on the wire right now
    served_bytes: int    # cumulative wire bytes served

    @property
    def load(self) -> float:
        """The scalar the placement order sorts by."""
        return (self.fragment_bytes
                + INFLIGHT_BYTES_WEIGHT * self.in_flight
                + SERVED_BYTES_WEIGHT * self.served_bytes)


class LoadScorer:
    """The one load-aware scoring function repair and rebalance share.

    Signals are read fresh on every call — a scorer holds no state, so
    two callers (the repair engine picking a re-replication target, the
    rebalancer picking a move destination) always agree on the same
    cluster view at the same instant.
    """

    def __init__(self, federation=None, catalog: ClusterCatalog | None = None,
                 membership=None, health=None):
        self.federation = federation
        self.catalog = catalog if catalog is not None else (
            getattr(federation, "catalog", None))
        self.membership = membership if membership is not None else (
            getattr(federation, "membership", None))
        if health is None:
            monitor = getattr(federation, "monitor", None)
            health = getattr(monitor, "health", None)
        self.health = health

    # -- usability (same semantics as RepairEngine._usable) -----------------

    def usable(self, peer: str) -> bool:
        """Not catalog-down and not membership DEAD/EVICTED."""
        if self.catalog is not None and self.catalog.is_down(peer):
            return False
        if self.membership is not None \
                and self.membership.state(peer) in (DEAD, EVICTED):
            return False
        return True

    # -- signals ------------------------------------------------------------

    def _fragment_load(self) -> tuple[dict[str, int], dict[str, int]]:
        """Per-peer placed-fragment count and serialized bytes, from
        the catalog's placements and the planner's statistics."""
        counts: dict[str, int] = {}
        nbytes: dict[str, int] = {}
        if self.catalog is None:
            return counts, nbytes
        stats = getattr(getattr(self.federation, "planner", None),
                        "stats", None)
        for spec in self.catalog.collections():
            for shard in spec.shards:
                for replica in shard.replicas:
                    counts[replica] = counts.get(replica, 0) + 1
                    nbytes[replica] = (
                        nbytes.get(replica, 0)
                        + self._fragment_bytes(stats, replica,
                                               shard.local_name))
        return counts, nbytes

    def _fragment_bytes(self, stats, peer: str, local_name: str) -> int:
        if stats is not None:
            doc_stats = stats.document_stats(peer, local_name)
            if doc_stats is not None:
                return doc_stats.serialized_bytes
        peer_obj = (self.federation.peers.get(peer)
                    if self.federation is not None else None)
        if peer_obj is None or local_name not in peer_obj.documents:
            return 0
        return len(peer_obj.serialized(local_name).encode())

    def snapshot(self, peers: list[str] | None = None
                 ) -> dict[str, PeerScore]:
        """A point-in-time :class:`PeerScore` per peer (default: every
        federation peer, sorted)."""
        if peers is None:
            if self.federation is None:
                raise ClusterError("load scorer has no federation")
            peers = sorted(self.federation.peers)
        counts, frag_bytes = self._fragment_load()
        transport = getattr(self.federation, "transport", None)
        loads = transport.peer_loads() if transport is not None else {}
        draining = (self.catalog.draining_peers()
                    if self.catalog is not None else frozenset())
        scores: dict[str, PeerScore] = {}
        for name in peers:
            in_flight, served = loads.get(name, (0, 0))
            alive = self.usable(name) and (
                self.membership is None
                or self.membership.state(name) == ALIVE)
            healthy = self.health is None or self.health.healthy(name)
            scores[name] = PeerScore(
                peer=name, alive=alive, draining=name in draining,
                healthy=healthy, fragments=counts.get(name, 0),
                fragment_bytes=frag_bytes.get(name, 0),
                in_flight=in_flight, served_bytes=served)
        return scores

    def rank(self, exclude=(), peers: list[str] | None = None
             ) -> list[str]:
        """Placement targets, coolest first: alive, non-draining peers
        outside ``exclude``, healthy before demoted, then ascending
        load, fragment count, and name (the deterministic tie-break)."""
        excluded = set(exclude)
        candidates = [s for name, s in self.snapshot(peers).items()
                      if name not in excluded and s.alive
                      and not s.draining]
        candidates.sort(key=lambda s: (0 if s.healthy else 1, s.load,
                                       s.fragments, s.peer))
        return [s.peer for s in candidates]


# ---------------------------------------------------------------------------
# Migration plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MovePlan:
    """Move one shard replica ``source`` → ``target`` (copy, verify,
    cut over, retire the source copy)."""

    collection: str
    shard_index: int
    source: str
    target: str
    op = "move"


@dataclass(frozen=True)
class SplitPlan:
    """Split one shard at a member boundary: members ``0..at_member-1``
    form the first child shard, the rest the second."""

    collection: str
    shard_index: int
    at_member: int
    op = "split"


@dataclass(frozen=True)
class DrainPlan:
    """Decommission ``peer``: migrate every replica it holds away,
    then leave it empty and excluded from new placements."""

    peer: str
    op = "drain"


# ---------------------------------------------------------------------------
# The control loop
# ---------------------------------------------------------------------------


class Rebalancer:
    """Scores the fleet, emits migration plans, and executes them.

    ``hot_share`` — a shard absorbing more than this fraction of its
    collection's serves (since the last planning pass) is split-hot.
    ``spread_factor`` — a peer carrying more than this multiple of the
    mean alive-peer load sheds its hottest shard. ``min_split_members``
    — both children of a split must hold at least this many members.
    """

    def __init__(self, federation=None, catalog: ClusterCatalog | None = None,
                 membership=None, *, scorer: LoadScorer | None = None,
                 executor=None, events=None, metrics=None,
                 hot_share: float = 0.5, spread_factor: float = 1.5,
                 min_split_members: int = 2, max_plans_per_step: int = 2):
        if not 0.0 < hot_share <= 1.0:
            raise ClusterError(
                f"hot_share {hot_share} must be in (0, 1]")
        if spread_factor < 1.0:
            raise ClusterError(
                f"spread_factor {spread_factor} must be >= 1")
        if min_split_members < 1:
            raise ClusterError(
                f"min_split_members {min_split_members} must be >= 1")
        self.federation = federation
        self.catalog = catalog if catalog is not None else (
            getattr(federation, "catalog", None))
        self.membership = membership if membership is not None else (
            getattr(federation, "membership", None))
        self.events = events
        self.metrics = metrics
        self.hot_share = hot_share
        self.spread_factor = spread_factor
        self.min_split_members = min_split_members
        self.max_plans_per_step = max_plans_per_step
        self.scorer = scorer if scorer is not None else LoadScorer(
            federation, catalog=self.catalog, membership=self.membership)
        self.executor = executor
        self._lock = threading.Lock()
        self._last_heat: dict[tuple, float] = {}
        self._drains = 0
        self._m_plans = None
        self._init_metrics(metrics)

    def _init_metrics(self, metrics) -> None:
        if metrics is None:
            return
        self.metrics = metrics
        self._m_plans = metrics.counter(
            "rebalance_plans_total", "migration plans emitted",
            ("op",))

    # -- wiring ---------------------------------------------------------------

    def attach(self, federation) -> "Rebalancer":
        """Install on ``federation``: adopt its catalog / membership /
        monitor / metrics, build the executor, expose as
        ``federation.rebalancer``."""
        from repro.cluster.migrate import MigrationExecutor
        self.federation = federation
        if self.catalog is None:
            self.catalog = federation.catalog
        if self.membership is None:
            self.membership = getattr(federation, "membership", None)
        monitor = getattr(federation, "monitor", None)
        if self.events is None and monitor is not None:
            self.events = monitor.events
        if self._m_plans is None:
            self._init_metrics(federation.metrics)
        self.scorer = LoadScorer(federation, catalog=self.catalog,
                                 membership=self.membership)
        if self.executor is None:
            self.executor = MigrationExecutor(
                federation, catalog=self.catalog,
                membership=self.membership, scorer=self.scorer,
                events=self.events, metrics=self.metrics)
        federation.rebalancer = self
        return self

    def _require_executor(self):
        if self.executor is None:
            raise ClusterError("rebalancer has no migration executor "
                               "(call attach() first)")
        return self.executor

    # -- heat -----------------------------------------------------------------

    def heat(self) -> dict[tuple[str, str], float]:
        """Cumulative served round trips per ``(collection, shard
        local_name)``, from the router's counters."""
        registry = self.metrics if self.metrics is not None else (
            getattr(self.federation, "metrics", None))
        metric = (registry.get("scatter_shard_serves_total")
                  if registry is not None else None)
        if metric is None:
            return {}
        return {labels: series.value
                for labels, series in metric.series().items()}

    def _heat_delta(self) -> dict[tuple[str, str], float]:
        """Serves per shard since the previous planning pass."""
        current = self.heat()
        with self._lock:
            last, self._last_heat = self._last_heat, current
        return {labels: value - last.get(labels, 0.0)
                for labels, value in current.items()}

    # -- planning -------------------------------------------------------------

    def plan(self) -> list:
        """Migration plans for the current imbalance (may be empty).

        Consumes the heat window: serve counts observed by this call
        will not be re-counted by the next. At most
        ``max_plans_per_step`` plans are returned, splits first (a
        split creates the mobility a later move needs).
        """
        if self.catalog is None:
            raise ClusterError("rebalancer has no catalog")
        delta = self._heat_delta()
        plans: list = []
        plans.extend(self._plan_splits(delta))
        plans.extend(self._plan_moves(delta))
        plans = plans[:self.max_plans_per_step]
        for plan in plans:
            if self._m_plans is not None:
                self._m_plans.labels(plan.op).inc()
            if self.events is not None:
                self.events.emit(
                    "rebalance_planned",
                    f"planned {plan.op}: {plan}",
                    severity="info", op=plan.op)
        return plans

    def _shards_by_heat(self, delta, *, min_members: int):
        """(spec, shard, serves) triples hottest-first, ties broken by
        member count (descending) then names — deterministic."""
        out = []
        for spec in self.catalog.collections():
            for shard in spec.shards:
                if shard.members < min_members:
                    continue
                serves = delta.get((spec.name, shard.local_name), 0.0)
                out.append((spec, shard, serves))
        out.sort(key=lambda t: (-t[2], -t[1].members, t[0].name,
                                t[1].local_name))
        return out

    def _plan_splits(self, delta) -> list[SplitPlan]:
        plans: list[SplitPlan] = []
        totals: dict[str, float] = {}
        for (collection, _), serves in delta.items():
            totals[collection] = totals.get(collection, 0.0) + serves
        for spec, shard, serves in self._shards_by_heat(
                delta, min_members=2 * self.min_split_members):
            total = totals.get(spec.name, 0.0)
            if total <= 0 or serves / total < self.hot_share:
                continue
            plans.append(SplitPlan(spec.name, shard.index,
                                   at_member=shard.members // 2))
        return plans

    def _plan_moves(self, delta) -> list[MovePlan]:
        scores = self.scorer.snapshot()
        alive = [s for s in scores.values() if s.alive and not s.draining]
        if len(alive) < 2:
            return []
        mean_load = sum(s.load for s in alive) / len(alive)
        hot = sorted(alive, key=lambda s: (-s.load, s.peer))
        plans: list[MovePlan] = []
        for peer_score in hot:
            if mean_load <= 0 \
                    or peer_score.load <= self.spread_factor * mean_load:
                break
            plan = self._move_off(peer_score.peer, delta)
            if plan is not None:
                plans.append(plan)
        return plans

    def _move_off(self, source: str, delta) -> MovePlan | None:
        """The hottest shard on ``source`` that has somewhere cooler to
        go (None when every candidate placement is blocked)."""
        for spec, shard, _serves in self._shards_by_heat(delta,
                                                         min_members=0):
            if source not in shard.replicas:
                continue
            targets = self.scorer.rank(exclude=set(shard.replicas))
            if not targets:
                continue
            return MovePlan(spec.name, shard.index, source=source,
                            target=targets[0])
        return None

    # -- execution ------------------------------------------------------------

    def step(self) -> int:
        """One control-loop turn: plan, then execute. Returns how many
        migrations completed."""
        executor = self._require_executor()
        return sum(1 for plan in self.plan() if executor.execute(plan))

    def split(self, collection: str, shard_index: int,
              at_member: int | None = None) -> bool:
        """Split one shard explicitly (operator command). ``at_member``
        defaults to the member midpoint."""
        executor = self._require_executor()
        if at_member is None:
            spec = self.catalog.get(collection)
            shard = next((s for s in spec.shards
                          if s.index == shard_index), None)
            if shard is None:
                raise ClusterError(
                    f"collection {collection!r} has no shard "
                    f"{shard_index}")
            at_member = shard.members // 2
        return executor.execute(
            SplitPlan(collection, shard_index, at_member=at_member))

    def move(self, collection: str, shard_index: int, source: str,
             target: str | None = None) -> bool:
        """Move one replica explicitly. ``target`` defaults to the
        coolest peer not already holding the shard."""
        executor = self._require_executor()
        if target is None:
            spec = self.catalog.get(collection)
            shard = next((s for s in spec.shards
                          if s.index == shard_index), None)
            if shard is None:
                raise ClusterError(
                    f"collection {collection!r} has no shard "
                    f"{shard_index}")
            targets = self.scorer.rank(exclude=set(shard.replicas))
            if not targets:
                return False
            target = targets[0]
        return executor.execute(
            MovePlan(collection, shard_index, source=source,
                     target=target))

    def drain(self, peer: str) -> bool:
        """Decommission ``peer``: mark it draining (no new placements),
        then migrate every replica it holds — a guarded retire when the
        shard is already at target without it, a full move otherwise.
        True when the peer ended the call holding no placements."""
        if self.catalog is None:
            raise ClusterError("rebalancer has no catalog")
        executor = self._require_executor()
        self.catalog.set_draining(peer, True)
        with self._lock:
            self._drains += 1
        if self.events is not None:
            self.events.emit("rebalance_drain_started",
                             f"draining peer {peer}", severity="info",
                             peer=peer)
        progressed = True
        while progressed:
            progressed = False
            for spec in self.catalog.collections():
                # Re-read per shard: each cutover rewrites the spec.
                for shard in list(self.catalog.get(spec.name).shards):
                    if peer not in shard.replicas:
                        continue
                    others = [r for r in shard.replicas
                              if r != peer and self.scorer.usable(r)]
                    if len(others) >= spec.target_replication:
                        done = executor.retire_replica(
                            spec.name, shard.index, peer)
                    else:
                        targets = self.scorer.rank(
                            exclude=set(shard.replicas))
                        if not targets:
                            continue
                        done = executor.execute(MovePlan(
                            spec.name, shard.index, source=peer,
                            target=targets[0]))
                    progressed = progressed or done
        remaining = self._placements_on(peer)
        drained = not remaining
        if self.events is not None:
            self.events.emit(
                "rebalance_drain_completed" if drained
                else "rebalance_drain_stalled",
                f"peer {peer} "
                + ("drained to zero placements" if drained else
                   f"still holds {len(remaining)} placements"),
                severity="info" if drained else "warning", peer=peer,
                remaining=len(remaining))
        return drained

    def undrain(self, peer: str) -> None:
        """Return a draining peer to placement eligibility."""
        if self.catalog is None:
            raise ClusterError("rebalancer has no catalog")
        self.catalog.set_draining(peer, False)

    def _placements_on(self, peer: str) -> list[tuple[str, int]]:
        return [(spec.name, shard.index)
                for spec in self.catalog.collections()
                for shard in spec.shards if peer in shard.replicas]

    # -- chaos hooks ----------------------------------------------------------

    def chaos_split(self) -> bool:
        """A deterministic split pick for the chaos harness: the
        cumulatively hottest splittable shard (ties: most members,
        then names). No-op (False) when nothing is splittable."""
        executor = self._require_executor()
        for spec, shard, _serves in self._shards_by_heat(
                self.heat(), min_members=2):
            return executor.execute(SplitPlan(
                spec.name, shard.index, at_member=shard.members // 2))
        if self.events is not None:
            self.events.emit("rebalance_noop",
                             "chaos split: no splittable shard",
                             severity="info", op="split")
        return False

    def chaos_move(self) -> bool:
        """A deterministic move pick for the chaos harness: hottest
        shard (cumulative heat) with a usable non-holder target. No-op
        (False) when every placement is pinned."""
        executor = self._require_executor()
        for spec, shard, _serves in self._shards_by_heat(self.heat(),
                                                         min_members=0):
            sources = [r for r in shard.replicas
                       if self.scorer.usable(r)]
            targets = self.scorer.rank(exclude=set(shard.replicas))
            if not sources or not targets:
                continue
            return executor.execute(MovePlan(
                spec.name, shard.index, source=sources[0],
                target=targets[0]))
        if self.events is not None:
            self.events.emit("rebalance_noop",
                             "chaos move: no movable placement",
                             severity="info", op="move")
        return False

    # -- bookkeeping ----------------------------------------------------------

    def collect(self) -> int:
        """Physically retire tombstoned fragments (safe between
        queries — see :meth:`MigrationExecutor.collect`)."""
        executor = self._require_executor()
        return executor.collect()

    def stats(self) -> dict[str, int]:
        executor_stats = (self.executor.stats()
                          if self.executor is not None else {})
        with self._lock:
            drains = self._drains
        return {"drains": drains, **executor_stats}
