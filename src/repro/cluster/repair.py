"""The repair engine: re-replicating under-replicated shard fragments.

Eviction (``cluster/membership.py``) removes a dead peer from shard
placements; what remains is a cluster serving some shards from fewer
replicas than :attr:`CollectionSpec.target_replication` promises. This
module closes the loop — the hinted-handoff half of the Dynamo-style
story:

1. :meth:`RepairEngine.scan` walks the catalog, counts each shard's
   *usable* replicas (present, not catalog-down, not membership
   dead/evicted) and enqueues one :class:`RepairTask` per
   under-replicated shard into a **bounded** queue (overflow is
   dropped loudly: ``repair_queue_full`` event, ``repair_failed``
   metric — never silent).
2. :meth:`process` drains tasks — sequentially by default (the chaos
   harness's deterministic mode), or with ``parallel=True`` under a
   thread pool capped at ``max_concurrent``. Each task re-checks the
   live spec first (a shard healed by an earlier task, a revived
   replica, or a raced eviction re-resolves to a no-op).
3. One repair copies the fragment over the **existing ship path** —
   ``transport.fetch_document`` at a usable source replica (memoized
   serializer, cost-model charges into the task's private
   :class:`RunStats`), ``Peer.store`` at the chosen target (fewest
   fragments of the collection, then name order) — then registers the
   new replica via ``catalog.replace`` (reason ``"repair"``): one
   epoch bump, and every router sees the new placement.
4. **Cancellation**: the source dying mid-copy surfaces as the ship
   path's own :class:`~repro.errors.NetworkError`; the task is
   abandoned, re-enqueued (up to ``max_attempts``), and the retry
   re-selects source *and* target against the then-current membership
   view.

Each attempt runs inside a ``repair`` span — under the ambient trace
when one exists, else under a private tracer folded into the fleet
monitor's profiler — with the ship charges bound to it, so
``explain(analyze=True)`` and the profiler show repair traffic like
any other wire work. Events: ``repair_started`` / ``repair_completed``
/ ``repair_failed``; metrics: ``repair_*`` series.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace as dc_replace

from repro.cluster.catalog import (
    ClusterCatalog, ClusterError, CollectionSpec, ShardInfo, with_replicas,
)
from repro.cluster.membership import DEAD, EVICTED
from repro.cluster.rebalance import LoadScorer
from repro.errors import NetworkError
from repro.net.stats import RunStats
from repro.obs.trace import Tracer, bind_stats_span, child_span, current_span

__all__ = ["RepairTask", "RepairEngine"]


@dataclass
class RepairTask:
    """One under-replicated shard awaiting re-replication."""

    collection: str
    shard_index: int
    attempts: int = 0

    @property
    def key(self) -> tuple[str, int]:
        return (self.collection, self.shard_index)


class RepairEngine:
    """Restores every shard to its collection's target replication.

    Construct standalone (``RepairEngine(federation, catalog=...)``)
    or wire with :meth:`attach`, which also subscribes to the
    membership tracker: every eviction triggers a scan, and (with
    ``auto_repair``, the default) immediate processing — detect, evict,
    re-replicate, serve, without an operator in the loop.
    """

    def __init__(self, federation=None, catalog: ClusterCatalog | None = None,
                 membership=None, *, max_queue: int = 64,
                 max_concurrent: int = 2, max_attempts: int = 3,
                 auto_repair: bool = True, events=None, metrics=None):
        if max_queue < 1:
            raise ClusterError(f"max_queue {max_queue} must be >= 1")
        if max_concurrent < 1:
            raise ClusterError(
                f"max_concurrent {max_concurrent} must be >= 1")
        if max_attempts < 1:
            raise ClusterError(
                f"max_attempts {max_attempts} must be >= 1")
        self.federation = federation
        self.catalog = catalog if catalog is not None else (
            federation.catalog if federation is not None else None)
        self.membership = membership
        self.max_queue = max_queue
        self.max_concurrent = max_concurrent
        self.max_attempts = max_attempts
        self.auto_repair = auto_repair
        self.events = events
        self._lock = threading.Lock()
        self._queue: deque[RepairTask] = deque()
        self._queued: set[tuple[str, int]] = set()
        self._completed = 0
        self._failed = 0
        self._init_metrics(metrics)

    def _init_metrics(self, metrics) -> None:
        self._m_enqueued = self._m_completed = None
        self._m_failed = self._m_bytes = self._m_depth = None
        if metrics is None:
            return
        self._m_enqueued = metrics.counter(
            "repair_enqueued_total", "repair tasks enqueued",
            ("collection",))
        self._m_completed = metrics.counter(
            "repair_completed_total", "fragments re-replicated",
            ("collection",))
        self._m_failed = metrics.counter(
            "repair_failed_total",
            "repair attempts abandoned (source died, no candidates, "
            "queue overflow)", ("collection",))
        self._m_bytes = metrics.counter(
            "repair_bytes_total", "fragment bytes shipped by repair",
            ("collection",))
        self._m_depth = metrics.gauge(
            "repair_queue_depth", "repair tasks currently queued")

    # -- wiring ---------------------------------------------------------------

    def attach(self, federation) -> "RepairEngine":
        """Install on ``federation``: adopt its catalog / membership /
        monitor event log / metrics registry, expose as
        ``federation.repair``, and subscribe to membership evictions."""
        self.federation = federation
        if self.catalog is None:
            self.catalog = federation.catalog
        if self.membership is None:
            self.membership = getattr(federation, "membership", None)
        monitor = getattr(federation, "monitor", None)
        if self.events is None and monitor is not None:
            self.events = monitor.events
        if self._m_depth is None:
            self._init_metrics(federation.metrics)
        federation.repair = self
        if self.membership is not None:
            self.membership.subscribe(self._on_membership)
        return self

    def _on_membership(self, peer: str, old: str, new_state: str) -> None:
        if new_state != EVICTED:
            return
        self.scan()
        if self.auto_repair:
            self.process()

    # -- queue ----------------------------------------------------------------

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"pending": len(self._queue),
                    "completed": self._completed,
                    "failed": self._failed}

    def scan(self) -> int:
        """Enqueue one task per under-replicated shard; returns how
        many were enqueued (already-queued shards are not duplicated)."""
        if self.catalog is None:
            raise ClusterError("repair engine has no catalog")
        enqueued = 0
        for spec in self.catalog.collections():
            target = spec.target_replication
            for shard in spec.shards:
                usable = [r for r in shard.replicas if self._usable(r)]
                if len(usable) >= target:
                    continue
                if self._enqueue(RepairTask(spec.name, shard.index)):
                    enqueued += 1
        return enqueued

    def _enqueue(self, task: RepairTask) -> bool:
        with self._lock:
            if task.key in self._queued:
                return False
            if len(self._queue) >= self.max_queue:
                overflow = True
            else:
                overflow = False
                self._queue.append(task)
                self._queued.add(task.key)
                depth = len(self._queue)
        if overflow:
            with self._lock:
                self._failed += 1
            if self._m_failed is not None:
                self._m_failed.labels(task.collection).inc()
            if self.events is not None:
                self.events.emit(
                    "repair_queue_full",
                    f"repair queue full ({self.max_queue}); dropping "
                    f"{task.collection}#s{task.shard_index}",
                    severity="error", collection=task.collection,
                    shard=task.shard_index)
            return False
        if self._m_enqueued is not None:
            self._m_enqueued.labels(task.collection).inc()
            self._m_depth.set(depth)
        return True

    def _pop(self) -> RepairTask | None:
        with self._lock:
            if not self._queue:
                return None
            task = self._queue.popleft()
            self._queued.discard(task.key)
            depth = len(self._queue)
        if self._m_depth is not None:
            self._m_depth.set(depth)
        return task

    # -- processing -----------------------------------------------------------

    def process(self, max_tasks: int | None = None,
                parallel: bool = False) -> int:
        """Drain the tasks queued *at call time*; returns how many
        completed a copy. A task that fails and re-enqueues waits for
        the next call — one ``process()`` never chases its own retries.
        Sequential by default (deterministic order); ``parallel=True``
        runs up to ``max_concurrent`` tasks at once."""
        budget = self.pending()
        if max_tasks is not None:
            budget = min(budget, max_tasks)
        if not parallel:
            done = 0
            for _ in range(budget):
                task = self._pop()
                if task is None:
                    break
                if self._repair_one(task):
                    done += 1
            return done
        tasks: list[RepairTask] = []
        for _ in range(budget):
            task = self._pop()
            if task is None:
                break
            tasks.append(task)
        if not tasks:
            return 0
        with ThreadPoolExecutor(
                max_workers=min(self.max_concurrent, len(tasks)),
                thread_name_prefix="cluster-repair") as pool:
            return sum(pool.map(self._repair_one, tasks))

    def run_until_converged(self, max_rounds: int = 8) -> bool:
        """Scan+process until no shard is under-replicated (or nothing
        improves for a round). True when fully replicated."""
        for _ in range(max_rounds):
            if self.scan() == 0 and self.pending() == 0:
                return True
            if self.process() == 0:
                break
        return self.scan() == 0 and self.pending() == 0

    # -- one repair -----------------------------------------------------------

    def _usable(self, peer: str) -> bool:
        if self.catalog is not None and self.catalog.is_down(peer):
            return False
        if self.membership is not None \
                and self.membership.state(peer) in (DEAD, EVICTED):
            return False
        return True

    def _candidates(self, spec: CollectionSpec,
                    shard: ShardInfo) -> list[str]:
        """Target peers not already holding the shard, ranked by the
        load-aware scorer shared with the rebalancer: alive and
        non-draining, healthy before demoted, then coolest first
        (fragment bytes + in-flight + served traffic) — so repair
        stops piling fragments onto an idle-but-already-full peer."""
        if self.federation is None:
            raise ClusterError("repair engine has no federation")
        scorer = LoadScorer(
            self.federation, catalog=self.catalog,
            membership=self.membership,
            health=getattr(getattr(self.federation, "monitor", None),
                           "health", None))
        return scorer.rank(exclude=set(shard.replicas))

    def _repair_one(self, task: RepairTask) -> bool:
        try:
            spec = self.catalog.get(task.collection)
        except ClusterError:
            return False  # collection dropped since the scan
        shard = next((s for s in spec.shards
                      if s.index == task.shard_index), None)
        if shard is None:
            return False
        usable = [r for r in shard.replicas if self._usable(r)]
        if len(usable) >= spec.target_replication:
            return False  # healed since the scan (revival, earlier task)
        if not usable:
            return self._give_up(task, "no live source replica")
        candidates = self._candidates(spec, shard)
        if not candidates:
            return self._give_up(task, "no healthy target peer")
        source, target = usable[0], candidates[0]
        if self.events is not None:
            self.events.emit(
                "repair_started",
                f"re-replicating {task.collection}#s{task.shard_index} "
                f"{source} -> {target} (attempt {task.attempts + 1})",
                severity="info", collection=task.collection,
                shard=task.shard_index, source=source, dest=target)
        try:
            nbytes = self._copy(spec, shard, source, target)
        except NetworkError as exc:
            # The source died (or faulted) mid-copy: cancel this
            # attempt and re-resolve source/target on the retry.
            task.attempts += 1
            if self.events is not None:
                self.events.emit(
                    "repair_failed",
                    f"repair of {task.collection}#s{task.shard_index} "
                    f"from {source} aborted: {type(exc).__name__} "
                    f"(attempt {task.attempts}/{self.max_attempts})",
                    severity="warning", collection=task.collection,
                    shard=task.shard_index, source=source,
                    error=type(exc).__name__)
            if task.attempts < self.max_attempts:
                self._enqueue(task)
            else:
                self._give_up(task, "max attempts exhausted")
            return False
        self._register(task, target)
        if self.membership is not None:
            self.membership.watch(target)
        with self._lock:
            self._completed += 1
        if self._m_completed is not None:
            self._m_completed.labels(task.collection).inc()
            self._m_bytes.labels(task.collection).inc(nbytes)
        if self.events is not None:
            self.events.emit(
                "repair_completed",
                f"{task.collection}#s{task.shard_index} re-replicated "
                f"onto {target} ({nbytes} bytes)",
                severity="info", collection=task.collection,
                shard=task.shard_index, source=source, dest=target,
                bytes=nbytes)
        return True

    def _copy(self, spec: CollectionSpec, shard: ShardInfo,
              source: str, target: str) -> int:
        """Ship the fragment source → target over the existing data-
        shipping path, inside a ``repair`` span (ambient trace when one
        exists, else a private tracer folded into the monitor)."""
        transport = self.federation.transport
        source_peer = self.federation.peer(source)
        target_peer = self.federation.peer(target)
        stats = RunStats()

        def ship() -> int:
            text = transport.fetch_document(source_peer,
                                            shard.local_name, stats)
            target_peer.store(shard.local_name, text)
            return len(text.encode())

        monitor = (getattr(self.federation, "monitor", None)
                   if self.federation is not None else None)
        attrs = dict(collection=spec.name, shard=shard.index,
                     source=source, dest=target)
        if current_span() is None and monitor is not None:
            tracer = Tracer()
            with tracer.start("repair", **attrs) as span, \
                    bind_stats_span(stats, span):
                nbytes = ship()
                span.set(bytes=nbytes)
            monitor.observe_trace(tracer.root)
            return nbytes
        with child_span("repair", **attrs) as span, \
                bind_stats_span(stats, span):
            nbytes = ship()
            if span is not None:
                span.set(bytes=nbytes)
        return nbytes

    def _register(self, task: RepairTask, target: str) -> None:
        """Add ``target`` to the shard's placement in the *current*
        spec (re-read: the layout may have changed during the copy)."""
        spec = self.catalog.get(task.collection)
        new_shards = tuple(
            with_replicas(s, s.replicas + (target,))
            if s.index == task.shard_index and target not in s.replicas
            else s
            for s in spec.shards)
        self.catalog.replace(dc_replace(spec, shards=new_shards),
                             reason="repair", shard=task.shard_index,
                             target=target)

    def _give_up(self, task: RepairTask, reason: str) -> bool:
        with self._lock:
            self._failed += 1
        if self._m_failed is not None:
            self._m_failed.labels(task.collection).inc()
        if self.events is not None:
            self.events.emit(
                "repair_failed",
                f"repair of {task.collection}#s{task.shard_index} "
                f"abandoned: {reason}",
                severity="error", collection=task.collection,
                shard=task.shard_index, reason=reason)
        return False
