"""The cluster catalog: logical collections, shards, and replicas.

A *collection* is one logical XML document (e.g. the XMark people
document) partitioned into *shards*, each of which is a self-contained
fragment document stored on ``replication_factor`` peers. Queries
address the collection through a virtual host name::

    doc("xrpc://people-c/people.xml")

and never name shards or replicas; the router resolves the virtual
host through this catalog at execution time.

Membership is **epoch-versioned**: every mutation (registering or
dropping a collection, replica health transitions) bumps the catalog
epoch. The epoch is woven into the runtime's cache keys so responses
computed against an older shard layout can never be served after a
repartition.

Replica health is advisory: :meth:`ClusterCatalog.mark_down` removes a
peer from replica selection without touching placements, and
:meth:`mark_up` heals it. The router additionally fails over on live
transport faults, so an un-marked dead replica costs one failed
attempt, not a failed query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.errors import NetworkError


class ClusterError(NetworkError):
    """Misconfigured or unsatisfiable cluster operation."""


@dataclass(frozen=True)
class ShardInfo:
    """One shard of a collection: a fragment document replicated on
    ``replicas`` (peer names; order is the preference order used to
    break replica-selection ties)."""

    index: int
    local_name: str            # document name under which replicas store it
    replicas: tuple[str, ...]
    members: int = 0           # member elements held by this shard
    low_key: str | None = None   # range partitioning bounds (informational)
    high_key: str | None = None

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ClusterError(
                f"shard {self.index} has no replica placement")


@dataclass(frozen=True)
class CollectionSpec:
    """One sharded collection, addressable as ``xrpc://{name}/{document}``.

    ``container_path`` names the element spine from the root to the
    member container (e.g. ``("site", "people")``); ``member`` is the
    member element name (e.g. ``"person"``). Shards partition the
    member elements; shard 0 additionally carries all non-member
    content, so the union of the shards is exactly the original
    document.
    """

    name: str                   # virtual host name
    document: str               # logical local document name
    container_path: tuple[str, ...]
    member: str
    shards: tuple[ShardInfo, ...]
    partitioning: str = "range"   # "range" | "hash"
    #: The replication target the repair engine restores shards to
    #: after evictions (0 ⇒ infer the widest current placement).
    replication_factor: int = 0

    def __post_init__(self) -> None:
        if not self.shards:
            raise ClusterError(f"collection {self.name!r} has no shards")
        if not self.container_path:
            raise ClusterError(
                f"collection {self.name!r} has an empty container path")

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def replica_peers(self) -> tuple[str, ...]:
        """Every peer holding at least one replica, sorted."""
        peers = {peer for shard in self.shards for peer in shard.replicas}
        return tuple(sorted(peers))

    @property
    def order_stable(self) -> bool:
        """True when concatenating per-shard results in shard order
        reproduces the logical document order (range partitioning)."""
        return self.partitioning == "range"

    @property
    def target_replication(self) -> int:
        """The replica count repair restores every shard to: the
        declared factor, or (legacy specs) the widest placement."""
        if self.replication_factor > 0:
            return self.replication_factor
        return max(len(shard.replicas) for shard in self.shards)


class ClusterCatalog:
    """Thread-safe registry of sharded collections.

    ``max_scatter_parallelism`` caps how many shard calls one scatter
    fans out at a time (the cluster's admission knob, tuned by
    :class:`~repro.runtime.engine.FederationEngine`).
    """

    PARTIAL_POLICIES = ("error", "allow")

    def __init__(self, max_scatter_parallelism: int = 8,
                 partial: str = "error", retry_policy=None):
        self.max_scatter_parallelism = max_scatter_parallelism
        self._lock = threading.Lock()
        self._epoch = 0
        self._collections: dict[str, CollectionSpec] = {}
        self._down: set[str] = set()
        self._draining: set[str] = set()
        self._reasons: dict[str, str] = {}   # collection -> last reason
        #: A :class:`~repro.obs.events.EventLog` installed by a fleet
        #: monitor; every epoch bump emits into it when set.
        self.events = None
        #: Graceful degradation when a shard has zero live replicas:
        #: ``"error"`` fails the query (exact semantics, the default);
        #: ``"allow"`` lets scatter return a *flagged* partial answer
        #: (``RunStats.partial_shards`` counts the holes).
        self.partial_policy = self._check_partial(partial)
        #: The router's :class:`~repro.runtime.transport.RetryPolicy`
        #: for transient wire faults (None ⇒ the router's default).
        self.retry_policy = retry_policy

    @classmethod
    def _check_partial(cls, policy: str) -> str:
        if policy not in cls.PARTIAL_POLICIES:
            raise ClusterError(
                f"partial policy {policy!r} not in {cls.PARTIAL_POLICIES}")
        return policy

    def set_partial_policy(self, policy: str) -> None:
        """Switch the zero-live-replica degradation policy."""
        self.partial_policy = self._check_partial(policy)

    def _emit_epoch(self, epoch: int, reason: str, **attrs) -> None:
        """Emit an epoch-bump event (called with the lock released —
        event sinks may take their own locks)."""
        if self.events is not None:
            self.events.emit("epoch_bump",
                             f"catalog epoch -> {epoch} ({reason})",
                             severity="info", epoch=epoch,
                             reason=reason, **attrs)

    # -- membership ---------------------------------------------------------

    def epoch(self) -> int:
        """The membership epoch: bumped by every catalog mutation."""
        with self._lock:
            return self._epoch

    def register(self, spec: CollectionSpec) -> None:
        with self._lock:
            if spec.name in self._collections:
                raise ClusterError(
                    f"collection {spec.name!r} already registered")
            self._collections[spec.name] = spec
            self._reasons[spec.name] = "register"
            self._epoch += 1
            epoch = self._epoch
        self._emit_epoch(epoch, "register", collection=spec.name)

    def replace(self, spec: CollectionSpec, reason: str = "replace",
                **attrs) -> None:
        """Swap a collection's layout (repartition / re-placement /
        repair). ``reason``/``attrs`` annotate the epoch-bump event so
        operators can tell an eviction from a repair registration."""
        with self._lock:
            if spec.name not in self._collections:
                raise ClusterError(f"unknown collection {spec.name!r}")
            self._collections[spec.name] = spec
            self._reasons[spec.name] = reason
            self._epoch += 1
            epoch = self._epoch
        self._emit_epoch(epoch, reason, collection=spec.name, **attrs)

    def drop(self, name: str) -> None:
        with self._lock:
            if self._collections.pop(name, None) is None:
                raise ClusterError(f"unknown collection {name!r}")
            self._reasons.pop(name, None)
            self._epoch += 1
            epoch = self._epoch
        self._emit_epoch(epoch, "drop", collection=name)

    def get(self, name: str) -> CollectionSpec:
        with self._lock:
            try:
                return self._collections[name]
            except KeyError:
                raise ClusterError(f"unknown collection {name!r}") from None

    def lookup(self, host: str) -> CollectionSpec | None:
        """The collection registered under virtual host ``host``, or
        None when ``host`` is an ordinary peer name."""
        with self._lock:
            return self._collections.get(host)

    def collections(self) -> list[CollectionSpec]:
        with self._lock:
            return list(self._collections.values())

    # -- replica health -----------------------------------------------------

    def mark_down(self, peer_name: str) -> None:
        """Exclude ``peer_name`` from replica selection."""
        epoch = None
        with self._lock:
            if peer_name not in self._down:
                self._down.add(peer_name)
                self._epoch += 1
                epoch = self._epoch
        if epoch is not None:
            self._emit_epoch(epoch, "mark_down", peer=peer_name)

    def mark_up(self, peer_name: str) -> None:
        epoch = None
        with self._lock:
            if peer_name in self._down:
                self._down.discard(peer_name)
                self._epoch += 1
                epoch = self._epoch
        if epoch is not None:
            self._emit_epoch(epoch, "mark_up", peer=peer_name)

    def is_down(self, peer_name: str) -> bool:
        with self._lock:
            return peer_name in self._down

    def down_peers(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._down)

    # -- draining (planned decommission) ------------------------------------

    def set_draining(self, peer_name: str, draining: bool = True) -> None:
        """Mark/unmark ``peer_name`` as draining. A draining peer keeps
        serving the reads it already holds but stops receiving new
        placements (repair targets, rebalance destinations, fresh
        collections) while the rebalancer migrates its fragments away.
        Advisory only — no epoch bump, placements are untouched."""
        changed = False
        with self._lock:
            if draining and peer_name not in self._draining:
                self._draining.add(peer_name)
                changed = True
            elif not draining and peer_name in self._draining:
                self._draining.discard(peer_name)
                changed = True
        if changed and self.events is not None:
            self.events.emit(
                "peer_draining" if draining else "peer_undrained",
                f"peer {peer_name} {'draining for decommission' if draining else 'accepting placements again'}",
                severity="info", peer=peer_name)

    def is_draining(self, peer_name: str) -> bool:
        with self._lock:
            return peer_name in self._draining

    def draining_peers(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._draining)

    def live_replicas(self, shard: ShardInfo) -> tuple[str, ...]:
        """The shard's replicas not currently marked down (all of them
        when every replica is marked down — a dead cluster should fail
        on the wire, not silently on an empty candidate list)."""
        with self._lock:
            live = tuple(peer for peer in shard.replicas
                         if peer not in self._down)
        return live if live else shard.replicas

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """A JSON-able snapshot for examples, benchmarks, and the
        operator console: per-shard placements with live-replica
        counts, plus each collection's replication target and the
        reason of its last epoch-bumping mutation."""
        with self._lock:
            down = set(self._down)
            return {
                "epoch": self._epoch,
                "down": sorted(down),
                "draining": sorted(self._draining),
                "collections": {
                    spec.name: {
                        "document": spec.document,
                        "partitioning": spec.partitioning,
                        "replication_factor": spec.replication_factor,
                        "target_replication": spec.target_replication,
                        "last_reason": self._reasons.get(spec.name,
                                                         "register"),
                        "shards": [
                            {"index": s.index,
                             "local_name": s.local_name,
                             "replicas": list(s.replicas),
                             "live": [r for r in s.replicas
                                      if r not in down],
                             "live_count": sum(1 for r in s.replicas
                                               if r not in down),
                             "members": s.members}
                            for s in spec.shards
                        ],
                    }
                    for spec in self._collections.values()
                },
            }


def with_replicas(shard: ShardInfo, replicas: tuple[str, ...]) -> ShardInfo:
    """A copy of ``shard`` with a new replica placement."""
    return replace(shard, replicas=replicas)
