"""Executing migration plans: copy → verify → cutover → retire.

Every reshaping operation the rebalancer can plan — moving a replica,
splitting a shard, retiring a redundant copy — runs here as the same
staged protocol behind the catalog's epoch machinery:

1. **Copy** the fragment over the existing ship path
   (``transport.fetch_document`` from a usable replica, ``Peer.store``
   at the destination) inside a ``migrate`` span, with the wire
   charges bound to it.
2. **Verify byte-identity** by reading the copy back *over the wire*
   and comparing against the source text. This proves the bytes landed
   intact and doubles as the liveness check: a destination that died
   mid-copy fails the read-back, not the cutover. A split additionally
   verifies **before anything is stored** that the two child fragments
   merge back byte-exactly into the parent
   (:func:`~repro.cluster.gather.merge_shard_documents` — the same
   reassembly the data-shipping path trusts).
3. **Cut over** with one ``catalog.replace(reason="rebalance")`` —
   one atomic epoch bump computed against a freshly re-read spec, so
   an in-flight scatter sees the old placement or the new one, never a
   torn hybrid. At every point up to and including the cutover the
   shard's live replica count is ≥ what it was when the plan started:
   new copies are placed *before* old ones leave the placement.
4. **Retire** the superseded fragment lazily: the cutover only
   tombstones it; :meth:`MigrationExecutor.collect` removes the bytes
   later, and only after double-checking the catalog no longer places
   that fragment on that peer. An in-flight scatter that snapshotted
   the old epoch can therefore still read the old copy to completion.

Failure discipline matches the repair engine: any
:class:`~repro.errors.NetworkError` during an attempt rolls back every
document stored in that attempt (direct object removal — it works even
when the destination's transport is down) and retries up to
``max_attempts`` with sources re-resolved against the then-current
membership view, then gives up loudly (event + metric, catalog
untouched). A plan that no longer matches the live spec — the shard
healed, moved, or split since planning — resolves to a no-op.
"""

from __future__ import annotations

import threading
from dataclasses import replace as dc_replace

from repro.cluster.catalog import (
    ClusterCatalog, ClusterError, ShardInfo, with_replicas,
)
from repro.cluster.gather import merge_shard_documents
from repro.cluster.partitioner import (
    Partitioner, collection_members, partition_document,
)
from repro.cluster.rebalance import LoadScorer, MovePlan, SplitPlan
from repro.errors import NetworkError
from repro.net.stats import RunStats
from repro.obs.trace import Tracer, bind_stats_span, child_span, current_span
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize

__all__ = ["MigrationExecutor", "BoundaryPartitioner"]


class BoundaryPartitioner(Partitioner):
    """Splits a member list at one boundary: members ``0..at-1`` to
    shard 0, the rest to shard 1. Document-order contiguous, so the
    split preserves range partitioning's order stability."""

    kind = "range"

    def __init__(self, at: int):
        self.at = at

    def assign(self, members, shard_count):
        if shard_count != 2:
            raise ClusterError("boundary partitioner splits into "
                               f"exactly 2 shards, got {shard_count}")
        return [0 if index < self.at else 1
                for index in range(len(members))]


class MigrationExecutor:
    """Runs migration plans with the copy/verify/cutover/retire
    protocol described in the module docstring."""

    def __init__(self, federation=None, catalog: ClusterCatalog | None = None,
                 membership=None, *, scorer: LoadScorer | None = None,
                 events=None, metrics=None, max_attempts: int = 3):
        if max_attempts < 1:
            raise ClusterError(
                f"max_attempts {max_attempts} must be >= 1")
        self.federation = federation
        self.catalog = catalog if catalog is not None else (
            getattr(federation, "catalog", None))
        self.membership = membership if membership is not None else (
            getattr(federation, "membership", None))
        self.scorer = scorer if scorer is not None else LoadScorer(
            federation, catalog=self.catalog, membership=self.membership)
        self.events = events
        self.max_attempts = max_attempts
        self._lock = threading.Lock()
        #: Superseded fragments awaiting physical removal:
        #: ``(peer_name, local_name)`` pairs.
        self.tombstones: list[tuple[str, str]] = []
        self._completed: dict[str, int] = {}
        self._failed = 0
        self._collected = 0
        self._m_migrations = self._m_bytes = None
        self._init_metrics(metrics)

    def _init_metrics(self, metrics) -> None:
        if metrics is None:
            return
        self._m_migrations = metrics.counter(
            "rebalance_migrations_total",
            "migration attempts by operation and outcome",
            ("op", "outcome"))
        self._m_bytes = metrics.counter(
            "rebalance_bytes_total",
            "fragment bytes shipped by migrations", ("op",))

    # -- public API -----------------------------------------------------------

    def execute(self, plan) -> bool:
        """Run one plan to completion, no-op, or give-up. True only
        when a cutover happened."""
        if self.catalog is None or self.federation is None:
            raise ClusterError(
                "migration executor needs a federation and catalog")
        if isinstance(plan, MovePlan):
            return self._run(plan, self._move_attempt)
        if isinstance(plan, SplitPlan):
            return self._run(plan, self._split_attempt)
        raise ClusterError(f"unknown migration plan {plan!r}")

    def retire_replica(self, collection: str, shard_index: int,
                       peer: str) -> bool:
        """Drop one redundant replica from a shard's placement —
        guarded: refuses (False) unless the remaining *usable* replicas
        still meet the collection's ``target_replication``. Pure
        catalog surgery plus a tombstone; no bytes move."""
        try:
            spec = self.catalog.get(collection)
        except ClusterError:
            return False
        shard = self._find_shard(spec, shard_index)
        if shard is None or peer not in shard.replicas:
            return False
        remaining = tuple(r for r in shard.replicas if r != peer)
        usable = [r for r in remaining if self.scorer.usable(r)]
        if not remaining or len(usable) < spec.target_replication:
            return False
        new_shards = tuple(
            with_replicas(s, remaining) if s.index == shard_index else s
            for s in spec.shards)
        self.catalog.replace(dc_replace(spec, shards=new_shards),
                             reason="rebalance", op="retire",
                             shard=shard_index, peer=peer)
        self._tombstone(peer, shard.local_name)
        self._note_done("retire", collection=collection,
                        shard=shard_index, peer=peer, nbytes=0)
        return True

    def collect(self) -> int:
        """Physically remove tombstoned fragments whose placement no
        longer references them. Call between queries/steps: an
        in-flight scatter pinned to an old epoch may still be reading
        the old copy, so retirement is never inline with the cutover."""
        with self._lock:
            pending, self.tombstones = self.tombstones, []
        removed = 0
        for peer_name, local_name in pending:
            if self._still_placed(peer_name, local_name):
                continue  # re-placed since (repair raced): not garbage
            peer = self.federation.peers.get(peer_name)
            if peer is None:
                continue
            if peer.remove(local_name):
                removed += 1
                if self.events is not None:
                    self.events.emit(
                        "rebalance_retired",
                        f"retired {local_name} from {peer_name}",
                        severity="info", peer=peer_name,
                        document=local_name)
        with self._lock:
            self._collected += removed
        return removed

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"splits": self._completed.get("split", 0),
                    "moves": self._completed.get("move", 0),
                    "retires": self._completed.get("retire", 0),
                    "migrations_failed": self._failed,
                    "tombstones": len(self.tombstones),
                    "collected": self._collected}

    # -- shared machinery -----------------------------------------------------

    @staticmethod
    def _find_shard(spec, shard_index: int) -> ShardInfo | None:
        return next((s for s in spec.shards
                     if s.index == shard_index), None)

    def _run(self, plan, attempt_fn) -> bool:
        for attempt in range(1, self.max_attempts + 1):
            placed: list[tuple[str, str]] = []
            try:
                outcome = attempt_fn(plan, placed)
            except NetworkError as exc:
                self._rollback(placed)
                if self.events is not None:
                    self.events.emit(
                        "rebalance_failed",
                        f"{plan.op} of {plan.collection}"
                        f"#s{plan.shard_index} aborted: "
                        f"{type(exc).__name__} (attempt {attempt}/"
                        f"{self.max_attempts})",
                        severity="warning", op=plan.op,
                        collection=plan.collection,
                        shard=plan.shard_index,
                        error=type(exc).__name__)
                continue
            return outcome
        return self._give_up(plan, "max attempts exhausted")

    def _rollback(self, placed: list[tuple[str, str]]) -> None:
        """Remove every document this attempt stored. Direct object
        removal — works even when the peer's transport is down — and
        guarded against racing placements (never delete a fragment the
        catalog now references)."""
        for peer_name, local_name in placed:
            if self._still_placed(peer_name, local_name):
                continue
            peer = self.federation.peers.get(peer_name)
            if peer is not None:
                peer.remove(local_name)

    def _still_placed(self, peer_name: str, local_name: str) -> bool:
        for spec in self.catalog.collections():
            for shard in spec.shards:
                if shard.local_name == local_name \
                        and peer_name in shard.replicas:
                    return True
        return False

    def _tombstone(self, peer_name: str, local_name: str) -> None:
        with self._lock:
            self.tombstones.append((peer_name, local_name))

    def _give_up(self, plan, reason: str) -> bool:
        with self._lock:
            self._failed += 1
        if self._m_migrations is not None:
            self._m_migrations.labels(plan.op, "failed").inc()
        if self.events is not None:
            self.events.emit(
                "rebalance_failed",
                f"{plan.op} of {plan.collection}#s{plan.shard_index} "
                f"abandoned: {reason}",
                severity="error", op=plan.op,
                collection=plan.collection, shard=plan.shard_index,
                reason=reason)
        return False

    def _note_done(self, op: str, *, nbytes: int, **attrs) -> None:
        with self._lock:
            self._completed[op] = self._completed.get(op, 0) + 1
        if self._m_migrations is not None:
            self._m_migrations.labels(op, "completed").inc()
            if nbytes:
                self._m_bytes.labels(op).inc(nbytes)
        if self.events is not None:
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            self.events.emit("rebalance_completed",
                             f"{op} completed: {detail} "
                             f"({nbytes} bytes)",
                             severity="info", op=op, bytes=nbytes,
                             **attrs)

    def _spanned(self, op: str, attrs: dict, work):
        """Run ``work(stats)`` inside a ``migrate`` span — under the
        ambient trace when one exists, else under a private tracer
        folded into the fleet monitor (the repair engine's pattern)."""
        stats = RunStats()
        monitor = getattr(self.federation, "monitor", None)
        if current_span() is None and monitor is not None:
            tracer = Tracer()
            with tracer.start("migrate", op=op, **attrs) as span, \
                    bind_stats_span(stats, span):
                result = work(stats)
                span.set(bytes=result[1])
            monitor.observe_trace(tracer.root)
            return result
        with child_span("migrate", op=op, **attrs) as span, \
                bind_stats_span(stats, span):
            result = work(stats)
            if span is not None:
                span.set(bytes=result[1])
        return result

    def _fetch_text(self, peer_name: str, local_name: str,
                    stats: RunStats) -> str:
        transport = self.federation.transport
        peer = self.federation.peer(peer_name)
        return transport.fetch_document(peer, local_name, stats)

    def _store_verified(self, peer_name: str, local_name: str,
                        text: str, stats: RunStats,
                        placed: list[tuple[str, str]]) -> None:
        """Store and read back over the wire; byte mismatch or a dead
        destination both raise :class:`NetworkError`."""
        self.federation.peer(peer_name).store(local_name, text)
        placed.append((peer_name, local_name))
        echoed = self._fetch_text(peer_name, local_name, stats)
        if echoed != text:
            raise NetworkError(
                f"migration verify failed: {local_name} on "
                f"{peer_name} does not match the source bytes")

    # -- move -----------------------------------------------------------------

    def _move_attempt(self, plan: MovePlan,
                      placed: list[tuple[str, str]]) -> bool:
        try:
            spec = self.catalog.get(plan.collection)
        except ClusterError:
            return False  # collection dropped: stale plan, no-op
        shard = self._find_shard(spec, plan.shard_index)
        if shard is None or plan.source not in shard.replicas \
                or plan.target in shard.replicas:
            return False  # layout changed since planning: no-op
        if not self.scorer.usable(plan.target) \
                or self.catalog.is_draining(plan.target):
            return self._give_up(plan, f"target {plan.target} is not "
                                       f"a usable placement")
        sources = [r for r in shard.replicas if self.scorer.usable(r)]
        if not sources:
            return self._give_up(plan, "no live source replica")
        # Prefer copying from the replica being moved (it is usable or
        # it would not be "moved", it would be repaired), else any.
        copy_from = plan.source if plan.source in sources else sources[0]
        attrs = dict(collection=spec.name, shard=shard.index,
                     source=copy_from, dest=plan.target)

        def work(stats: RunStats) -> tuple[bool, int]:
            text = self._fetch_text(copy_from, shard.local_name, stats)
            self._store_verified(plan.target, shard.local_name, text,
                                 stats, placed)
            return True, len(text.encode())

        _ok, nbytes = self._spanned("move", attrs, work)
        # Cutover against a freshly re-read spec: the copy may have
        # taken long enough for a repair or another migration to land.
        spec = self.catalog.get(plan.collection)
        shard = self._find_shard(spec, plan.shard_index)
        if shard is None or shard.local_name not in (
                name for _p, name in placed):
            self._rollback(placed)
            return False  # shard split/renamed mid-copy: stale, no-op
        if plan.target in shard.replicas:
            return False  # someone else placed it: converged already
        if plan.source not in shard.replicas:
            self._rollback(placed)
            return False
        replicas = tuple(plan.target if r == plan.source else r
                         for r in shard.replicas)
        new_shards = tuple(
            with_replicas(s, replicas) if s.index == plan.shard_index
            else s
            for s in spec.shards)
        self.catalog.replace(dc_replace(spec, shards=new_shards),
                             reason="rebalance", op="move",
                             shard=plan.shard_index, source=plan.source,
                             target=plan.target)
        self._tombstone(plan.source, shard.local_name)
        if self.membership is not None:
            self.membership.watch(plan.target)
        self._note_done("move", collection=plan.collection,
                        shard=plan.shard_index, source=plan.source,
                        target=plan.target, nbytes=nbytes)
        return True

    # -- split ----------------------------------------------------------------

    def _split_attempt(self, plan: SplitPlan,
                       placed: list[tuple[str, str]]) -> bool:
        try:
            spec = self.catalog.get(plan.collection)
        except ClusterError:
            return False
        parent = self._find_shard(spec, plan.shard_index)
        if parent is None:
            return False  # renumbered/split since planning: no-op
        sources = [r for r in parent.replicas if self.scorer.usable(r)]
        if not sources:
            return self._give_up(plan, "no live source replica")
        attrs = dict(collection=spec.name, shard=parent.index,
                     source=sources[0])

        def work(stats: RunStats) -> tuple[tuple, int]:
            text = self._fetch_text(sources[0], parent.local_name,
                                    stats)
            doc = parse_document(
                text, uri=f"xrpc://{spec.name}/{parent.local_name}")
            members = collection_members(doc, spec.container_path,
                                         spec.member)
            if len(members) < 2:
                return (None, text), 0
            at = max(1, min(len(members) - 1, plan.at_member))
            child_names = (f"{parent.local_name}.0",
                           f"{parent.local_name}.1")
            fragments = partition_document(
                doc, spec.container_path, spec.member, 2,
                BoundaryPartitioner(at),
                uri_for_shard=lambda s: f"xrpc://{spec.name}/"
                                        f"{child_names[s]}")
            # Prove the children union byte-exactly back to the parent
            # BEFORE any byte is stored anywhere.
            merged = merge_shard_documents(
                [frag for frag, _count in fragments], uri=doc.uri,
                container_path=spec.container_path)
            if serialize(merged) != text:
                raise NetworkError(
                    f"split verify failed: children of "
                    f"{parent.local_name} do not merge back to the "
                    f"parent bytes")
            child_texts = tuple(serialize(frag)
                                for frag, _count in fragments)
            counts = tuple(count for _frag, count in fragments)
            # Place both children on every usable parent replica and
            # wire-verify each copy; the parent keeps serving
            # throughout (different local names, no conflict).
            total = 0
            for replica in sources:
                for name, ctext in zip(child_names, child_texts):
                    self._store_verified(replica, name, ctext, stats,
                                         placed)
                    total += len(ctext.encode())
            return (child_names, counts, at), total

        result, nbytes = self._spanned("split", attrs, work)
        if result[0] is None:
            return self._give_up(
                plan, f"shard {parent.local_name} has fewer than 2 "
                      f"members; nothing to split")
        child_names, counts, at = result
        # Cutover: re-read, re-find the parent by its (stable) local
        # name, and swap it for its two children in one epoch bump.
        spec = self.catalog.get(plan.collection)
        parent_now = next((s for s in spec.shards
                           if s.local_name == parent.local_name), None)
        if parent_now is None:
            self._rollback(placed)
            return False  # parent gone (raced split): stale, no-op
        replicas = tuple(sources)
        new_shards: list[ShardInfo] = []
        for s in spec.shards:
            if s.local_name == parent.local_name:
                new_shards.append(ShardInfo(
                    index=len(new_shards), local_name=child_names[0],
                    replicas=replicas, members=counts[0]))
                new_shards.append(ShardInfo(
                    index=len(new_shards), local_name=child_names[1],
                    replicas=replicas, members=counts[1]))
            else:
                new_shards.append(dc_replace(s, index=len(new_shards)))
        self.catalog.replace(
            dc_replace(spec, shards=tuple(new_shards)),
            reason="rebalance", op="split", shard=plan.shard_index,
            children=list(child_names))
        for replica in parent_now.replicas:
            self._tombstone(replica, parent.local_name)
        self._note_done("split", collection=plan.collection,
                        shard=plan.shard_index, at_member=at,
                        children=list(child_names), nbytes=nbytes)
        return True
