"""Sharded & replicated collection cluster on top of the federation.

The paper distributes whole documents across peers: one hot document
means one hot peer. This package adds horizontal data partitioning so
the same query can fan out over N peers holding N shards of one
logical collection:

* :mod:`repro.cluster.catalog` — logical collection names mapped to
  shard sets with per-shard replica placements, epoch-versioned;
* :mod:`repro.cluster.partitioner` — splitting an XML corpus into
  shard fragment documents by document-order range or content hash;
* :mod:`repro.cluster.placement` — storing shard replicas on peers
  round-robin and registering the collection;
* :mod:`repro.cluster.router` — scatter-gather execution of logical
  call sites: per-shard rewrite, least-loaded replica selection,
  transparent failover, aggregate pushdown;
* :mod:`repro.cluster.gather` — shard-order-stable result merging and
  shard-document reassembly for data shipping;
* :mod:`repro.cluster.membership` — the failure detector: probe ticks
  plus passive transport evidence drive each replica through
  ``alive → suspect → dead → evicted`` with hysteresis, feeding
  catalog health marks and placement evictions;
* :mod:`repro.cluster.repair` — re-replication of under-replicated
  shard fragments onto healthy peers after evictions;
* :mod:`repro.cluster.chaos` — deterministic seeded fault schedules
  and the harness that interleaves them with an oracle-checked live
  workload;
* :mod:`repro.cluster.rebalance` — the load-aware control loop: one
  shared peer/shard scoring function and migration planning (split a
  hot shard, move a replica to a cooler peer, drain a peer for
  decommission);
* :mod:`repro.cluster.migrate` — staged plan execution behind the
  epoch machinery: copy → byte-identity verify → atomic cutover →
  lazy retirement, with rollback/retry on mid-migration deaths.

Quickstart::

    from repro import Federation
    from repro.cluster import ClusterCatalog, create_sharded_collection

    federation = Federation()
    for name in ("node1", "node2", "node3", "node4"):
        federation.add_peer(name)
    federation.add_peer("local")
    catalog = ClusterCatalog()
    federation.attach_catalog(catalog)
    create_sharded_collection(
        federation, catalog, name="people-c", document=people_doc,
        document_name="people.xml", container_path=("site", "people"),
        member="person", shard_count=4, replication_factor=2)
    federation.run('count(doc("xrpc://people-c/people.xml")'
                   '/child::site/child::people/child::person)',
                   at="local")
"""

from repro.cluster.catalog import (
    ClusterCatalog, ClusterError, CollectionSpec, ShardInfo,
)
from repro.cluster.chaos import (
    ChaosEvent, ChaosHarness, ChaosReport, ChaosSchedule,
)
from repro.cluster.gather import (
    aggregate_combiner, concatenate, merge_shard_documents,
)
from repro.cluster.membership import (
    ALIVE, DEAD, EVICTED, SUSPECT, MembershipTracker,
)
from repro.cluster.partitioner import (
    HashPartitioner, Partitioner, RangePartitioner, collection_members,
    make_partitioner, partition_document,
)
from repro.cluster.migrate import BoundaryPartitioner, MigrationExecutor
from repro.cluster.placement import (
    InsufficientHealthyPeersError, create_sharded_collection,
    healthy_peers, round_robin_placement, shard_local_name,
)
from repro.cluster.rebalance import (
    DrainPlan, LoadScorer, MovePlan, PeerScore, Rebalancer, SplitPlan,
)
from repro.cluster.repair import RepairEngine, RepairTask
from repro.cluster.router import (
    ClusterRouter, ShardUnavailableError, rewrite_doc_uris,
)

__all__ = [
    "ClusterCatalog", "ClusterError", "CollectionSpec", "ShardInfo",
    "HashPartitioner", "Partitioner", "RangePartitioner",
    "collection_members", "make_partitioner", "partition_document",
    "create_sharded_collection", "round_robin_placement",
    "shard_local_name", "healthy_peers",
    "InsufficientHealthyPeersError",
    "ClusterRouter", "ShardUnavailableError", "rewrite_doc_uris",
    "aggregate_combiner", "concatenate", "merge_shard_documents",
    "ALIVE", "SUSPECT", "DEAD", "EVICTED", "MembershipTracker",
    "RepairEngine", "RepairTask",
    "ChaosEvent", "ChaosSchedule", "ChaosHarness", "ChaosReport",
    "PeerScore", "LoadScorer", "MovePlan", "SplitPlan", "DrainPlan",
    "Rebalancer", "MigrationExecutor", "BoundaryPartitioner",
]
