"""Gather semantics: combining per-shard results into one answer.

Three combinators:

* :func:`concatenate` — the default scatter-gather merge: per-shard
  result sequences concatenated in shard order. With range
  partitioning, shard order *is* the logical document order, so the
  gathered sequence equals the single-owner result sequence item for
  item; with hash partitioning the order is shard-major but stable.
* :func:`aggregate_combiner` — aggregate pushdown: when a scattered
  body is ``count(...)`` or ``sum(...)`` the per-shard bodies already
  reduce their partition, so the gather only adds N numbers instead of
  shipping N member sequences. (This relies on members being
  partitioned exactly once across shards — the partitioner's
  contract.)
* :func:`merge_shard_documents` — document assembly for data shipping:
  shard fragments fetched from their replicas are merged back into one
  document (shard 0's full content, with every later shard's members
  spliced into the member container in shard order).
"""

from __future__ import annotations

from repro.cluster.catalog import ClusterError
from repro.cluster.partitioner import find_container
from repro.xmldb.axes import attribute as attribute_axis
from repro.xmldb.axes import child as child_axis
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.node import Node, NodeKind
from repro.xquery.ast import (
    Expr, ForExpr, FunCall, LetExpr, Literal, OrderByExpr, PathExpr,
    QuantifiedExpr, walk,
)

#: Aggregate functions whose per-shard results combine by addition.
_ADDITIVE = {"count", "fn:count", "sum", "fn:sum"}

#: Context-position functions: per-shard positions are not global ones.
_POSITIONAL = {"position", "fn:position", "last", "fn:last"}


def concatenate(per_shard: list[list[list]]) -> list[list]:
    """Merge ``per_shard[shard][call]`` item sequences into one result
    list per call, shard-major (document order under range
    partitioning)."""
    if not per_shard:
        return []
    calls = len(per_shard[0])
    merged: list[list] = [[] for _ in range(calls)]
    for shard_results in per_shard:
        if len(shard_results) != calls:
            raise ClusterError(
                f"shard returned {len(shard_results)} call results, "
                f"expected {calls}")
        for index, items in enumerate(shard_results):
            merged[index].extend(items)
    return merged


def aggregate_combiner(body: Expr):
    """The gather combinator for an aggregate-shaped scattered body,
    or None when the body is not an additive aggregate.

    Returns a callable ``combine(per_shard) -> list[list]`` summing the
    single numeric item each shard produced per call.
    """
    if not (isinstance(body, FunCall) and body.name in _ADDITIVE
            and len(body.args) == 1):
        return None

    def combine(per_shard: list[list[list]]) -> list[list]:
        concatenated = concatenate(per_shard)
        out: list[list] = []
        for items in concatenated:
            total: int | float = 0
            for item in items:
                if not isinstance(item, (int, float)) \
                        or isinstance(item, bool):
                    raise ClusterError(
                        f"aggregate pushdown expected numeric shard "
                        f"results, got {type(item).__name__}")
                total += item
            out.append([total])
        return out

    return combine


def quantifier_combiner(body: Expr, collection: str):
    """OR/AND gather for a ``some``/``every`` scattered body, or None.

    Sound only when the satisfies clause itself never re-opens the
    collection (a per-shard ``count(coll)`` inside the condition would
    see partial data), so that case is left to the local fallback.
    """
    if not isinstance(body, QuantifiedExpr):
        return None
    if _references_collection(body.cond, collection):
        return None
    existential = body.quantifier == "some"

    def combine(per_shard: list[list[list]]) -> list[list]:
        concatenated = concatenate(per_shard)
        out: list[list] = []
        for items in concatenated:
            votes = [bool(item) for item in items]
            out.append([any(votes) if existential else all(votes)])
        return out

    return combine


def _references_collection(expr: Expr, collection: str) -> bool:
    prefix = f"xrpc://{collection}/"
    for node in walk(expr):
        if isinstance(node, FunCall) and node.name in ("doc", "fn:doc") \
                and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, Literal) and isinstance(arg.value, str) \
                    and arg.value.startswith(prefix):
                return True
    return False


def gather_plan(body: Expr, collection: str):
    """The gather combinator for scattering ``body``, or None when the
    body is not scatter-safe and must run at the originator over the
    merged collection document instead.

    Scatter-safe means every result item derives from one member
    independently (map shapes: paths, FLWOR without positions), or the
    per-shard results combine algebraically (count/sum addition,
    some/every disjunction/conjunction) — and the collection is opened
    only in *generator* position (the path input / ``for`` binding /
    ``let`` value feeding the map). A re-reference from a consumer
    position (a step predicate, a loop body, an aggregate inside a
    condition) would see one shard's slice where the query means the
    whole collection. Global-order and global-position constructs —
    ``order by``, positional ``for ... at``, ``position()``/``last()``,
    numeric step predicates — see only their shard's slice too. All of
    those fall back.
    """
    if not _free_of_global_positions(body):
        return None
    if isinstance(body, FunCall) and body.name in _ADDITIVE \
            and len(body.args) == 1:
        if not _source_safe(body.args[0], collection):
            return None
        return aggregate_combiner(body)
    combine = quantifier_combiner(body, collection)
    if combine is not None:
        if not _source_safe(body.seq, collection):
            return None
        return combine
    if _is_map_shape(body) and _source_safe(body, collection):
        return concatenate
    return None


def _source_safe(expr: Expr, collection: str) -> bool:
    """True when every reference to the collection sits in generator
    position, so per-shard evaluation sees exactly its partition of the
    member stream and nothing global."""
    if _is_collection_doc_call(expr, collection):
        return True
    if isinstance(expr, PathExpr):
        return (_source_safe(expr.input, collection)
                and not any(_references_collection(predicate, collection)
                            for step in expr.steps
                            for predicate in step.predicates))
    if isinstance(expr, ForExpr):
        return (expr.pos_var is None
                and _source_safe(expr.seq, collection)
                and not _references_collection(expr.body, collection))
    if isinstance(expr, LetExpr):
        return (_source_safe(expr.value, collection)
                and _source_safe(expr.body, collection))
    return not _references_collection(expr, collection)


def _is_collection_doc_call(expr: Expr, collection: str) -> bool:
    if not (isinstance(expr, FunCall) and expr.name in ("doc", "fn:doc")
            and len(expr.args) == 1):
        return False
    arg = expr.args[0]
    return (isinstance(arg, Literal) and isinstance(arg.value, str)
            and arg.value.startswith(f"xrpc://{collection}/"))


def _free_of_global_positions(body: Expr) -> bool:
    for node in walk(body):
        if isinstance(node, OrderByExpr):
            return False
        if isinstance(node, ForExpr) and node.pos_var is not None:
            return False
        if isinstance(node, FunCall) and node.name in _POSITIONAL:
            return False
        if isinstance(node, PathExpr):
            for step in node.steps:
                for predicate in step.predicates:
                    if isinstance(predicate, Literal) \
                            and isinstance(predicate.value, (int, float)) \
                            and not isinstance(predicate.value, bool):
                        return False  # numeric predicate == position
    return True


def _is_map_shape(body: Expr) -> bool:
    """Roots whose results are a per-member map: safe to concatenate."""
    if isinstance(body, PathExpr):
        return True
    if isinstance(body, ForExpr):
        return body.pos_var is None
    if isinstance(body, LetExpr):
        return _is_map_shape(body.body)
    return False


# ---------------------------------------------------------------------------
# Shard document merge (data shipping over a sharded collection)
# ---------------------------------------------------------------------------


def merge_shard_documents(shard_docs: list[Document], uri: str,
                          container_path: tuple[str, ...]) -> Document:
    """Reassemble shard fragments into one logical document.

    Shard 0 is copied verbatim except that, inside the member
    container, the element children of every later shard's container
    are appended in shard order. With range partitioning this
    reproduces the original document byte for byte.
    """
    if not shard_docs:
        raise ClusterError("cannot merge an empty shard list")
    base = shard_docs[0]
    containers = [find_container(doc, container_path)
                  for doc in shard_docs]
    builder = DocumentBuilder(uri)
    has_doc_node = base.root.kind == NodeKind.DOCUMENT
    if has_doc_node:
        top = _first_element(base.root)
    else:
        top = base.root
    if top is None:
        raise ClusterError(f"shard document {base.uri!r} has no root "
                           "element")
    if has_doc_node:
        builder.start_document()
    _copy_merged(builder, top, containers[0].pre, containers[1:])
    if has_doc_node:
        builder.end_document()
    return builder.finish()


def _first_element(node: Node) -> Node | None:
    for child in child_axis(node):
        if child.kind == NodeKind.ELEMENT:
            return child
    return None


def _copy_merged(builder: DocumentBuilder, node: Node, container_pre: int,
                 rest_containers: list[Node]) -> None:
    builder.start_element(node.name)
    for attr in attribute_axis(node):
        builder.attribute(attr.name, attr.value)
    on_spine = node.pre <= container_pre
    for child in child_axis(node):
        covers = (child.kind == NodeKind.ELEMENT and on_spine
                  and child.pre <= container_pre
                  and container_pre <= child.pre + child.size)
        if covers:
            _copy_merged(builder, child, container_pre, rest_containers)
        else:
            builder.copy_subtree(child)
    if node.pre == container_pre:
        # Splice the other shards' members, in shard order.
        for container in rest_containers:
            for member in child_axis(container):
                builder.copy_subtree(member)
    builder.end_element()
