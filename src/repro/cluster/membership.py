"""The membership failure detector: alive → suspect → dead → evicted.

PR 2's router *dodges* dead replicas — every query rediscovers the
same corpse, pays one failed attempt, and fails over. This module
detects the failure **once**, cluster-wide, and acts through the
catalog's epoch machinery so routers stop selecting the replica
entirely:

* **Evidence** arrives on two channels. *Passive*: the router reports
  every real attempt's outcome (``record_success`` / ``record_failure``
  from ``_with_failover``), so workload traffic doubles as detection
  traffic. *Active*: :meth:`tick` sends one heartbeat-sized probe per
  watched peer through :meth:`~repro.runtime.transport.Transport.probe`
  — idle peers keep getting judged, and a revived peer gets noticed
  without waiting for a query to gamble on it.

* **Suspicion** is phi-accrual-flavoured, tick-driven and
  deterministic: over the same rolling windows :mod:`repro.obs.health`
  uses, the failure fraction ``f`` maps to ``phi = -log10(1 - f)``
  (0.3 at 50 % failures, 1 at 90 %, ~`PHI_CEILING` at 100 %). A peer
  turns **suspect** when ``phi >= suspect_phi`` with enough window
  samples *or* after ``suspect_after`` consecutive failures — the
  consecutive ladder keeps detection latency bounded by probe ticks
  rather than window width. **Dead** needs ``dead_after`` consecutive
  failures; recovery needs ``revive_after`` consecutive successes
  (hysteresis — one lucky probe cannot flap a suspect back to alive).

* **Actions** ride the catalog epochs. Dead ⇒ ``catalog.mark_down``
  (one epoch bump; every router's replica ordering excludes the peer
  from then on — no more per-request rediscovery). Alive again ⇒
  ``mark_up``. After ``evict_after_ticks`` further ticks dead, the
  peer is **evicted**: removed from every shard placement that has
  another replica (``catalog.replace``, reason ``"evict"``), leaving
  under-replicated shards for :class:`~repro.cluster.repair.RepairEngine`
  to heal — subscribers are notified per transition. A shard whose
  *only* replica is the dead peer keeps its placement (data is not
  forgotten, merely unreachable); serving it is the partial-results
  policy's decision. Eviction is terminal until :meth:`rejoin`.

Every transition emits an event (``membership_suspect`` /
``membership_dead`` / ``membership_alive`` / ``replica_evicted``) and
feeds the ``membership_*`` metrics series. All mutations happen under
one lock; side effects (catalog calls, events, callbacks) run after it
is released, in deterministic peer order.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, replace as dc_replace

from repro.cluster.catalog import ClusterCatalog, ClusterError, with_replicas
from repro.errors import NetworkError
from repro.obs.windows import RollingWindowFamily

__all__ = ["ALIVE", "SUSPECT", "DEAD", "EVICTED", "PHI_CEILING",
           "ReplicaState", "MembershipTracker"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
EVICTED = "evicted"

_STATES = (ALIVE, SUSPECT, DEAD, EVICTED)
_STATE_CODES = {state: code for code, state in enumerate(_STATES)}

#: phi for a window that is 100 % failures (``-log10(0)`` clamped).
PHI_CEILING = 16.0

_EVENT_SEVERITY = {SUSPECT: "warning", DEAD: "error",
                   ALIVE: "info", EVICTED: "error"}


@dataclass
class ReplicaState:
    """One watched peer's current standing."""

    peer: str
    state: str = ALIVE
    phi: float = 0.0
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    dead_ticks: int = 0           # ticks spent dead (drives eviction)
    transitions: int = 0

    def snapshot(self) -> dict:
        return {
            "peer": self.peer,
            "state": self.state,
            "phi": self.phi,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "dead_ticks": self.dead_ticks,
            "transitions": self.transitions,
        }


class MembershipTracker:
    """Tick-driven failure detector over the cluster catalog.

    Construct standalone (``MembershipTracker(catalog=...,
    transport=...)``) or wire into a federation with :meth:`attach`,
    which also auto-watches every peer holding a replica. ``clock``
    only drives the evidence windows; state transitions are functions
    of evidence counts and :meth:`tick` calls — never wall time — so
    chaos schedules replay exactly.
    """

    def __init__(self, catalog: ClusterCatalog | None = None,
                 transport=None, *, clock=time.monotonic,
                 width_s: float = 0.5, buckets: int = 20,
                 window_s: float | None = None,
                 suspect_phi: float = 1.0, min_samples: int = 4,
                 suspect_after: int = 2, dead_after: int = 4,
                 revive_after: int = 2, evict_after_ticks: int = 2,
                 auto_evict: bool = True, probe_bytes: int = 64,
                 events=None, metrics=None):
        if not 1 <= suspect_after <= dead_after:
            raise ClusterError(
                f"need 1 <= suspect_after ({suspect_after}) <= "
                f"dead_after ({dead_after})")
        if revive_after < 1:
            raise ClusterError(f"revive_after {revive_after} must be >= 1")
        if evict_after_ticks < 1:
            raise ClusterError(
                f"evict_after_ticks {evict_after_ticks} must be >= 1")
        self.catalog = catalog
        self.transport = transport
        self.window_s = window_s
        self.suspect_phi = suspect_phi
        self.min_samples = min_samples
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.revive_after = revive_after
        self.evict_after_ticks = evict_after_ticks
        self.auto_evict = auto_evict
        self.probe_bytes = probe_bytes
        self.events = events
        self._failures = RollingWindowFamily(width_s, buckets, clock,
                                             eps=None)
        self._lock = threading.Lock()
        self._states: dict[str, ReplicaState] = {}
        self._subscribers: list = []
        self._ticks = 0
        self._init_metrics(metrics)

    def _init_metrics(self, metrics) -> None:
        self._state_gauge = self._transitions = self._probes = None
        if metrics is None:
            return
        self._state_gauge = metrics.gauge(
            "membership_state",
            "0=alive 1=suspect 2=dead 3=evicted", ("peer",))
        self._transitions = metrics.counter(
            "membership_transitions_total",
            "state-machine transitions by destination state", ("state",))
        self._probes = metrics.counter(
            "membership_probes_total", "heartbeat probes by outcome",
            ("outcome",))

    # -- wiring ---------------------------------------------------------------

    def attach(self, federation) -> "MembershipTracker":
        """Install on ``federation``: adopt its catalog/transport (and
        monitor event log + metrics registry when present), watch every
        replica peer, and let the router feed passive evidence through
        ``federation.membership``."""
        if self.catalog is None:
            self.catalog = federation.catalog
        if self.transport is None:
            self.transport = federation.transport
        monitor = getattr(federation, "monitor", None)
        if self.events is None and monitor is not None:
            self.events = monitor.events
        if self._state_gauge is None:
            self._init_metrics(federation.metrics)
        federation.membership = self
        if self.catalog is not None:
            for spec in self.catalog.collections():
                self.watch(*spec.replica_peers)
        return self

    def subscribe(self, callback) -> None:
        """``callback(peer, old_state, new_state)`` after every
        transition (called outside the tracker lock, in deterministic
        order; the repair engine subscribes for dead/evicted)."""
        self._subscribers.append(callback)

    def watch(self, *peers: str) -> None:
        with self._lock:
            for peer in peers:
                self._states.setdefault(peer, ReplicaState(peer=peer))

    # -- reads ----------------------------------------------------------------

    def peers(self) -> list[str]:
        with self._lock:
            return sorted(self._states)

    def state(self, peer: str) -> str:
        with self._lock:
            entry = self._states.get(peer)
            return entry.state if entry is not None else ALIVE

    def phi(self, peer: str) -> float:
        """The current phi suspicion score (windowed failure mass)."""
        window = self._failures.get(peer)
        if window is None:
            return 0.0
        samples = window.count(self.window_s)
        if samples < self.min_samples:
            return 0.0
        fraction = window.sum(self.window_s) / samples
        if fraction >= 1.0:
            return PHI_CEILING
        return min(PHI_CEILING, -math.log10(1.0 - fraction))

    def snapshot(self) -> list[dict]:
        with self._lock:
            entries = [dc_replace(entry) for _, entry in
                       sorted(self._states.items())]
        for entry in entries:
            entry.phi = self.phi(entry.peer)
        return [entry.snapshot() for entry in entries]

    def converged(self) -> bool:
        """True when no watched peer is suspect or dead (evicted peers
        are resolved, not pending — the repair engine owns their data)."""
        with self._lock:
            return all(entry.state in (ALIVE, EVICTED)
                       for entry in self._states.values())

    # -- evidence -------------------------------------------------------------

    def record_success(self, peer: str) -> None:
        """Passive evidence: one real attempt against ``peer`` worked."""
        self._failures.labels(peer).observe(0.0)
        self._observe(peer, ok=True)

    def record_failure(self, peer: str, error: Exception | None = None
                       ) -> None:
        """Passive evidence: one real attempt against ``peer`` failed
        at the wire level."""
        self._failures.labels(peer).observe(1.0)
        self._observe(peer, ok=False)

    def tick(self) -> dict[str, str]:
        """One detector round: probe every watched, non-evicted peer
        (deterministic name order), advance dead peers toward eviction.
        Returns the post-tick state per peer."""
        if self.transport is None:
            raise ClusterError("membership tracker has no transport "
                               "to probe through (attach a federation)")
        with self._lock:
            self._ticks += 1
            probe_list = [entry.peer for _, entry in
                          sorted(self._states.items())
                          if entry.state != EVICTED]
        for peer in probe_list:
            try:
                self.transport.probe(peer, self.probe_bytes)
            except NetworkError:
                if self._probes is not None:
                    self._probes.labels("fail").inc()
                self.record_failure(peer)
            else:
                if self._probes is not None:
                    self._probes.labels("ok").inc()
                self.record_success(peer)
        self._advance_dead()
        with self._lock:
            return {peer: entry.state
                    for peer, entry in sorted(self._states.items())}

    # -- operator actions -----------------------------------------------------

    def evict(self, peer: str) -> None:
        """Force-evict ``peer`` (the auto path calls this after
        ``evict_after_ticks`` dead ticks)."""
        transitions = []
        with self._lock:
            entry = self._states.get(peer)
            if entry is None or entry.state == EVICTED:
                return
            transitions.append(self._transition(entry, EVICTED))
        self._apply(transitions)

    def rejoin(self, peer: str) -> None:
        """Readmit an evicted peer as a fresh, empty member: state
        resets to alive and the catalog mark clears. Its old fragments
        were re-replicated elsewhere; new placements come from repair
        or future resharding."""
        transitions = []
        with self._lock:
            entry = self._states.setdefault(peer, ReplicaState(peer=peer))
            if entry.state != ALIVE:
                entry.consecutive_failures = 0
                entry.consecutive_successes = 0
                entry.dead_ticks = 0
                transitions.append(self._transition(entry, ALIVE))
        self._apply(transitions)

    # -- state machine --------------------------------------------------------

    def _observe(self, peer: str, ok: bool) -> None:
        transitions = []
        with self._lock:
            entry = self._states.setdefault(peer, ReplicaState(peer=peer))
            if entry.state == EVICTED:
                return  # terminal until rejoin()
            if ok:
                entry.consecutive_failures = 0
                entry.consecutive_successes += 1
                if (entry.state in (SUSPECT, DEAD)
                        and entry.consecutive_successes
                        >= self.revive_after):
                    transitions.append(self._transition(entry, ALIVE))
            else:
                entry.consecutive_successes = 0
                entry.consecutive_failures += 1
                if (entry.state in (ALIVE, SUSPECT)
                        and entry.consecutive_failures >= self.dead_after):
                    if entry.state == ALIVE:
                        transitions.append(
                            self._transition(entry, SUSPECT))
                    transitions.append(self._transition(entry, DEAD))
                elif (entry.state == ALIVE
                      and entry.consecutive_failures
                      >= self.suspect_after):
                    transitions.append(self._transition(entry, SUSPECT))
        if not transitions and not ok and self.state(peer) == ALIVE \
                and self.phi(peer) >= self.suspect_phi:
            # The windowed phi signal: mostly-failing mixed traffic
            # turns a peer suspect even when successes keep resetting
            # the consecutive ladder.
            with self._lock:
                entry = self._states[peer]
                if entry.state == ALIVE:
                    transitions.append(self._transition(entry, SUSPECT))
        self._apply(transitions)

    def _advance_dead(self) -> None:
        transitions = []
        with self._lock:
            for _, entry in sorted(self._states.items()):
                if entry.state != DEAD:
                    continue
                entry.dead_ticks += 1
                if (self.auto_evict
                        and entry.dead_ticks >= self.evict_after_ticks):
                    transitions.append(self._transition(entry, EVICTED))
        self._apply(transitions)

    def _transition(self, entry: ReplicaState, new_state: str):
        """Record a transition under the lock; side effects happen in
        :meth:`_apply` after release."""
        old = entry.state
        entry.state = new_state
        entry.transitions += 1
        if new_state == DEAD:
            entry.dead_ticks = 0
        return (entry.peer, old, new_state)

    def _apply(self, transitions) -> None:
        """Side effects for recorded transitions, in order: catalog
        epoch bumps, events, metrics, subscriber callbacks."""
        for peer, old, new_state in transitions:
            if self.catalog is not None:
                if new_state == DEAD:
                    self.catalog.mark_down(peer)
                elif new_state == ALIVE and old in (DEAD, EVICTED):
                    self.catalog.mark_up(peer)
                elif new_state == EVICTED:
                    self._evict_placements(peer)
            if self._state_gauge is not None:
                self._state_gauge.labels(peer).set(
                    _STATE_CODES[new_state])
                self._transitions.labels(new_state).inc()
            if self.events is not None:
                kind = ("replica_evicted" if new_state == EVICTED
                        else f"membership_{new_state}")
                self.events.emit(
                    kind,
                    f"peer {peer}: {old} -> {new_state} "
                    f"(phi {self.phi(peer):.2f})",
                    severity=_EVENT_SEVERITY[new_state],
                    peer=peer, old=old, new=new_state)
            for callback in list(self._subscribers):
                callback(peer, old, new_state)

    def _evict_placements(self, peer: str) -> None:
        """Remove ``peer`` from every shard placement that still has
        another replica (epoch bump per collection, reason ``evict``).
        Sole-replica shards keep their placement — the data exists,
        the peer is merely unreachable — and stay behind the catalog's
        down-mark until repair or rejoin."""
        for spec in self.catalog.collections():
            new_shards = []
            touched = False
            for shard in spec.shards:
                if peer in shard.replicas and len(shard.replicas) > 1:
                    new_shards.append(with_replicas(
                        shard, tuple(r for r in shard.replicas
                                     if r != peer)))
                    touched = True
                else:
                    new_shards.append(shard)
            if touched:
                self.catalog.replace(
                    dc_replace(spec, shards=tuple(new_shards)),
                    reason="evict", peer=peer)
