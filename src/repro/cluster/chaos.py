"""A deterministic chaos harness for the self-healing cluster.

Chaos testing earns its keep only when a failure *reproduces*: a
flake seen once in CI must replay, step for step, on a laptop. So
everything here is driven by explicit seeded :class:`random.Random`
streams and a discrete step clock — no wall-clock coupling, no global
randomness:

- :class:`ChaosEvent` — one scheduled fault action (``kill`` /
  ``revive`` / ``degrade`` / ``restore``) at one step.
- :class:`ChaosSchedule` — an immutable event list.
  :meth:`ChaosSchedule.generate` synthesises one from an **explicit**
  ``random.Random``: every kill gets a matching revive, at most
  ``max_down`` peers are ever scheduled down at once (default
  ``replication_factor - 1``, so a query always has a serving
  replica), and degrades add latency without killing.
- :class:`ChaosHarness` — interleaves the schedule with a live
  workload. Each step applies due events, advances the failure
  detector one probe tick, lets the repair engine drain, runs one
  query, and checks the answer **against a single-owner oracle**
  (byte-exact serialized comparison). After the schedule it drives
  the cluster to convergence (membership settled, repair queue empty)
  and then runs a steady-state pass in which any failover is a bug —
  the healed cluster must route around nothing.

:class:`ChaosReport` carries the verdict: wrong answers (must be 0),
failovers/retries/partials during turbulence (informational),
steady-state failovers (must be 0), repair and eviction counts, and
latency percentiles over the live workload.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.cluster.catalog import ClusterError
from repro.cluster.membership import ALIVE, DEAD, EVICTED
from repro.obs.metrics import percentile

__all__ = ["ChaosEvent", "ChaosSchedule", "ChaosHarness", "ChaosReport"]

ACTIONS = ("kill", "revive", "degrade", "restore",
           "split", "move", "drain", "undrain")

#: Rebalance operations dispatched to a :class:`Rebalancer` instead of
#: the transport. ``split``/``move`` carry no peer (the rebalancer
#: picks deterministically from cumulative heat); ``drain``/``undrain``
#: name the decommission target.
REBALANCE_ACTIONS = ("split", "move", "drain", "undrain")


@dataclass(frozen=True)
class ChaosEvent:
    """One fault-injection (or rebalance) action at one schedule step."""

    step: int
    action: str      # one of ACTIONS
    peer: str        # "" for split/move (rebalancer picks the victim)
    extra_latency_s: float = 0.0   # degrade only

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ClusterError(
                f"chaos action {self.action!r} not in {ACTIONS}")
        if self.step < 0:
            raise ClusterError(f"chaos step {self.step} must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, replayable fault schedule over ``steps`` steps."""

    steps: int
    events: tuple[ChaosEvent, ...]

    def due(self, step: int) -> list[ChaosEvent]:
        """Events firing at ``step``, in schedule order."""
        return [e for e in self.events if e.step == step]

    def describe(self) -> list[dict]:
        return [{"step": e.step, "action": e.action, "peer": e.peer,
                 **({"extra_latency_s": e.extra_latency_s}
                    if e.action == "degrade" else {})}
                for e in self.events]

    @classmethod
    def generate(cls, rng: random.Random, peers: list[str],
                 steps: int = 40, *, kill_rate: float = 0.15,
                 degrade_rate: float = 0.10, max_down: int = 1,
                 down_for: tuple[int, int] = (4, 10),
                 degrade_for: tuple[int, int] = (2, 6),
                 extra_latency_s: float = 0.002,
                 splits: int = 0, moves: int = 0,
                 drains: int = 0) -> "ChaosSchedule":
        """Synthesise a schedule from an explicit seeded ``rng``.

        The caller passes the :class:`random.Random` (never a bare
        seed fished from ambient state): the same rng state always
        yields the same schedule. Invariants: at most ``max_down``
        peers are scheduled down at any step; every kill's revive
        lands inside the schedule; a peer is touched by one fault at
        a time (no degrade of a dead peer). The tail quarter of the
        schedule is left quiet so the run ends on a healable cluster.

        ``splits``/``moves``/``drains`` interleave that many rebalance
        operations into the active region (their rng draws come after
        the fault draws, so schedules generated without them replay
        byte-identically). Every drain's ``undrain`` lands at the
        quiet boundary, so convergence sees the full fleet as
        placement-eligible again.
        """
        if not peers:
            raise ClusterError("chaos schedule needs at least one peer")
        if max_down < 0:
            raise ClusterError(f"max_down {max_down} must be >= 0")
        events: list[ChaosEvent] = []
        down_until: dict[str, int] = {}     # peer -> revive step
        slow_until: dict[str, int] = {}
        quiet_from = steps - max(1, steps // 4)
        for step in range(quiet_from):
            # Strict inequality: a peer stays "touched" through the
            # step its end-event fires, so a new fault on it can only
            # start the step after — kill@s + revive@s on one peer
            # would otherwise race on schedule order.
            for peer, until in list(down_until.items()):
                if until < step:
                    del down_until[peer]
            for peer, until in list(slow_until.items()):
                if until < step:
                    del slow_until[peer]
            untouched = [p for p in peers
                         if p not in down_until and p not in slow_until]
            if untouched and len(down_until) < max_down \
                    and rng.random() < kill_rate:
                peer = rng.choice(untouched)
                until = min(quiet_from,
                            step + rng.randint(*down_for))
                events.append(ChaosEvent(step, "kill", peer))
                events.append(ChaosEvent(until, "revive", peer))
                down_until[peer] = until
                untouched.remove(peer)
            if untouched and rng.random() < degrade_rate:
                peer = rng.choice(untouched)
                until = min(quiet_from,
                            step + rng.randint(*degrade_for))
                events.append(ChaosEvent(step, "degrade", peer,
                                         extra_latency_s))
                events.append(ChaosEvent(until, "restore", peer))
                slow_until[peer] = until
        # Rebalance operations: drawn after the fault loop so a
        # schedule generated without them consumes exactly the same
        # rng stream as before (replay compatibility).
        active = max(1, quiet_from)
        for _ in range(splits):
            events.append(ChaosEvent(rng.randrange(active), "split", ""))
        for _ in range(moves):
            events.append(ChaosEvent(rng.randrange(active), "move", ""))
        drainable = list(peers)
        for _ in range(min(drains, max(0, len(peers) - 2))):
            peer = rng.choice(drainable)
            drainable.remove(peer)
            events.append(ChaosEvent(rng.randrange(active), "drain",
                                     peer))
            events.append(ChaosEvent(quiet_from, "undrain", peer))
        events.sort(key=lambda e: (e.step, ACTIONS.index(e.action),
                                   e.peer))
        return cls(steps=steps, events=tuple(events))


@dataclass
class ChaosReport:
    """What one chaos run did and how the cluster held up."""

    steps: int = 0
    queries: int = 0
    wrong_answers: int = 0
    failovers: int = 0
    retries: int = 0
    partial_shards: int = 0
    evictions: int = 0
    rejoins: int = 0
    repairs_completed: int = 0
    repairs_failed: int = 0
    splits: int = 0
    moves: int = 0
    drains: int = 0
    retires: int = 0
    migrations_failed: int = 0
    fragments_collected: int = 0
    converged: bool = False
    convergence_ticks: int = 0
    steady_queries: int = 0
    steady_failovers: int = 0
    latencies_s: list[float] = field(default_factory=list)
    wrong_steps: list[int] = field(default_factory=list)

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_s, 50) * 1000

    @property
    def p95_ms(self) -> float:
        return percentile(self.latencies_s, 95) * 1000

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_s, 99) * 1000

    @property
    def ok(self) -> bool:
        """The run's verdict: exact answers throughout, converged, and
        a healed cluster that fails over on nothing."""
        return (self.wrong_answers == 0 and self.converged
                and self.steady_failovers == 0)

    def as_dict(self) -> dict[str, object]:
        return {
            "steps": self.steps, "queries": self.queries,
            "wrong_answers": self.wrong_answers,
            "failovers": self.failovers, "retries": self.retries,
            "partial_shards": self.partial_shards,
            "evictions": self.evictions, "rejoins": self.rejoins,
            "repairs_completed": self.repairs_completed,
            "repairs_failed": self.repairs_failed,
            "splits": self.splits, "moves": self.moves,
            "drains": self.drains, "retires": self.retires,
            "migrations_failed": self.migrations_failed,
            "fragments_collected": self.fragments_collected,
            "converged": self.converged,
            "convergence_ticks": self.convergence_ticks,
            "steady_queries": self.steady_queries,
            "steady_failovers": self.steady_failovers,
            "p50_ms": self.p50_ms, "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms, "ok": self.ok,
        }


class ChaosHarness:
    """Interleaves a fault schedule with a live workload and checks
    every answer against a pre-computed oracle.

    ``queries`` is a list of ``(query_text, expected_serialized)``
    pairs — the expected side computed once against an unsharded
    single-owner federation (or any trusted oracle). Step ``i`` runs
    query ``i mod len(queries)``, so every query shape sees every
    fault phase across a long enough schedule.
    """

    def __init__(self, federation, schedule: ChaosSchedule, *,
                 queries: list[tuple[str, str]],
                 membership=None, repair=None, rebalancer=None,
                 serialize=None, at: str = "local", strategy=None,
                 convergence_ticks: int = 24, steady_passes: int = 2):
        if not queries:
            raise ClusterError("chaos harness needs at least one query")
        self.federation = federation
        self.schedule = schedule
        self.queries = list(queries)
        self.membership = membership if membership is not None \
            else getattr(federation, "membership", None)
        self.repair = repair if repair is not None \
            else getattr(federation, "repair", None)
        self.rebalancer = rebalancer if rebalancer is not None \
            else getattr(federation, "rebalancer", None)
        if self.membership is None:
            raise ClusterError("chaos harness needs a membership tracker")
        if self.rebalancer is None and any(
                e.action in REBALANCE_ACTIONS for e in schedule.events):
            raise ClusterError(
                "schedule contains rebalance actions but no "
                "rebalancer is attached")
        if serialize is None:
            from repro.xquery.xdm import serialize_sequence
            serialize = serialize_sequence
        self.serialize = serialize
        self.at = at
        self.strategy = strategy
        self.convergence_ticks = convergence_ticks
        self.steady_passes = steady_passes
        self._track_membership()

    def _track_membership(self) -> None:
        self._evictions = 0
        self._rejoins = 0

        def on_transition(peer: str, old: str, new_state: str) -> None:
            if new_state == EVICTED:
                self._evictions += 1
            elif old in (DEAD, EVICTED) and new_state == ALIVE:
                self._rejoins += 1

        self.membership.subscribe(on_transition)

    # -- fault application ----------------------------------------------------

    def apply(self, event: ChaosEvent) -> None:
        transport = self.federation.transport
        if event.action == "kill":
            transport.kill_peer(event.peer)
        elif event.action == "revive":
            transport.revive_peer(event.peer)
            # An evicted peer's probes stopped (eviction is terminal
            # for the detector); revival models a restarted process
            # re-announcing itself to the membership.
            if self.membership.state(event.peer) == EVICTED:
                self.membership.rejoin(event.peer)
        elif event.action == "degrade":
            transport.degrade_peer(event.peer, event.extra_latency_s)
        elif event.action == "restore":
            transport.restore_peer(event.peer)
        elif event.action == "split":
            self.rebalancer.chaos_split()
        elif event.action == "move":
            self.rebalancer.chaos_move()
        elif event.action == "drain":
            self.rebalancer.drain(event.peer)
        elif event.action == "undrain":
            self.rebalancer.undrain(event.peer)

    # -- the run --------------------------------------------------------------

    def run(self) -> ChaosReport:
        report = ChaosReport(steps=self.schedule.steps)
        for step in range(self.schedule.steps):
            for event in self.schedule.due(step):
                self.apply(event)
            self.membership.tick()
            if self.repair is not None:
                self.repair.process()
            self._query(step, report)
            if self.rebalancer is not None:
                # Queries are sequential here, so nothing is in
                # flight between steps: superseded fragments can
                # physically retire now.
                self.rebalancer.collect()
        report.converged = self._converge(report)
        self._steady_state(report)
        if self.repair is not None:
            stats = self.repair.stats()
            report.repairs_completed = stats["completed"]
            report.repairs_failed = stats["failed"]
        if self.rebalancer is not None:
            self.rebalancer.collect()
            stats = self.rebalancer.stats()
            report.splits = stats.get("splits", 0)
            report.moves = stats.get("moves", 0)
            report.drains = stats.get("drains", 0)
            report.retires = stats.get("retires", 0)
            report.migrations_failed = stats.get("migrations_failed", 0)
            report.fragments_collected = stats.get("collected", 0)
        report.evictions = self._evictions
        report.rejoins = self._rejoins
        return report

    def _query(self, step: int, report: ChaosReport,
               steady: bool = False) -> None:
        query, expected = self.queries[step % len(self.queries)]
        started = time.perf_counter()
        kwargs = {"at": self.at}
        if self.strategy is not None:
            kwargs["strategy"] = self.strategy
        try:
            result = self.federation.run(query, **kwargs)
        except ClusterError:
            # A failed query is as wrong as a wrong one — with the
            # schedule's max_down invariant this should never fire.
            report.latencies_s.append(time.perf_counter() - started)
            report.queries += 1
            report.wrong_answers += 1
            report.wrong_steps.append(step)
            if steady:
                report.steady_queries += 1
            return
        elapsed = time.perf_counter() - started
        report.latencies_s.append(elapsed)
        report.queries += 1
        if self.serialize(result.items) != expected:
            report.wrong_answers += 1
            report.wrong_steps.append(step)
        report.failovers += result.stats.failovers
        report.retries += result.stats.retries
        report.partial_shards += result.stats.partial_shards
        if steady:
            report.steady_queries += 1
            report.steady_failovers += result.stats.failovers

    def _converge(self, report: ChaosReport) -> bool:
        """Tick until the detector settles and repair drains."""
        for tick in range(self.convergence_ticks):
            self.membership.tick()
            if self.repair is not None:
                self.repair.scan()
                self.repair.process()
            settled = self.membership.converged()
            drained = self.repair is None or self.repair.pending() == 0
            if settled and drained:
                report.convergence_ticks = tick + 1
                return True
        report.convergence_ticks = self.convergence_ticks
        return False

    def _steady_state(self, report: ChaosReport) -> None:
        """Post-convergence passes: the healed cluster must answer
        every query exactly, with zero failovers."""
        base = self.schedule.steps
        for offset in range(self.steady_passes * len(self.queries)):
            self._query(base + offset, report, steady=True)
