"""Partitioning one XML document into shard fragment documents.

A collection's *members* are the element children of one container
element (e.g. every ``person`` under ``site/people``). A partitioner
assigns each member to a shard:

* :class:`RangePartitioner` — contiguous document-order ranges
  (optionally keyed by a member attribute such as XMark's
  ``person/@id``, whose numeric suffix follows document order).
  Concatenating per-shard results in shard order reproduces the
  original document order, so range-sharded collections are
  order-stable under scatter-gather.
* :class:`HashPartitioner` — a deterministic content hash (CRC-32 of
  the member key, never Python's seed-randomised ``hash``) spreads
  members independent of insertion order; gather order is shard-major
  and therefore stable run-to-run but not the original document order.

:func:`partition_document` materialises the shard documents: every
shard carries the spine (root .. container chain, with attributes) plus
its assigned members; shard 0 additionally carries all non-member
content (XMark's regions and categories), so the shards form an exact,
duplication-free partition of the original document.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.cluster.catalog import ClusterError
from repro.xmldb.axes import attribute as attribute_axis
from repro.xmldb.axes import child as child_axis
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.index import structural_index
from repro.xmldb.node import Node, NodeKind


class Partitioner:
    """Assigns member elements to shards."""

    #: "range" partitioners guarantee shard-order == document-order.
    kind = "custom"

    def assign(self, members: list[Node], shard_count: int) -> list[int]:
        """One shard index per member, in document order."""
        raise NotImplementedError


@dataclass(frozen=True)
class RangePartitioner(Partitioner):
    """Contiguous document-order ranges of (nearly) equal size."""

    kind = "range"

    def assign(self, members: list[Node], shard_count: int) -> list[int]:
        total = len(members)
        if shard_count <= 0:
            raise ClusterError(f"shard_count must be positive, "
                               f"got {shard_count}")
        return [index * shard_count // max(total, 1)
                for index in range(total)]


@dataclass(frozen=True)
class HashPartitioner(Partitioner):
    """Deterministic hash of a member key attribute (CRC-32, stable
    across processes — Python's ``hash`` is seed-randomised and would
    break run-to-run reproducibility)."""

    key_attribute: str = "id"
    kind = "hash"

    def assign(self, members: list[Node], shard_count: int) -> list[int]:
        if shard_count <= 0:
            raise ClusterError(f"shard_count must be positive, "
                               f"got {shard_count}")
        return [zlib.crc32(self._key(member, position).encode())
                % shard_count
                for position, member in enumerate(members)]

    def _key(self, member: Node, position: int) -> str:
        for attr in attribute_axis(member):
            if attr.name == self.key_attribute:
                return attr.value
        return str(position)  # keyless member: position is still stable


def make_partitioner(partitioning: str, key_attribute: str = "id"
                     ) -> Partitioner:
    if partitioning == "range":
        return RangePartitioner()
    if partitioning == "hash":
        return HashPartitioner(key_attribute=key_attribute)
    raise ClusterError(f"unknown partitioning {partitioning!r} "
                       "(expected 'range' or 'hash')")


# ---------------------------------------------------------------------------
# Shard document construction
# ---------------------------------------------------------------------------


def find_container(document: Document,
                   container_path: tuple[str, ...]) -> Node:
    """The member container element reached by following
    ``container_path`` (first matching child at each step)."""
    node = document.root
    if node.kind == NodeKind.DOCUMENT:
        node = _first_element_child(node)
    if node is None or node.name != container_path[0]:
        raise ClusterError(
            f"document {document.uri!r} root element does not match "
            f"container path {'/'.join(container_path)!r}")
    for name in container_path[1:]:
        node = _named_child(node, name)
        if node is None:
            raise ClusterError(
                f"document {document.uri!r} has no "
                f"{'/'.join(container_path)!r} container")
    return node


def _first_element_child(node: Node) -> Node | None:
    for candidate in child_axis(node):
        if candidate.kind == NodeKind.ELEMENT:
            return candidate
    return None


def _named_child(node: Node, name: str) -> Node | None:
    # Tag-index range scan: first child named ``name`` without walking
    # past-the-name siblings (container spines sit above wide fan-out).
    pres = structural_index(node.doc).axis_scan("child", name, [node.pre])
    return Node(node.doc, pres[0]) if pres else None


def collection_members(document: Document, container_path: tuple[str, ...],
                       member: str) -> list[Node]:
    """The member elements, in document order (one tag-index scan —
    the shard-local structural indexes the gather path relies on are
    built here as a side effect, before any scatter touches them)."""
    container = find_container(document, container_path)
    pres = structural_index(document).axis_scan("child", member,
                                                [container.pre])
    return [Node(document, pre) for pre in pres]


def partition_document(document: Document,
                       container_path: tuple[str, ...],
                       member: str,
                       shard_count: int,
                       partitioner: Partitioner,
                       uri_for_shard=None) -> list[tuple[Document, int]]:
    """Split ``document`` into ``shard_count`` fragment documents.

    Returns ``[(shard_document, member_count), ...]`` in shard order.
    Every shard repeats the spine; shard 0 keeps all non-member
    content. A shard assigned no members still exists (its container is
    simply empty) so placements stay uniform.
    """
    members = collection_members(document, container_path, member)
    assignments = partitioner.assign(members, shard_count)
    if len(assignments) != len(members):
        raise ClusterError(
            f"partitioner returned {len(assignments)} assignments for "
            f"{len(members)} members")
    by_shard: dict[int, set[int]] = {s: set() for s in range(shard_count)}
    for node, shard in zip(members, assignments):
        if not 0 <= shard < shard_count:
            raise ClusterError(f"partitioner assigned shard {shard} "
                               f"outside 0..{shard_count - 1}")
        by_shard[shard].add(node.pre)

    container = find_container(document, container_path)
    spine = _spine_pres(container)
    out: list[tuple[Document, int]] = []
    for shard in range(shard_count):
        uri = (uri_for_shard(shard) if uri_for_shard is not None
               else f"{document.uri}#s{shard}")
        builder = DocumentBuilder(uri)
        if document.root.kind == NodeKind.DOCUMENT:
            builder.start_document()
            top: Node | None = _first_element_child(document.root)
        else:
            top = document.root
        assert top is not None
        _copy_shard(builder, top, spine, container.pre, member,
                    keep=by_shard[shard], full=(shard == 0))
        if document.root.kind == NodeKind.DOCUMENT:
            builder.end_document()
        out.append((builder.finish(), len(by_shard[shard])))
    return out


def _spine_pres(container: Node) -> set[int]:
    """Pre ranks of the container and its element ancestors."""
    spine = {container.pre}
    parent = container.parent()
    while parent is not None and parent.kind == NodeKind.ELEMENT:
        spine.add(parent.pre)
        parent = parent.parent()
    return spine


def _copy_shard(builder: DocumentBuilder, node: Node, spine: set[int],
                container_pre: int, member: str, keep: set[int],
                full: bool) -> None:
    """Copy one spine element: attributes always, children filtered.

    ``full`` (shard 0) keeps everything except members assigned to
    other shards; otherwise only the spine chain and assigned members
    survive.
    """
    builder.start_element(node.name)
    for attr in attribute_axis(node):
        builder.attribute(attr.name, attr.value)
    for child in child_axis(node):
        is_member = (node.pre == container_pre
                     and child.kind == NodeKind.ELEMENT
                     and child.name == member)
        if is_member:
            if child.pre in keep:
                builder.copy_subtree(child)
        elif child.pre in spine:
            _copy_shard(builder, child, spine, container_pre, member,
                        keep, full)
        elif full:
            builder.copy_subtree(child)
    builder.end_element()
