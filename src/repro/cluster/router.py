"""The scatter-gather router: executing one logical call site against
every shard of a collection.

When a federated run reaches an XRPC call site (or a data-shipping
document fetch) whose destination is a catalog virtual host, the
router takes over:

1. **rewrite** — the shipped body's ``doc("xrpc://{collection}/{doc}")``
   references are rewritten per shard to the shard fragment's *local*
   name (``doc("people.xml#s2")``), which resolves in the executing
   replica's own document space. The rewritten request is therefore
   byte-identical across replicas of one shard, so any replica can
   serve any replica's cached response.
2. **scatter** — one round trip per shard, fanned out over a bounded
   thread pool (``catalog.max_scatter_parallelism``; the transport's
   per-peer gates still bound per-replica pressure). Before fanning
   out, member-filter bodies
   (``for $m in coll return if ($m/... op literal) then .. else ()``)
   are probed against each shard's local value index
   (:func:`shard_skip_probes`): a shard where provably no node
   satisfies the filter contributes exactly ``()`` per call, so its
   round trip is skipped outright (``RunStats.shards_skipped``). Each
   shard call gets a private :class:`RunStats` / :class:`CostCounter`
   so the accounting stays race-free; they are merged in shard order
   after the gather, keeping the run's totals deterministic.
3. **replica selection** — per shard, live replicas (catalog health)
   are ordered by the transport's live load (in-flight exchanges,
   then total bytes served, then placement order), so the least-loaded
   replica serves the call.
4. **failover** — a :class:`~repro.errors.NetworkError` from the wire
   (injected faults, killed peers) moves the call to the next replica
   in the order; each switch increments ``RunStats.failovers``. Only
   when every replica fails does the query fail.
5. **gather** — :func:`~repro.cluster.gather.gather_plan` picks the
   combinator: shard-major concatenation for map-shaped bodies
   (document order under range partitioning), addition for
   ``count``/``sum`` aggregates (the pushdown keeps N numbers, not N
   member sequences, on the wire), OR/AND for ``some``/``every``.
   Bodies with global order/position semantics (``order by``,
   positional predicates, ``position()``) are *not* scattered: they
   fall back to exact evaluation at the originator over the merged
   collection document.

Scatter-safety contract: a sharded collection is addressed through its
*members* (the partitioned elements). Queries returning spine elements
(e.g. the container itself) see one copy per shard — the standard
scatter-gather caveat, documented rather than policed.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

from repro.cluster.catalog import (
    ClusterCatalog, ClusterError, CollectionSpec, ShardInfo,
)
from repro.cluster.gather import gather_plan, merge_shard_documents
from repro.errors import (
    NetworkError, PeerUnavailableError, TransientNetworkError,
)
from repro.runtime.transport import RetryPolicy
from repro.net.stats import RunStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, bind_stats_span, child_span
from repro.xmldb.document import Document, fresh_doc_seq
from repro.xmldb.node import Node
from repro.xmldb.parser import parse_document
from repro.xmldb.values import value_index
from repro.xquery.ast import (
    EmptySequence, Expr, ForExpr, FunCall, IfExpr, LetExpr, Literal,
    PathExpr, VarRef, XRPCExpr,
)
from repro.xquery.context import CostCounter
from repro.xquery.predicates import conjunction_members, literal_probe

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import _Run

XRPC_SCHEME = "xrpc://"

_DOC_FUNCTIONS = ("doc", "fn:doc")

#: Router-level default when the catalog carries no policy: a couple of
#: in-place retries per replica before failing over, zero base backoff
#: (the simulated wire has no real congestion to wait out).
_DEFAULT_RETRY = RetryPolicy()


class ShardUnavailableError(ClusterError):
    """Every replica of one shard failed (retries and failover
    exhausted). Distinct from other :class:`ClusterError`\\ s so the
    graceful-degradation policy can swallow exactly this case."""


def rewrite_doc_uris(expr: Expr,
                     mapping: Callable[[str], str | None]) -> Expr:
    """Rebuild ``expr`` with every literal ``doc(uri)`` argument passed
    through ``mapping`` (None keeps the original URI)."""
    def visit(node: Expr) -> Expr:
        if (isinstance(node, FunCall) and node.name in _DOC_FUNCTIONS
                and len(node.args) == 1):
            arg = node.args[0]
            if isinstance(arg, Literal) and isinstance(arg.value, str):
                replacement = mapping(arg.value)
                if replacement is not None:
                    return FunCall(node.name, [Literal(replacement)])
        return node.replace_children(visit)
    return visit(expr)


def unwrap_collection_xrpc(expr: Expr, collection: str) -> Expr:
    """Inline nested ``execute at`` wrappers that target ``collection``.

    A scattered body already runs *at* the shard replica; a nested
    XRPCExpr still aiming at the virtual host (the decomposer inserts
    one when the user wrote a literal ``execute at`` around the
    collection reference) would re-scatter from the replica with
    already-shard-local URIs — wrong on every shard but its own. The
    wrapper's parameter bindings become ``let``s, so the body is
    evaluated in place with identical semantics.
    """
    def visit(node: Expr) -> Expr:
        if isinstance(node, XRPCExpr) and isinstance(node.dest, Literal) \
                and isinstance(node.dest.value, str):
            host = node.dest.value
            if host.startswith(XRPC_SCHEME):
                host = host[len(XRPC_SCHEME):].split("/", 1)[0]
            if host == collection:
                inlined: Expr = node.body.replace_children(visit)
                for param in reversed(node.params):
                    inlined = LetExpr(param.name, param.value, inlined)
                return inlined
        return node.replace_children(visit)
    return visit(expr)


def split_xrpc_uri(uri: str) -> tuple[str, str] | None:
    """``(host, local_name)`` of an ``xrpc://host/local`` URI (None
    for non-xrpc URIs and malformed ones with an empty host)."""
    if not uri.startswith(XRPC_SCHEME):
        return None
    rest = uri[len(XRPC_SCHEME):]
    if "/" not in rest:
        return None
    host, local_name = rest.split("/", 1)
    return (host, local_name) if host else None


def shard_skip_probes(body: Expr,
                      collection: str) -> list[tuple[str, str, object]]:
    """Necessary-condition probes for skipping shards of ``collection``.

    Recognises the member-filter map shape ``for $m in <collection
    path> return if (cond) then ... else ()`` (optionally under
    ``let`` bindings) and extracts ``(key, op, literal)`` conditions
    from ``cond``'s leading conjuncts: if *no* node named ``key`` in a
    shard fragment satisfies ``op literal``, the condition is false
    for every member of that shard and the shard's contribution is
    provably ``()`` — the scatter can skip the round trip entirely.

    Error parity: a skipped shard evaluates nothing, so a conjunct is
    only usable while every conjunct to its left is itself a
    recognised *raise-free* literal comparison (``literal_probe`` with
    ``pure=True``: predicate-free path, literal of a type untyped
    atoms always pair with); scanning stops at the first unrecognised
    conjunct. ``let`` values are peeled only when they are literals,
    variable references, or predicate-free collection-rooted paths,
    for the same reason.
    """
    rooted: set[str] = set()
    while isinstance(body, LetExpr):
        if _rooted_in_collection(body.value, collection, rooted):
            rooted.add(body.var)
        elif not isinstance(body.value, (Literal, VarRef)):
            return []
        body = body.body
    if not isinstance(body, ForExpr) or body.pos_var is not None:
        return []
    if not _rooted_in_collection(body.seq, collection, rooted):
        return []
    if not (isinstance(body.body, IfExpr)
            and isinstance(body.body.else_branch, EmptySequence)):
        return []
    probes: list[tuple[str, str, object]] = []
    for conjunct in conjunction_members(body.body.cond):
        probe = literal_probe(conjunct, var=body.var, pure=True)
        if probe is None:
            break
        probes.append(probe)
    return probes


def _rooted_in_collection(expr: Expr, collection: str,
                          rooted_vars: set[str]) -> bool:
    """True when ``expr``'s items all come from the collection's
    member stream (a ``doc()`` call on the collection, a path over
    one, or a variable bound to one)."""
    if isinstance(expr, VarRef):
        return expr.name in rooted_vars
    if isinstance(expr, PathExpr):
        # Step predicates could raise during evaluation, which a
        # skipped shard would hide — only predicate-free paths qualify.
        if any(step.predicates for step in expr.steps):
            return False
        return _rooted_in_collection(expr.input, collection, rooted_vars)
    if isinstance(expr, FunCall) and expr.name in _DOC_FUNCTIONS \
            and len(expr.args) == 1:
        arg = expr.args[0]
        return (isinstance(arg, Literal) and isinstance(arg.value, str)
                and arg.value.startswith(f"{XRPC_SCHEME}{collection}/"))
    return False


def _renumber_shard_fragments(outcomes: list["ScatterOutcome"]) -> None:
    """Reassign the response fragments' document sequence numbers in
    shard order.

    ``doc_seq`` (the inter-document order tie-break) is allocated at
    parse time, and concurrent scatter threads parse their responses in
    whatever order the wire finishes — so without renumbering, a later
    document-order sort (a local path step over the gathered items, a
    ``union``, ``<<``) could interleave shards arbitrarily. The
    fragments are query-private (unmarshalling always shreds fresh
    documents, even on cache hits), so the mutation is race-free; the
    relative order of multiple fragments within one shard's response is
    preserved.
    """
    for outcome in outcomes:
        docs: dict[int, Document] = {}
        for items in outcome.results:
            for item in items:
                if isinstance(item, Node):
                    docs.setdefault(id(item.doc), item.doc)
        for doc in sorted(docs.values(), key=lambda d: d.doc_seq):
            doc.doc_seq = fresh_doc_seq()


class ScatterOutcome:
    """One shard call's private accounting, merged after the gather."""

    __slots__ = ("results", "stats", "counter", "failovers", "retries")

    def __init__(self) -> None:
        self.results: list[list] = []
        self.stats = RunStats()
        self.counter = CostCounter()
        self.failovers = 0
        self.retries = 0


class ClusterRouter:
    """Routes one run's logical call sites through the catalog.

    Stateless beyond the run it serves; construction is cheap, so the
    federation builds one per logical call site.
    """

    def __init__(self, run: "_Run", catalog: ClusterCatalog):
        self.run = run
        self.catalog = catalog
        self.transport = run.transport
        # A bare stub run (tests probing replica_order alone) has no
        # federation; fall back to a private registry.
        federation = getattr(run, "federation", None)
        metrics = (federation.metrics if federation is not None
                   else MetricsRegistry())
        # Continuous observability (None ⇒ disabled, zero extra work):
        # the health tracker re-orders replica selection, the event log
        # records failovers and skips.
        monitor = getattr(federation, "monitor", None)
        self.monitor = monitor
        self.events = monitor.events if monitor is not None else None
        self.health = monitor.health if monitor is not None else None
        # Passive failure-detection evidence: every attempt outcome
        # feeds the membership tracker (when one is attached), so the
        # detector converges from live traffic between probe ticks.
        self.membership = getattr(federation, "membership", None)
        self._scatter_calls = metrics.counter(
            "scatter_calls_total", "scatter fan-outs per collection",
            ("collection",))
        self._scatter_skips = metrics.counter(
            "scatter_shards_skipped_total",
            "shard round trips proven empty by value-index probes",
            ("collection",))
        self._scatter_failovers = metrics.counter(
            "scatter_failovers_total",
            "replica switches after wire faults", ("collection",))
        self._scatter_retries = metrics.counter(
            "scatter_retries_total",
            "in-place retries after transient wire faults",
            ("collection",))
        self._scatter_partials = metrics.counter(
            "scatter_partial_shards_total",
            "shards answered as flagged-empty under partial=allow",
            ("collection",))
        # Per-shard heat: the rebalancer's primary signal. Labeled by
        # the shard's *local_name* (stable across split renumbering —
        # indexes shift when a split inserts a shard, local names
        # never do). Skipped shards served nothing and are not
        # counted.
        self._shard_serves = metrics.counter(
            "scatter_shard_serves_total",
            "shard round trips actually served (skips excluded)",
            ("collection", "shard"))
        self._shard_seconds = metrics.counter(
            "scatter_shard_seconds_total",
            "simulated wire seconds spent serving each shard",
            ("collection", "shard"))
        self._shard_bytes = metrics.counter(
            "scatter_shard_bytes_total",
            "wire bytes served from each shard",
            ("collection", "shard"))

    def _note_shard_serve(self, spec: CollectionSpec, shard: ShardInfo,
                          outcome: "ScatterOutcome") -> None:
        """Record one served shard round trip into the per-shard heat
        counters the rebalancer reads."""
        self._shard_serves.labels(spec.name, shard.local_name).inc()
        sim_s = outcome.stats.times.total
        if sim_s > 0:
            self._shard_seconds.labels(spec.name,
                                       shard.local_name).inc(sim_s)
        nbytes = outcome.stats.total_transferred_bytes
        if nbytes > 0:
            self._shard_bytes.labels(spec.name,
                                     shard.local_name).inc(nbytes)

    # -- replica selection --------------------------------------------------

    def replica_order(self, shard: ShardInfo) -> list[str]:
        """Live replicas, healthy-then-least-loaded first.

        The leading key is the fleet monitor's health standing (when a
        monitor is attached): a *degrading* replica — alive, answering,
        but demoted by its windowed score — sorts behind every healthy
        one, so it stops receiving first-choice traffic before it ever
        fails a request. Within a health bucket, order is the live load
        (in-flight exchanges, then total bytes served, then placement
        order as the deterministic tie-break). Demoted replicas stay in
        the order: they are still the failover path of last resort.
        """
        live = self.catalog.live_replicas(shard)
        loads = self.transport.peer_loads()
        health = self.health

        def load_key(peer: str) -> tuple[int, int, int, int]:
            in_flight, total_bytes = loads.get(peer, (0, 0))
            demoted = (0 if health is None or health.healthy(peer)
                       else 1)
            return (demoted, in_flight, total_bytes,
                    shard.replicas.index(peer))

        return sorted(live, key=load_key)

    # -- scatter-gather over XRPC -------------------------------------------

    def scatter(self, from_peer: str, spec: CollectionSpec,
                calls: list[list[tuple[str, list]]],
                body: Expr,
                stats: RunStats | None = None,
                counter: CostCounter | None = None) -> list[list]:
        """Execute one XRPC call site against every shard and gather.

        Bodies that are not scatter-safe (global order/position
        constructs, non-additive aggregates, collection re-references
        outside generator position) are instead evaluated at the
        originator over the merged collection document — exact
        semantics at data-shipping cost.

        ``stats``/``counter`` are the caller's accounting targets (the
        run's by default; a shard call's private ones when this call
        site is nested inside another scatter).
        """
        epoch = self.catalog.epoch()
        # The physical plan keys this call site's message semantics by
        # the original body object; resolve it (and the explain-analyze
        # alias to the logical site) before the rewrite below replaces
        # that object with shard-local variants.
        semantics = self.run.semantics_for(id(body))
        logical_site = self.run.site_alias.get(id(body), id(body))
        body = unwrap_collection_xrpc(body, spec.name)
        combine = gather_plan(body, spec.name)
        if combine is None:
            return self._evaluate_locally(from_peer, calls, body,
                                          stats=stats, counter=counter)

        # Shard bodies are built (and their projection specs plus
        # semantics/site aliases registered) up front on the caller's
        # thread: the dicts and the AST are then only read by the
        # scatter workers.
        proj_spec = self.run.projection_specs.get(id(body))
        shard_bodies: list[Expr] = []
        for shard in spec.shards:
            shard_body = rewrite_doc_uris(
                body, lambda uri, s=shard: self._map_uri(uri, spec, s))
            if proj_spec is not None:
                self.run.projection_specs[id(shard_body)] = proj_spec
            self.run.site_semantics[id(shard_body)] = semantics
            self.run.site_alias[id(shard_body)] = logical_site
            shard_bodies.append(shard_body)

        probes = shard_skip_probes(body, spec.name)
        skip = [self._shard_provably_empty(shard, probes)
                for shard in spec.shards] if probes else [False] * len(
                    spec.shards)

        with child_span("scatter", collection=spec.name,
                        shards=len(spec.shards)) as scatter_span:
            def call_shard(index: int) -> ScatterOutcome:
                shard = spec.shards[index]
                outcome = ScatterOutcome()
                shard_key = f"{spec.name}#s{shard.index}"
                if skip[index]:
                    # The shard-local value index proved the member
                    # filter selects nothing here: the shard's
                    # contribution is exactly one empty sequence per
                    # call, with no round trip at all. ("skips" is the
                    # numeric twin of the "skipped" flag — it survives
                    # cross-query merging, where booleans OR.)
                    outcome.results = [[] for _ in calls]
                    outcome.stats.shards_skipped = 1
                    outcome.stats.per_shard[shard_key] = {
                        "bytes": 0, "messages": 0, "sim_s": 0.0,
                        "cache_hits": 0, "failovers": 0, "skips": 1,
                        "skipped": True}
                    if self.events is not None:
                        self.events.emit(
                            "shard_skip",
                            f"shard {shard_key} skipped: value-index "
                            f"probe proved the member filter empty",
                            severity="info", collection=spec.name,
                            shard=shard.index)
                    return outcome
                # Scatter workers are fresh threads with no ambient
                # span; the explicit parent hands them the tree.
                partial = False
                with child_span("shard", parent=scatter_span,
                                shard=shard.index, collection=spec.name):
                    try:
                        outcome.results = self._with_failover(
                            shard, outcome,
                            lambda replica: self.run._round_trip(
                                from_peer, replica, calls,
                                shard_bodies[index],
                                cache_scope=shard_key, shard_epoch=epoch,
                                stats=outcome.stats,
                                remote_counter=outcome.counter),
                            collection=spec.name)
                    except ShardUnavailableError:
                        if self.catalog.partial_policy != "allow":
                            raise
                        # Graceful degradation: the shard has zero
                        # serving replicas; answer () per call and flag
                        # the hole instead of failing the whole query.
                        partial = True
                        outcome.results = [[] for _ in calls]
                        outcome.stats.partial_shards = 1
                        if self.events is not None:
                            self.events.emit(
                                "partial_result",
                                f"shard {shard_key} unavailable; "
                                f"returning flagged partial answer "
                                f"(partial=allow)",
                                severity="warning",
                                collection=spec.name, shard=shard.index)
                outcome.stats.per_shard[shard_key] = {
                    "bytes": outcome.stats.total_transferred_bytes,
                    "messages": outcome.stats.messages,
                    "sim_s": outcome.stats.times.total,
                    "cache_hits": outcome.stats.cache_hits,
                    "failovers": outcome.failovers,
                    "retries": outcome.retries,
                    "skips": 0,
                    "skipped": False,
                    "partial": partial,
                }
                self._note_shard_serve(spec, shard, outcome)
                return outcome

            try:
                outcomes = self._fan_out(len(spec.shards), call_shard)
            finally:
                # The shard ASTs are per-scatter temporaries; their
                # id() keys must not outlive them (a later allocation
                # could reuse the address and falsely inherit the
                # spec).
                for shard_body in shard_bodies:
                    if proj_spec is not None:
                        self.run.projection_specs.pop(id(shard_body),
                                                      None)
                    self.run.site_semantics.pop(id(shard_body), None)
                    self.run.site_alias.pop(id(shard_body), None)
            self._merge_outcomes(outcomes, shards=len(spec.shards),
                                 stats=stats, counter=counter)
            skipped = sum(o.stats.shards_skipped for o in outcomes)
            failovers = sum(o.failovers for o in outcomes)
            retries = sum(o.retries for o in outcomes)
            partials = sum(o.stats.partial_shards for o in outcomes)
            self._scatter_calls.labels(spec.name).inc()
            if skipped:
                self._scatter_skips.labels(spec.name).inc(skipped)
            if failovers:
                self._scatter_failovers.labels(spec.name).inc(failovers)
            if retries:
                self._scatter_retries.labels(spec.name).inc(retries)
            if partials:
                self._scatter_partials.labels(spec.name).inc(partials)
            if scatter_span is not None:
                per_shard: dict[str, dict] = {}
                for outcome in outcomes:
                    per_shard.update(outcome.stats.per_shard)
                scatter_span.set(shards_skipped=skipped,
                                 failovers=failovers, retries=retries,
                                 partial_shards=partials,
                                 per_shard=per_shard)
            _renumber_shard_fragments(outcomes)
            return combine([outcome.results for outcome in outcomes])

    # -- cluster document fetch (data shipping) -----------------------------

    def fetch_collection_document(self, spec: CollectionSpec,
                                  local_name: str, requester: str,
                                  stats: RunStats | None = None,
                                  parent_span: "Span | None" = None
                                  ) -> tuple[Document, int]:
        """Ship every shard from a live replica and reassemble the
        logical document. Returns ``(document, total wire bytes)``.
        ``parent_span`` is the caller's ``ship`` span; shard fetches
        become its children (fetches run on pool threads with no
        ambient span, so the handoff is explicit)."""
        if local_name != spec.document:
            raise ClusterError(
                f"collection {spec.name!r} has no document "
                f"{local_name!r} (expected {spec.document!r})")

        def fetch_shard(index: int) -> ScatterOutcome:
            shard = spec.shards[index]
            outcome = ScatterOutcome()
            shard_key = f"{spec.name}#s{shard.index}"

            def attempt(replica: str) -> list:
                peer = self.run.federation.peer(replica)
                text = self.transport.fetch_document(
                    peer, shard.local_name, outcome.stats)
                return [text]

            with child_span("shard", parent=parent_span,
                            shard=shard.index,
                            collection=spec.name) as shard_span, \
                    bind_stats_span(outcome.stats, shard_span):
                outcome.results = self._with_failover(
                    shard, outcome, attempt, collection=spec.name)
            outcome.stats.per_shard[shard_key] = {
                "bytes": outcome.stats.total_transferred_bytes,
                "messages": outcome.stats.messages,
                "sim_s": outcome.stats.times.total,
                "cache_hits": outcome.stats.cache_hits,
                "failovers": outcome.failovers,
                "retries": outcome.retries,
                "skips": 0,
                "skipped": False,
            }
            self._note_shard_serve(spec, shard, outcome)
            return outcome

        outcomes = self._fan_out(len(spec.shards), fetch_shard)
        self._merge_outcomes(outcomes, shards=len(spec.shards),
                             stats=stats)
        failovers = sum(o.failovers for o in outcomes)
        retries = sum(o.retries for o in outcomes)
        if failovers:
            self._scatter_failovers.labels(spec.name).inc(failovers)
        if retries:
            self._scatter_retries.labels(spec.name).inc(retries)
        texts = [outcome.results[0] for outcome in outcomes]
        shard_docs = [
            parse_document(text,
                           uri=f"{XRPC_SCHEME}{spec.name}/{shard.local_name}")
            for text, shard in zip(texts, spec.shards)
        ]
        merged = merge_shard_documents(
            shard_docs, uri=f"{XRPC_SCHEME}{spec.name}/{local_name}",
            container_path=spec.container_path)
        return merged, sum(len(text.encode()) for text in texts)

    # -- local fallback ------------------------------------------------------

    def _evaluate_locally(self, from_peer: str,
                          calls: list[list[tuple[str, list]]],
                          body: Expr,
                          stats: RunStats | None = None,
                          counter: CostCounter | None = None) -> list[list]:
        """Evaluate a non-scatter-safe body at the originator, with the
        collection resolved through the run's document resolver (which
        ships and merges the shards, with caching and failover). Exact
        semantics, data-shipping cost — the safety valve for global
        order/position constructs."""
        from repro.xquery.context import DynamicContext
        from repro.xquery.evaluator import Evaluator

        run = self.run
        evaluator = Evaluator(run.decomposition.module,
                              run.federation.static)
        results: list[list] = []
        for params in calls:
            env = DynamicContext(
                variables={name: value for name, value in params},
                resolve_doc=run._resolver(from_peer, stats=stats),
                xrpc_execute=run._make_xrpc_execute(from_peer, stats=stats,
                                                    counter=counter),
                counter=run.local_counter,
            )
            results.append(evaluator.evaluate(body, env))
        return results

    # -- shard skipping ------------------------------------------------------

    def _shard_provably_empty(self, shard: ShardInfo,
                              probes: list[tuple[str, str, object]]
                              ) -> bool:
        """Probe a live replica's shard-local value index with the
        body's necessary conditions; True when any probe proves the
        member filter selects nothing in this shard.

        The in-process simulation reads the replica's document
        directly — the stand-in for what a deployed system would keep
        catalog-side (per-shard value synopses / bloom filters). Only
        *live* replicas are consulted, so a fully-failed shard still
        surfaces its ClusterError instead of being silently skipped.
        """
        for replica in self.catalog.live_replicas(shard):
            peer = self.run.federation.peers.get(replica)
            if peer is None:
                continue
            document = peer.documents.get(shard.local_name)
            if document is None:
                continue
            vindex = value_index(document)
            for key, op, value in probes:
                matched = vindex.probe(key, op, value)
                if matched is not None and not matched:
                    return True
            return False
        return False

    # -- internals ----------------------------------------------------------

    def _map_uri(self, uri: str, spec: CollectionSpec,
                 shard: ShardInfo) -> str | None:
        parts = split_xrpc_uri(uri)
        if parts is None or parts[0] != spec.name:
            return None
        if parts[1] != spec.document:
            raise ClusterError(
                f"collection {spec.name!r} has no document {parts[1]!r} "
                f"(expected {spec.document!r})")
        # Relative URI: resolves in the executing replica's own document
        # space, keeping the request byte-identical across replicas.
        return shard.local_name

    def _with_failover(self, shard: ShardInfo, outcome: ScatterOutcome,
                       attempt: Callable[[str], list],
                       collection: str = "") -> list:
        """Run ``attempt`` against replicas in health-then-load order.

        *Transient* wire faults (injected faults, request timeouts —
        :class:`~repro.errors.TransientNetworkError`) are first retried
        **in place** on the same replica under the catalog's
        :class:`~repro.runtime.transport.RetryPolicy`: up to
        ``attempts`` tries per replica, drawing from one shared
        ``budget`` across the whole shard call, with seeded-jitter
        exponential backoff between tries. *Fatal* faults
        (:class:`PeerDownError` — the peer is gone, retrying the same
        wire is pointless) skip straight to the next replica; each
        replica switch is a counted failover. Query-level errors
        propagate immediately — they are not :class:`NetworkError`\\ s
        and must never burn retries or trigger failover.

        Every attempt's wall time and outcome feed the per-peer health
        windows, and (when a membership tracker is attached) wire-fault
        outcomes feed its suspicion ladder as passive evidence.
        """
        order = self.replica_order(shard)
        policy = self.catalog.retry_policy or _DEFAULT_RETRY
        rng = random.Random(policy.seed)
        budget = policy.budget
        last_error: NetworkError | None = None
        health = self.health
        membership = self.membership
        for position, replica in enumerate(order):
            for try_index in range(max(1, policy.attempts)):
                started = time.perf_counter()
                try:
                    result = attempt(replica)
                except NetworkError as exc:
                    if health is not None:
                        health.record(replica,
                                      time.perf_counter() - started,
                                      ok=False)
                    if membership is not None and isinstance(
                            exc, (TransientNetworkError,
                                  PeerUnavailableError)):
                        membership.record_failure(replica, exc)
                    last_error = exc
                    if isinstance(exc, TransientNetworkError) \
                            and try_index + 1 < policy.attempts \
                            and budget > 0:
                        budget -= 1
                        outcome.retries += 1
                        delay = policy.backoff_s(try_index, rng)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    break  # fatal fault or retries spent: fail over
                else:
                    if health is not None:
                        health.record(replica,
                                      time.perf_counter() - started,
                                      ok=True)
                    if membership is not None:
                        membership.record_success(replica)
                    return result
            if position + 1 < len(order):
                outcome.failovers += 1
                if self.events is not None:
                    self.events.emit(
                        "failover",
                        f"shard {collection}#s{shard.index}: "
                        f"{replica} failed "
                        f"({type(last_error).__name__}), trying "
                        f"{order[position + 1]}",
                        severity="warning", collection=collection,
                        shard=shard.index, replica=replica,
                        next=order[position + 1])
        raise ShardUnavailableError(
            f"all {len(order)} replicas of shard {shard.index} "
            f"({', '.join(order)}) failed") from last_error

    def _fan_out(self, count: int,
                 call: Callable[[int], ScatterOutcome]
                 ) -> list[ScatterOutcome]:
        """Run ``call(0..count-1)`` with bounded parallelism, results in
        shard order. The pool is per-scatter (threads are cheap at this
        fan-out, and a shared pool could deadlock on nested scatters)."""
        parallelism = min(count, max(1, self.catalog.max_scatter_parallelism))
        if parallelism <= 1 or count <= 1:
            return [call(index) for index in range(count)]
        with ThreadPoolExecutor(
                max_workers=parallelism,
                thread_name_prefix="cluster-scatter") as pool:
            return list(pool.map(call, range(count)))

    def _merge_outcomes(self, outcomes: list[ScatterOutcome],
                        shards: int,
                        stats: RunStats | None = None,
                        counter: CostCounter | None = None) -> None:
        """Fold the shard calls' private accounting into the caller's
        targets (the run's by default), in shard order — deterministic
        totals under concurrency."""
        if stats is None:
            stats = self.run.stats
        if counter is None:
            counter = self.run.remote_counter
        stats.scatter_shards += shards
        for outcome in outcomes:
            stats.merge(outcome.stats)
            stats.failovers += outcome.failovers
            stats.retries += outcome.retries
            counter.ticks += outcome.counter.ticks
            counter.nodes_visited += outcome.counter.nodes_visited
            counter.docs_opened += outcome.counter.docs_opened
