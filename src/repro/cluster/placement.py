"""Shard placement: turning one document into a registered, replicated
cluster collection.

:func:`create_sharded_collection` is the cluster bootstrap: it
partitions the source document (:mod:`repro.cluster.partitioner`),
stores every shard fragment on ``replication_factor`` peers chosen
round-robin (so consecutive shards land on disjoint replica sets
whenever the fleet allows it), and registers the resulting
:class:`~repro.cluster.catalog.CollectionSpec` in the catalog —
bumping the membership epoch exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.catalog import (
    ClusterCatalog, ClusterError, CollectionSpec, ShardInfo,
)
from repro.cluster.partitioner import (
    Partitioner, make_partitioner, partition_document,
)
from repro.xmldb.document import Document

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation


class InsufficientHealthyPeersError(ClusterError):
    """Too few healthy peers remain to satisfy the requested
    replication — placing on dead/evicted/draining peers would only
    fake the replica count."""


def shard_local_name(document: str, index: int) -> str:
    """The per-peer document name of one shard fragment."""
    return f"{document}#s{index}"


def healthy_peers(peers: list[str], catalog: ClusterCatalog | None = None,
                  membership=None) -> list[str]:
    """``peers`` minus everything fresh placements must skip: peers
    the catalog marks down or draining, and peers the membership
    tracker holds DEAD/EVICTED."""
    from repro.cluster.membership import DEAD, EVICTED
    out = []
    for name in peers:
        if catalog is not None and (catalog.is_down(name)
                                    or catalog.is_draining(name)):
            continue
        if membership is not None \
                and membership.state(name) in (DEAD, EVICTED):
            continue
        out.append(name)
    return out


def round_robin_placement(peers: list[str], shard_count: int,
                          replication_factor: int) -> list[tuple[str, ...]]:
    """Replica sets per shard: shard ``i`` lands on peers
    ``i, i+1, .. i+r-1 (mod fleet)``, spreading both primaries and
    replicas evenly."""
    if replication_factor < 1:
        raise ClusterError(
            f"replication factor must be >= 1, got {replication_factor}")
    if replication_factor > len(peers):
        raise InsufficientHealthyPeersError(
            f"replication factor {replication_factor} exceeds the "
            f"{len(peers)}-peer fleet")
    return [
        tuple(peers[(shard + offset) % len(peers)]
              for offset in range(replication_factor))
        for shard in range(shard_count)
    ]


def create_sharded_collection(federation: "Federation",
                              catalog: ClusterCatalog,
                              name: str,
                              document: Document,
                              document_name: str,
                              container_path: tuple[str, ...],
                              member: str,
                              shard_count: int,
                              replication_factor: int = 2,
                              peers: list[str] | None = None,
                              partitioning: str = "range",
                              partitioner: Partitioner | None = None,
                              key_attribute: str = "id") -> CollectionSpec:
    """Partition ``document`` and register it as collection ``name``.

    ``peers`` (default: every current federation peer, sorted) is the
    fleet shards are placed on. Each shard is stored on its replica
    peers under :func:`shard_local_name`; queries then address
    ``xrpc://{name}/{document_name}``.
    """
    if federation.peers.get(name) is not None:
        raise ClusterError(
            f"collection name {name!r} collides with a peer name")
    if peers is None:
        peers = sorted(federation.peers)
    if not peers:
        raise ClusterError("no peers available for shard placement")
    for peer_name in peers:
        federation.peer(peer_name)  # raises on unknown peer
    # Fresh fragments never land on peers that cannot serve them (or
    # are on their way out): filter against the catalog's down and
    # draining marks and the membership tracker's verdicts.
    usable = healthy_peers(peers, catalog,
                           getattr(federation, "membership", None))
    if len(usable) < replication_factor:
        raise InsufficientHealthyPeersError(
            f"collection {name!r} needs {replication_factor} healthy "
            f"peers, only {len(usable)} of {len(peers)} remain")
    peers = usable

    if partitioner is None:
        partitioner = make_partitioner(partitioning, key_attribute)
    partitioning_kind = partitioner.kind

    fragments = partition_document(
        document, container_path, member, shard_count, partitioner,
        uri_for_shard=lambda s: f"xrpc://{name}/"
                                f"{shard_local_name(document_name, s)}")
    placements = round_robin_placement(peers, shard_count,
                                       replication_factor)

    shards: list[ShardInfo] = []
    for index, ((fragment, member_count), replicas) in enumerate(
            zip(fragments, placements)):
        local_name = shard_local_name(document_name, index)
        for replica in replicas:
            federation.peer(replica).store(local_name, fragment)
        shards.append(ShardInfo(index=index, local_name=local_name,
                                replicas=replicas, members=member_count))

    spec = CollectionSpec(name=name, document=document_name,
                          container_path=container_path, member=member,
                          shards=tuple(shards),
                          partitioning=partitioning_kind,
                          replication_factor=replication_factor)
    catalog.register(spec)
    return spec
