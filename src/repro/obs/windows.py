"""Rolling time-window aggregation: ring-buffer buckets over a clock.

PR 6's :class:`~repro.obs.metrics.MetricsRegistry` answers *cumulative*
questions — totals since process start. Fleet operations need the
*windowed* view: "what is the p99 over the last 30 seconds", "how fast
are failovers happening right now". This module provides that layer:

* :class:`QuantileSketch` — a bounded-error quantile sketch
  (DDSketch-style logarithmic buckets): any quantile of a non-negative
  stream is answered within relative error ``eps`` using O(log range)
  memory, and sketches merge exactly — which is what makes per-bucket
  percentiles composable into per-window percentiles.
* :class:`RollingWindow` — a ring of ``buckets`` time buckets, each
  ``width_s`` seconds wide on the supplied ``clock`` (wall-clock
  ``time.monotonic`` by default; tests and simulations inject their
  own). Observations land in the current bucket; reads merge the most
  recent buckets into windowed ``count`` / ``sum`` / ``mean`` /
  ``rate`` / ``quantile``. Rotation is lazy (no timer thread): every
  observe/read advances the ring to the clock's current period,
  clearing buckets whose time has passed. A clock that jumps backwards
  (skew) never clears data — observations keep landing in the newest
  bucket; a jump forward past the whole ring clears everything.
* :class:`RollingWindowFamily` — per-label windows (one per peer),
  created lazily, sharing one configuration.
* :class:`RegistryWindows` — windowed ``rate()`` over the cumulative
  counters of a :class:`~repro.obs.metrics.MetricsRegistry`: each
  :meth:`~RegistryWindows.sample` reads the registry snapshot and
  feeds counter *deltas* into rolling windows, so the console can show
  "wire bytes/s per peer over the last 10s" from the same series the
  cumulative snapshot exports.

Everything here is thread-safe (one lock per window) and allocation-
light; nothing registers timers or threads, so an unused window is
exactly the memory it holds.
"""

from __future__ import annotations

import math
import threading
import time


class QuantileSketch:
    """Bounded-relative-error quantile sketch for non-negative streams.

    Values are assigned to logarithmic buckets with ratio
    ``gamma = (1 + eps) / (1 - eps)``; a bucket's representative value
    (the geometric midpoint ``2 * gamma**i / (gamma + 1)``) is within
    relative error ``eps`` of every value in the bucket, so the
    nearest-rank quantile estimate is within ``eps`` of the true item
    at that rank. Non-positive values (clock underflow artefacts) land
    in a dedicated zero bucket and report as ``0.0``.
    """

    __slots__ = ("eps", "_gamma", "_log_gamma", "_buckets", "_zero",
                 "count", "sum", "min", "max")

    def __init__(self, eps: float = 0.01):
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps {eps} out of range (0, 1)")
        self.eps = eps
        self._gamma = (1.0 + eps) / (1.0 - eps)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero += count
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + count

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (exact: bucket counts add).
        Requires the same ``eps`` (bucket boundaries must line up)."""
        if other.eps != self.eps:
            raise ValueError(
                f"cannot merge sketches with eps {other.eps} into {self.eps}")
        if other.count == 0:
            return
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._zero += other._zero
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0-100, nearest rank) within
        relative error ``eps``; 0.0 on an empty sketch."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of range")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self._zero:
            return max(0.0, self.min)
        seen = self._zero
        estimate = self.max
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                estimate = 2.0 * self._gamma ** index / (self._gamma + 1.0)
                break
        # Clamping into the observed range can only reduce the error.
        return min(max(estimate, self.min, 0.0), self.max)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
            "max": self.max if self.count else 0.0,
        }


class _Bucket:
    """One time bucket of a rolling window."""

    __slots__ = ("count", "sum", "sketch")

    def __init__(self, eps: float | None):
        self.count = 0
        self.sum = 0.0
        self.sketch = QuantileSketch(eps) if eps is not None else None

    def clear(self, eps: float | None) -> None:
        self.count = 0
        self.sum = 0.0
        if eps is not None:
            self.sketch = QuantileSketch(eps)

    def add(self, value: float, count: int) -> None:
        self.count += count
        self.sum += value * count
        if self.sketch is not None:
            self.sketch.add(value, count)


class RollingWindow:
    """A ring of ``buckets`` time buckets, ``width_s`` seconds each.

    ``observe(value)`` lands in the bucket covering ``clock()``'s
    current period; reads merge the most recent buckets. Pass
    ``window_s`` to any read to restrict it to the last
    ``ceil(window_s / width_s)`` buckets (capped at the ring size) —
    one window therefore serves both the burn-rate rule's long and
    short horizons. ``eps=None`` disables the per-bucket quantile
    sketch for count/sum-only windows (error counters).
    """

    def __init__(self, width_s: float = 1.0, buckets: int = 60,
                 clock=time.monotonic, eps: float | None = 0.01):
        if width_s <= 0:
            raise ValueError(f"width_s {width_s} must be positive")
        if buckets < 1:
            raise ValueError(f"buckets {buckets} must be >= 1")
        self.width_s = width_s
        self.buckets = buckets
        self.clock = clock
        self.eps = eps
        self._ring = [_Bucket(eps) for _ in range(buckets)]
        self._period: int | None = None       # newest period seen
        self._first_period: int | None = None  # first observation ever
        self._lock = threading.Lock()

    # -- rotation -------------------------------------------------------------

    def _roll(self, now: float) -> None:
        """Advance the ring to ``now``'s period, clearing buckets whose
        time has passed. A backwards clock (skew) never clears: the
        window keeps its newest period and new observations land there.
        """
        period = math.floor(now / self.width_s)
        if self._period is None:
            self._period = period
            self._first_period = period
            return
        steps = period - self._period
        if steps <= 0:
            return
        if steps >= self.buckets:
            for bucket in self._ring:
                bucket.clear(self.eps)
        else:
            for offset in range(1, steps + 1):
                self._ring[(self._period + offset) % self.buckets].clear(
                    self.eps)
        self._period = period

    # -- writes ---------------------------------------------------------------

    def observe(self, value: float = 1.0, count: int = 1) -> None:
        with self._lock:
            self._roll(self.clock())
            self._ring[self._period % self.buckets].add(value, count)

    # -- reads ----------------------------------------------------------------

    def _recent(self, window_s: float | None) -> list[_Bucket]:
        """The most recent buckets covering ``window_s`` (whole ring
        when None), newest first. Caller holds the lock."""
        self._roll(self.clock())
        if self._period is None:
            return []
        if window_s is None:
            span = self.buckets
        else:
            span = min(self.buckets, max(1, math.ceil(window_s
                                                      / self.width_s)))
        return [self._ring[(self._period - offset) % self.buckets]
                for offset in range(span)]

    def count(self, window_s: float | None = None) -> int:
        with self._lock:
            return sum(bucket.count for bucket in self._recent(window_s))

    def sum(self, window_s: float | None = None) -> float:
        with self._lock:
            return math.fsum(bucket.sum
                             for bucket in self._recent(window_s))

    def mean(self, window_s: float | None = None) -> float:
        with self._lock:
            recent = self._recent(window_s)
            count = sum(bucket.count for bucket in recent)
            total = math.fsum(bucket.sum for bucket in recent)
        return total / count if count else 0.0

    def covered_s(self, window_s: float | None = None) -> float:
        """The seconds the windowed read actually covers: the requested
        span, shortened when the window has existed for less (so early
        ``rate()`` reads do not under-report)."""
        with self._lock:
            recent = self._recent(window_s)
            if self._period is None or self._first_period is None:
                return 0.0
            lived = (self._period - self._first_period + 1) * self.width_s
        return min(len(recent) * self.width_s, lived)

    def rate(self, window_s: float | None = None) -> float:
        """Observations per second over the window."""
        covered = self.covered_s(window_s)
        return self.count(window_s) / covered if covered > 0 else 0.0

    def quantile(self, q: float, window_s: float | None = None) -> float:
        """Windowed percentile (0-100) from the merged bucket sketches;
        raises if the window was built with ``eps=None``."""
        if self.eps is None:
            raise ValueError("window has no quantile sketch (eps=None)")
        merged = QuantileSketch(self.eps)
        with self._lock:
            for bucket in self._recent(window_s):
                if bucket.sketch is not None and bucket.sketch.count:
                    merged.merge(bucket.sketch)
        return merged.quantile(q)

    def snapshot(self, window_s: float | None = None) -> dict[str, float]:
        """The windowed readout in one dict (console / JSON export)."""
        out: dict[str, float] = {
            "count": self.count(window_s),
            "sum": self.sum(window_s),
            "mean": self.mean(window_s),
            "rate": self.rate(window_s),
        }
        if self.eps is not None:
            for q in (50, 95, 99):
                out[f"p{q}"] = self.quantile(q, window_s)
        return out


class RollingWindowFamily:
    """Per-label rolling windows (one per peer), created lazily with a
    shared configuration."""

    def __init__(self, width_s: float = 1.0, buckets: int = 60,
                 clock=time.monotonic, eps: float | None = 0.01):
        self.width_s = width_s
        self.buckets = buckets
        self.clock = clock
        self.eps = eps
        self._windows: dict[str, RollingWindow] = {}
        self._lock = threading.Lock()

    def labels(self, name: str) -> RollingWindow:
        window = self._windows.get(name)
        if window is None:
            with self._lock:
                window = self._windows.get(name)
                if window is None:
                    window = RollingWindow(self.width_s, self.buckets,
                                           self.clock, self.eps)
                    self._windows[name] = window
        return window

    def get(self, name: str) -> RollingWindow | None:
        """Non-creating read (absent labels stay absent)."""
        return self._windows.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._windows)


class RegistryWindows:
    """Windowed rates over a registry's cumulative counters.

    Each :meth:`sample` reads ``registry.snapshot()`` and feeds the
    *delta* of every counter series (plain and labeled) since the last
    sample into a rolling window keyed ``name`` or ``name{label}``.
    :meth:`rate` then answers "how fast is this counter moving over
    the last N seconds" — the reading the cumulative snapshot cannot
    give. Gauges and histograms are skipped (deltas are meaningless
    for them); a counter that appears to move backwards (registry
    swapped underneath) resets its baseline without feeding a negative
    delta.
    """

    def __init__(self, registry, width_s: float = 1.0, buckets: int = 60,
                 clock=time.monotonic):
        self.registry = registry
        self.windows = RollingWindowFamily(width_s, buckets, clock,
                                           eps=None)
        self._last: dict[str, float] = {}
        self._lock = threading.Lock()

    @staticmethod
    def series_key(name: str, label: str | None = None) -> str:
        return f"{name}{{{label}}}" if label is not None else name

    def sample(self) -> None:
        """Read the registry and feed counter deltas into the windows."""
        kinds = self.registry.kinds()
        snapshot = self.registry.snapshot()
        with self._lock:
            for name, value in snapshot.items():
                if kinds.get(name) != "counter":
                    continue
                if isinstance(value, dict):
                    for label, child in value.items():
                        self._feed(self.series_key(name, label), child)
                else:
                    self._feed(name, value)

    def _feed(self, key: str, value: float) -> None:
        last = self._last.get(key)
        self._last[key] = value
        if last is None:
            # First sighting: the cumulative value predates the window.
            return
        delta = value - last
        if delta > 0:
            self.windows.labels(key).observe(value=delta)

    def rate(self, name: str, label: str | None = None,
             window_s: float | None = None) -> float:
        """Counter units per second over the window (0.0 for series
        never sampled)."""
        window = self.windows.get(self.series_key(name, label))
        if window is None:
            return 0.0
        covered = window.covered_s(window_s)
        return window.sum(window_s) / covered if covered > 0 else 0.0

    def delta(self, name: str, label: str | None = None,
              window_s: float | None = None) -> float:
        """Counter units accumulated over the window."""
        window = self.windows.get(self.series_key(name, label))
        return window.sum(window_s) if window is not None else 0.0
