"""The metrics registry: Counter / Gauge / Histogram primitives with
labeled series, one uniform read path for every layer's counters.

Before this module, counts were smeared across the stack — the
transport kept private wire/in-flight dicts, the result cache its own
``CacheStats``, the router incremented ``RunStats`` fields, the index
layers counted nothing. Now each layer registers typed series in a
:class:`MetricsRegistry` (the federation owns one; module-level code
like the index builders uses the process-global registry) and every
consumer — benchmarks, tests, ``FederationEngine.summary()`` — reads
the same ``snapshot()`` / ``render_text()`` export.

Naming convention (one prefix per layer, so registries can be shared):

=============  ==========================================================
``wire_*``     transport truth (messages, bytes, in-flight) per peer
``cache_*``    result-cache hits/misses/evictions/invalidations
``scatter_*``  cluster router fan-out, skips, failovers per collection
``index_*``    structural/value index builds (count and seconds)
``query_*``    engine-level per-query aggregation (latency, plans)
=============  ==========================================================

All primitives are thread-safe (one small lock per series; series
creation locks the registry). Histograms keep exact observations (the
fleet sizes here are thousands, not billions), so percentiles are
exact — the same :func:`percentile` the runtime metrics always used,
now canonically housed here.
"""

from __future__ import annotations

import threading


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Edge cases: an empty list yields 0.0; a single value is every
    percentile of itself; ``q`` outside [0, 100] raises; the input
    need not be sorted (and is never mutated).
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    low_v, high_v = ordered[low], ordered[high]
    if weight == 0.0 or low_v == high_v:
        # Interpolating a*(1-w) + b*w between equal subnormals can
        # round both products to zero; answer exactly instead.
        return low_v
    return low_v + (high_v - low_v) * weight


class _Series:
    """Shared machinery of one unlabeled series (or one labeled child)."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Series):
    """A monotonically increasing count (float increments allowed —
    ``index_build_seconds_total`` accumulates seconds)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge(_Series):
    """A value that goes up and down (in-flight exchanges, pool sizes)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram(_Series):
    """Exact-observation histogram: count, sum, min/max, percentiles."""

    __slots__ = ("_values", "_count", "_sum")

    def __init__(self) -> None:
        super().__init__()
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return max(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        with self._lock:
            values = list(self._values)
        return percentile(values, q)

    def snapshot_value(self) -> dict[str, float]:
        with self._lock:
            values = list(self._values)
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "max": max(values) if values else 0.0,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_sort_key(item: tuple) -> tuple[str, ...]:
    """Deterministic ordering for labeled children: compare label
    values by their string form, so exports stay stable (and never
    raise) even when one label mixes value types (peer names next to
    shard indexes)."""
    return tuple(str(part) for part in item[0])


class LabeledMetric:
    """A family of series keyed by label values (``labels("peer1")`` or
    ``labels(peer="peer1")`` — positional follows the declared order)."""

    __slots__ = ("name", "kind", "labelnames", "_children", "_lock")

    def __init__(self, name: str, kind: str, labelnames: tuple[str, ...]):
        self.name = name
        self.kind = kind
        self.labelnames = labelnames
        self._children: dict[tuple, _Series] = {}
        self._lock = threading.Lock()

    def labels(self, *values, **kv):
        if kv:
            if values:
                raise TypeError("mix of positional and keyword labels")
            try:
                values = tuple(kv[name] for name in self.labelnames)
            except KeyError as exc:
                raise KeyError(
                    f"metric {self.name!r} has labels "
                    f"{self.labelnames}, got {sorted(kv)}") from exc
        else:
            values = tuple(values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects {len(self.labelnames)} "
                f"label value(s) {self.labelnames}, got {values!r}")
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values,
                                                  _KINDS[self.kind]())
        return child

    def get(self, *values) -> "_Series | None":
        """The child for ``values`` if it already exists (non-creating
        read — live-load lookups must not mint zero series)."""
        return self._children.get(tuple(values))

    def series(self) -> dict[tuple, "_Series"]:
        """A point-in-time copy of every child."""
        with self._lock:
            return dict(self._children)


class MetricsRegistry:
    """Typed, labeled series under unique names.

    ``counter``/``gauge``/``histogram`` are idempotent per name: the
    same call shape returns the existing series (so layers can look up
    a shared registry's series without threading handles around), and
    a kind or label mismatch raises rather than silently aliasing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, tuple[str, tuple[str, ...], object]] = {}
        self._help: dict[str, str] = {}

    # -- registration ---------------------------------------------------------

    def _register(self, name: str, kind: str, help_text: str,
                  labels: tuple[str, ...]):
        labels = tuple(labels)
        with self._lock:
            entry = self._metrics.get(name)
            if entry is not None:
                existing_kind, existing_labels, metric = entry
                if existing_kind != kind or existing_labels != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing_kind}{existing_labels}, not "
                        f"{kind}{labels}")
                return metric
            if labels:
                metric: object = LabeledMetric(name, kind, labels)
            else:
                metric = _KINDS[kind]()
            self._metrics[name] = (kind, labels, metric)
            if help_text:
                self._help[name] = help_text
            return metric

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> "Counter | LabeledMetric":
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> "Gauge | LabeledMetric":
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = ()
                  ) -> "Histogram | LabeledMetric":
        return self._register(name, "histogram", help, labels)

    def get(self, name: str):
        """The registered metric under ``name`` (None when absent)."""
        with self._lock:
            entry = self._metrics.get(name)
        return entry[2] if entry is not None else None

    def kinds(self) -> dict[str, str]:
        """Name → kind ("counter"/"gauge"/"histogram") for every
        registered metric — lets windowed consumers
        (:class:`~repro.obs.windows.RegistryWindows`) pick the series
        whose deltas are meaningful."""
        with self._lock:
            return {name: entry[0]
                    for name, entry in self._metrics.items()}

    # -- the uniform read path ------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Every series' current value, as plain data: unlabeled series
        map name → value; labeled series map name → {label values
        (comma-joined) → value}. Histograms export their summary dict.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, object] = {}
        for name in sorted(metrics):
            kind, labels, metric = metrics[name]
            if labels:
                series = metric.series()
                out[name] = {
                    ",".join(str(part) for part in key):
                        (child.snapshot_value() if kind == "histogram"
                         else child.value)
                    for key, child in sorted(series.items(),
                                             key=_label_sort_key)
                }
            elif kind == "histogram":
                out[name] = metric.snapshot_value()
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """A Prometheus-flavoured text rendering (for humans, examples
        and benchmark logs — not a wire-format guarantee). Fully
        deterministic: series are emitted in sorted name order and
        labeled children in sorted (stringified) label order, so two
        renderings of the same state diff cleanly in CI artifacts."""
        with self._lock:
            metrics = dict(self._metrics)
            helps = dict(self._help)
        lines: list[str] = []
        for name in sorted(metrics):
            kind, labels, metric = metrics[name]
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {kind}")
            if labels:
                for key, child in sorted(metric.series().items(),
                                         key=_label_sort_key):
                    pairs = ",".join(
                        f'{label}="{value}"'
                        for label, value in zip(labels, key))
                    if kind == "histogram":
                        summary = child.snapshot_value()
                        lines.append(f"{name}_count{{{pairs}}} "
                                     f"{summary['count']}")
                        lines.append(f"{name}_sum{{{pairs}}} "
                                     f"{summary['sum']}")
                        lines.append(f"{name}_p99{{{pairs}}} "
                                     f"{summary['p99']}")
                    else:
                        lines.append(f"{name}{{{pairs}}} {child.value}")
            elif kind == "histogram":
                summary = metric.snapshot_value()
                lines.append(f"{name}_count {summary['count']}")
                lines.append(f"{name}_sum {summary['sum']}")
                lines.append(f"{name}_p99 {summary['p99']}")
            else:
                lines.append(f"{name} {metric.value}")
        return "\n".join(lines)


#: The process-global registry: the home for metrics emitted by code
#: with no component handle (the per-document index builders). Scoped
#: consumers (transport, cache, engine) use the federation's registry.
GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return GLOBAL_REGISTRY
