"""Structured fleet events: a thread-safe bounded ring of typed records.

Metrics say *how much*; events say *what happened and when*. The
runtime emits one :class:`Event` per operationally interesting
transition — a failover, a peer kill/recover, a catalog epoch bump, a
cache invalidation sweep, a shard skipped by a probe, a query over the
slow threshold, a calibration-book generation bump, an SLO alert
firing or resolving — into one :class:`EventLog` owned by the fleet
monitor. The log is a bounded deque (old events fall off; cumulative
per-kind counts survive eviction), exports JSONL for CI artifacts,
and timestamps every event on both clocks: wall (``time.time``, for
humans reading the JSONL) and perf (``time.perf_counter``, the same
clock spans use, so :func:`repro.obs.export.chrome_trace_events` can
place events on the span timeline as instant markers).

Event kinds emitted by the wired subsystems:

========================  =====================================================
kind                      emitted by
========================  =====================================================
``failover``              router retry after a replica raised ``NetworkError``
``peer_down``             ``Transport.kill_peer`` / catalog ``mark_down``
``peer_up``               ``Transport.revive_peer`` / catalog ``mark_up``
``peer_degraded``         ``Transport.degrade_peer`` (latency injection)
``peer_restored``         ``Transport.restore_peer``
``epoch_bump``            catalog topology change (register/replace/drop/mark)
``cache_invalidation``    ``ResultCache.invalidate_peer`` dropping entries
``shard_skip``            router skipping a shard on an index/statistics probe
``slow_query``            monitor: wall time over the slow threshold
``calibration_bump``      planner feedback book advanced a generation
``health_demoted``        health tracker score fell below the demote threshold
``health_restored``       health tracker score recovered past restore threshold
``alert_fired``           SLO burn-rate rule breached (once per breach)
``alert_resolved``        burn rate fell back under the resolve ratio
``membership_suspect``    failure detector: replica entered *suspect*
``membership_dead``       failure detector: replica declared *dead*
``membership_alive``      failure detector: replica revived / rejoined
``replica_evicted``       detector evicted a replica from shard placements
``partial_result``        scatter answered around a dead shard (partial=allow)
``repair_started``        repair engine began re-replicating a fragment
``repair_completed``      fragment re-replicated and registered
``repair_failed``         repair attempt abandoned (source died, no target)
``repair_queue_full``     bounded repair queue dropped a task
========================  =====================================================
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Event", "EventLog"]

_SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Event:
    """One typed occurrence in the fleet."""

    seq: int                     # monotone per-log sequence number
    wall_ts: float               # time.time() — for humans / JSONL
    perf_s: float                # time.perf_counter() — span timeline
    kind: str
    message: str
    severity: str = "info"
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "seq": self.seq,
            "wall_ts": self.wall_ts,
            "perf_s": self.perf_s,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class EventLog:
    """Thread-safe bounded ring of :class:`Event`.

    ``capacity`` bounds memory: the ring keeps the newest events, and
    :meth:`counts` keeps cumulative per-kind totals that survive
    eviction (the soak test's "alert fired exactly once" is asserted
    against the totals, not the ring). ``clock`` supplies ``perf_s``
    timestamps and is injectable for deterministic tests.
    """

    def __init__(self, capacity: int = 1024, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError(f"capacity {capacity} must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self._seq = itertools.count()
        self._lock = threading.Lock()

    def emit(self, kind: str, message: str, severity: str = "info",
             **attrs) -> Event:
        if severity not in _SEVERITIES:
            raise ValueError(f"severity {severity!r} not in {_SEVERITIES}")
        with self._lock:
            event = Event(seq=next(self._seq), wall_ts=time.time(),
                          perf_s=self.clock(), kind=kind, message=message,
                          severity=severity, attrs=attrs)
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    # -- reads ----------------------------------------------------------------

    def recent(self, n: int | None = None,
               kind: str | None = None) -> list[Event]:
        """The newest events, oldest first (``kind`` filters; ``n``
        limits to the last n *after* filtering)."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if n is not None:
            events = events[-n:]
        return events

    def counts(self) -> dict[str, int]:
        """Cumulative emissions per kind (survives ring eviction)."""
        with self._lock:
            return dict(self._counts)

    def count(self, kind: str) -> int:
        with self._lock:
            return self._counts.get(kind, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- export ---------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self.recent()]

    def export_jsonl(self, path) -> int:
        """Write the retained events as JSON Lines; returns the count."""
        events = self.to_dicts()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)
