"""Explain-analyze: estimated-vs-actual accounting per plan operator.

The planner's :class:`~repro.planner.ir.PhysicalPlan` carries one
predicted :class:`~repro.net.estimate.CostVector` per operator; until
now the only feedback was run-level (``BENCH_planner.json`` tables and
the :class:`~repro.planner.feedback.CalibrationBook`'s aggregate
factors). This module closes the loop per query: the run layer records
what each operator *actually* did — wire bytes, calls, simulated
seconds, wall seconds — into an :class:`ActualsBook`, and
``RunStats.plan.explain(analyze=True)`` renders the estimated-vs-actual
tree, so a :class:`CalibrationBook` misprediction is inspectable on
the very query that suffered it.

Attribution keys match the plan IR's own handles:

* XRPC call sites key by ``site_id`` (``id(xrpc.body)``); the cluster
  router aliases its per-shard rewritten bodies back to the logical
  site, so a ScatterGather operator's actuals are the sum over shards;
* document ships key by ``(owner, local_name)``;
* local evaluation is the run-level remainder (exec seconds computed
  from the cost counters at the end of the run).

Simulated seconds per call site are *inclusive* (nested shipping or
recursive round trips triggered by the remote body count toward the
site that triggered them), mirroring how the estimator prices sites.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class OpActual:
    """What one plan operator actually did during a run."""

    bytes: int = 0           # wire bytes (messages or shipped documents)
    calls: int = 0           # function applications / ship count
    sim_s: float = 0.0       # simulated seconds (inclusive)
    wall_s: float = 0.0      # wall-clock seconds (inclusive)
    cache_hits: int = 0      # round trips / ships served by the cache

    def merge(self, other: "OpActual") -> None:
        self.bytes += other.bytes
        self.calls += other.calls
        self.sim_s += other.sim_s
        self.wall_s += other.wall_s
        self.cache_hits += other.cache_hits


class ActualsBook:
    """Thread-safe per-run recorder of operator actuals (scatter
    workers record concurrently for the same logical site)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sites: dict[int, OpActual] = {}
        self._ships: dict[tuple[str, str], OpActual] = {}
        self.local = OpActual()

    def record_site(self, site_id: int, *, bytes: int = 0, calls: int = 0,
                    sim_s: float = 0.0, wall_s: float = 0.0,
                    cache_hits: int = 0) -> None:
        delta = OpActual(bytes=bytes, calls=calls, sim_s=sim_s,
                         wall_s=wall_s, cache_hits=cache_hits)
        with self._lock:
            existing = self._sites.get(site_id)
            if existing is None:
                self._sites[site_id] = delta
            else:
                existing.merge(delta)

    def record_ship(self, owner: str, local_name: str, *, bytes: int = 0,
                    sim_s: float = 0.0, wall_s: float = 0.0,
                    cache_hits: int = 0) -> None:
        delta = OpActual(bytes=bytes, calls=1, sim_s=sim_s, wall_s=wall_s,
                         cache_hits=cache_hits)
        with self._lock:
            key = (owner, local_name)
            existing = self._ships.get(key)
            if existing is None:
                self._ships[key] = delta
            else:
                existing.merge(delta)

    def site(self, site_id: int) -> OpActual | None:
        with self._lock:
            return self._sites.get(site_id)

    def ship(self, owner: str, local_name: str) -> OpActual | None:
        with self._lock:
            return self._ships.get((owner, local_name))


@dataclass(frozen=True)
class OpAnalysis:
    """One operator row of an analyzed plan: prediction next to truth.

    ``actual_*`` are ``None`` when the run never exercised the operator
    (a cached response made the round trip unnecessary, a shard was
    skipped, a mixed plan's ship was resolved locally)."""

    describe: str                    # the operator's own rendering
    est_s: float
    est_bytes: float
    est_calls: float = 0.0
    actual_s: float | None = None
    actual_bytes: int | None = None
    actual_calls: int | None = None
    actual_wall_s: float | None = None
    cache_hits: int = 0

    @property
    def time_error(self) -> float | None:
        """actual / estimated simulated seconds (None: not comparable)."""
        if self.actual_s is None or self.est_s <= 0.0:
            return None
        return self.actual_s / self.est_s

    def as_dict(self) -> dict[str, object]:
        # Wall-clock stays off the dict form: ``RunStats.summary()``
        # must be identical across transports/runs (simulated
        # accounting only); wall times live on the object and in the
        # rendered tree.
        return {
            "op": self.describe,
            "est_s": self.est_s,
            "est_bytes": self.est_bytes,
            "est_calls": self.est_calls,
            "actual_s": self.actual_s,
            "actual_bytes": self.actual_bytes,
            "actual_calls": self.actual_calls,
            "cache_hits": self.cache_hits,
        }


@dataclass(frozen=True)
class PlanAnalysis:
    """The analyzed plan: per-operator rows plus run-level totals."""

    label: str
    rows: tuple[OpAnalysis, ...] = ()
    est_total_s: float = 0.0
    est_total_bytes: float = 0.0
    actual_total_s: float = 0.0
    actual_total_bytes: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "est_total_s": self.est_total_s,
            "est_total_bytes": self.est_total_bytes,
            "actual_total_s": self.actual_total_s,
            "actual_total_bytes": self.actual_total_bytes,
            "ops": [row.as_dict() for row in self.rows],
        }


def _fmt_bytes(value: float | int | None) -> str:
    if value is None:
        return "-"
    return f"{value / 1024:.1f}KB" if value >= 1024 else f"{value:.0f}B"


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value * 1e3:.2f}ms"


def render_analysis(analysis: PlanAnalysis) -> str:
    """The estimated-vs-actual tree, one line per operator::

        plan by-projection: est 10.51ms/44.2KB -> actual 11.02ms/45.8KB
          1. xrpc-call by-projection -> peer1 (...)
             est 4.10ms/12.0KB x12 | actual 4.31ms/12.8KB x12 (x1.05)
    """
    lines = [
        f"plan {analysis.label}: "
        f"est {_fmt_ms(analysis.est_total_s)}/"
        f"{_fmt_bytes(analysis.est_total_bytes)} -> actual "
        f"{_fmt_ms(analysis.actual_total_s)}/"
        f"{_fmt_bytes(analysis.actual_total_bytes)} "
        f"(wall {_fmt_ms(analysis.wall_s)})"
    ]
    for index, row in enumerate(analysis.rows, start=1):
        lines.append(f"  {index}. {row.describe}")
        est_calls = f" x{row.est_calls:.0f}" if row.est_calls else ""
        if row.actual_s is None and row.actual_bytes is None:
            actual = "never exercised"
            if row.cache_hits:
                actual = f"served from cache ({row.cache_hits} hits)"
            lines.append(
                f"     est {_fmt_ms(row.est_s)}/"
                f"{_fmt_bytes(row.est_bytes)}{est_calls} | {actual}")
        else:
            ratio = row.time_error
            ratio_part = f" (x{ratio:.2f})" if ratio is not None else ""
            calls_part = (f" x{row.actual_calls}"
                          if row.actual_calls else "")
            cache_part = (f", {row.cache_hits} cache hits"
                          if row.cache_hits else "")
            lines.append(
                f"     est {_fmt_ms(row.est_s)}/"
                f"{_fmt_bytes(row.est_bytes)}{est_calls} | actual "
                f"{_fmt_ms(row.actual_s)}/"
                f"{_fmt_bytes(row.actual_bytes)}{calls_part}"
                f"{ratio_part}{cache_part}")
    return "\n".join(lines)
