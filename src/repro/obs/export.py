"""Trace exporters: span-tree JSON and Chrome trace-event format.

Two serialisations of one :class:`~repro.obs.trace.Span` tree:

* :func:`span_to_dict` / :func:`dump_trace` — a nested JSON document
  mirroring the tree (name, wall µs, attributes, component charges,
  children), the machine-readable form tests and tooling consume;
* :func:`chrome_trace_events` / :func:`dump_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / https://ui.perfetto.dev):
  one complete ``"ph": "X"`` event per span, ``ts``/``dur`` in
  microseconds relative to the root, ``tid`` mapped to compact
  per-thread ids so the engine's worker threads and the router's
  scatter pools land on separate rows. Component leaves (simulated
  seconds, not wall time) are exported under ``"cat": "simulated"``
  with their simulated duration, so the Figure 8 stack is visible as
  flame-graph blocks next to the wall-clock spans that charged it.

:func:`validate_chrome_trace` checks the invariants the format needs
(every event carries name/ph/pid/tid, non-negative ts; ``dur`` on
complete events) — CI runs it over a freshly captured trace so the
export cannot silently rot.

Fleet events ride along: pass an iterable of
:class:`~repro.obs.events.Event` (or an
:class:`~repro.obs.events.EventLog`) to :func:`chrome_trace_events` /
:func:`dump_chrome_trace` and each entry becomes an instant
(``"ph": "i"``) marker on the timeline — failovers, epoch bumps and
alerts visible next to the spans they interrupted. Events share the
spans' ``perf_counter`` clock, so placement is exact; entries outside
the root span's window are clamped to its edges (a marker slightly
off-screen beats a marker silently dropped).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.trace import Span


def span_to_dict(span: Span) -> dict:
    """The nested JSON form of one span (and its subtree)."""
    out: dict = {
        "name": span.name,
        "kind": span.kind,
        "start_us": round(span.start_s * 1e6, 3),
        "duration_us": round(span.duration_s * 1e6, 3),
        "closed": span.closed,
        "thread": span.thread_id,
    }
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    children = [span_to_dict(child) for child in list(span.children)]
    if children:
        out["children"] = children
    return out


def dump_trace(span: Span, path) -> dict:
    """Write the span tree as JSON to ``path`` (returns the document)."""
    document = {"format": "repro-trace-v1", "trace": span_to_dict(span)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, default=str)
        handle.write("\n")
    return document


def chrome_trace_events(span: Span, pid: int = 1,
                        events=None) -> list[dict]:
    """Flatten a span tree into Chrome trace events.

    Timestamps are microseconds relative to the root span's start.
    Wall-clock spans become ``cat: "span"`` events with their real
    duration; component leaves become ``cat: "simulated"`` events whose
    duration is the *simulated* seconds they carry (scaled to µs) —
    they start where their parent started, so the stack reads as "this
    much simulated work happened inside this span".

    ``events`` (an iterable of :class:`~repro.obs.events.Event`, or an
    :class:`~repro.obs.events.EventLog`) adds one instant ``ph: "i"``
    marker per entry at its ``perf_s`` timestamp, clamped into the
    root span's window.
    """
    origin = span.start_s
    events_arg = events        # the local list below shadows the param
    tid_map: dict[int, int] = {}
    events = []

    def tid_of(thread_id: int) -> int:
        tid = tid_map.get(thread_id)
        if tid is None:
            tid = tid_map[thread_id] = len(tid_map) + 1
        return tid

    def emit(node: Span) -> None:
        ts = max(0.0, (node.start_s - origin) * 1e6)
        if node.kind == "component":
            duration = max(0.0, node.attrs.get("sim_s", 0.0) * 1e6)
            category = "simulated"
        else:
            duration = max(0.0, node.duration_s * 1e6)
            category = "span"
        args = {key: value for key, value in node.attrs.items()
                if isinstance(value, (str, int, float, bool))}
        for key, value in node.attrs.items():
            if isinstance(value, dict):
                args[key] = json.dumps(value, default=str)
        events.append({
            "name": node.name,
            "cat": category,
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(duration, 3),
            "pid": pid,
            "tid": tid_of(node.thread_id),
            "args": args,
        })
        for child in list(node.children):
            emit(child)

    emit(span)

    if events_arg is not None:
        entries = (events_arg.recent() if hasattr(events_arg, "recent")
                   else list(events_arg))
        end_us = max(0.0, (span.end_s - origin) * 1e6) \
            if span.end_s is not None else None
        for entry in entries:
            ts = (entry.perf_s - origin) * 1e6
            ts = max(0.0, ts)
            if end_us is not None:
                ts = min(ts, end_us)
            args = {"message": entry.message, "seq": entry.seq,
                    "severity": entry.severity}
            for key, value in entry.attrs.items():
                if isinstance(value, (str, int, float, bool)):
                    args[key] = value
            events.append({
                "name": entry.kind,
                "cat": "event",
                "ph": "i",
                "s": "p",           # process-scoped instant marker
                "ts": round(ts, 3),
                "pid": pid,
                "tid": 1,
                "args": args,
            })
    return events


def dump_chrome_trace(span: Span, path, pid: int = 1,
                      events=None) -> dict:
    """Write the Chrome trace-event JSON for ``span`` to ``path`` —
    load it in ``chrome://tracing`` or https://ui.perfetto.dev.
    ``events`` adds instant markers (see :func:`chrome_trace_events`).
    """
    document = {
        "traceEvents": chrome_trace_events(span, pid=pid, events=events),
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-chrome-trace-v1"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, default=str)
        handle.write("\n")
    return document


def validate_chrome_trace(document: dict) -> list[str]:
    """Schema-check a Chrome trace document; returns the violations
    (empty list = valid). Checked invariants: a ``traceEvents`` list
    exists and is non-empty; every event has a ``name``, ``ph``,
    ``pid``, ``tid`` and a non-negative numeric ``ts``; complete
    (``"X"``) events additionally carry a non-negative ``dur``
    (instant ``"i"`` markers have none by definition)."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        checked = ("ts", "dur") if event.get("ph") == "X" else ("ts",)
        for field in checked:
            value = event.get(field)
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: {field!r} missing or "
                                f"non-numeric ({value!r})")
            elif value < 0:
                problems.append(f"{where}: {field!r} negative ({value})")
    return problems


def load_and_validate(path) -> list[str]:
    """Read a Chrome trace from disk and validate it (CI helper)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return validate_chrome_trace(document)


def render_tree(span: Span, max_depth: int | None = None,
                _depth: int = 0) -> str:
    """A compact text rendering of the span tree (README excerpts)::

        query 12.41ms {at=local}
          plan 1.02ms {strategy=by-projection}
          scatter 8.17ms {collection=people-c, shards=4}
            shard 2.50ms {shard=0}
              rpc 2.41ms {dest=node1}
                serialize [sim 0.31ms, 20.1KB]
    """
    lines: list[str] = []
    indent = "  " * _depth
    if span.kind == "component":
        sim_ms = span.attrs.get("sim_s", 0.0) * 1e3
        size = span.attrs.get("bytes")
        size_part = f", {size / 1024:.1f}KB" if size else ""
        lines.append(f"{indent}{span.name} [sim {sim_ms:.2f}ms{size_part}]")
    else:
        attrs = {key: value for key, value in span.attrs.items()
                 if not isinstance(value, dict)}
        attr_part = (" {" + ", ".join(f"{k}={v}" for k, v in
                                      sorted(attrs.items())) + "}"
                     if attrs else "")
        lines.append(f"{indent}{span.name} "
                     f"{span.duration_s * 1e3:.2f}ms{attr_part}")
    if max_depth is None or _depth < max_depth:
        for child in list(span.children):
            lines.append(render_tree(child, max_depth, _depth + 1))
    return "\n".join(lines)


def spans_in(events: Iterable[dict], name: str) -> list[dict]:
    """Convenience filter over exported events (tests)."""
    return [event for event in events if event.get("name") == name]
